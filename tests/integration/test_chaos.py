"""Chaos test: a seeded fault plan against the full supervised stack.

The acceptance scenario for the fault-tolerance PR: run the supervised
daemon against a deterministic :class:`~repro.faults.FaultPlan` where
the store fails every third read and the bulletin and prover throw
transient faults, and require that

* the daemon thread (or step loop) never dies,
* permanently poisoned windows are quarantined — and only those, and
* every non-quarantined window converges to exactly the same final
  state root as a clean, fault-free run over the same data.

The seed comes from ``REPRO_FAULT_SEED`` so CI can sweep seeds (the
chaos job runs 0 and 1); any seed must satisfy the same invariants.
"""

import os
import threading

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.daemon import AggregationDaemon, DaemonPolicy
from repro.core.prover_service import ProverService
from repro.faults import FaultInjector, FaultPlan, inject_faults
from repro.netflow.clock import SimClock
from repro.storage import MemoryLogStore

from ..conftest import make_record

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

CHAOS_PLAN = (
    "store.window_blobs:storage:start=3,every=3;"
    "bulletin.get:timeout:count=2;"
    "prover.prove:proof:start=2,every=4,count=3"
)


def populate(store, bulletin, windows=4, rows_per_window=3):
    """Commit ``windows`` windows across two routers."""
    for window in range(windows):
        for router in ("r1", "r2"):
            records = [
                make_record(router_id=router,
                            sport=1000 + window * 100 + i)
                for i in range(rows_per_window)]
            store.append_records(router, window, records)
            bulletin.publish(Commitment(
                router, window,
                window_digest([r.to_bytes() for r in records]),
                len(records), window * 5_000))


def clean_run_roots(windows=4, rows_per_window=3):
    """Final root of a fault-free run, one window per round."""
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    populate(store, bulletin, windows=windows,
             rows_per_window=rows_per_window)
    service = ProverService(store, bulletin)
    for window in range(windows):
        service.aggregate_window(window)
    return service.state.root


@pytest.fixture
def chaos():
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    populate(store, bulletin)
    service = ProverService(store, bulletin)
    injector = FaultInjector(FaultPlan.parse(CHAOS_PLAN, seed=SEED))
    inject_faults(service, injector)
    daemon = AggregationDaemon(
        service, SimClock(),
        DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=10,
                     retry_base_ms=100, retry_max_ms=500,
                     retry_jitter=0.2, stall_after=50),
        seed=SEED)
    return service, daemon, injector


class TestChaosConvergence:
    def test_supervised_run_converges_to_clean_root(self, chaos):
        service, daemon, injector = chaos
        for _ in range(200):
            daemon.step()
            daemon.clock.advance_ms(600)
            if not daemon.pending_windows() and not daemon.quarantined:
                break
        # Every fault in the plan is transient on the daemon's
        # schedule (every-3rd store faults are absorbed by retries
        # with attempts to spare), so nothing may be quarantined...
        assert daemon.quarantined == {}
        assert service.aggregated_windows == {0, 1, 2, 3}
        # ...and the surviving chain is bit-identical to a run that
        # never saw a fault.
        assert service.state.root == clean_run_roots()
        # The plan actually exercised the stack.
        assert sum(injector.stats()["injected"].values()) > 0
        assert daemon.stats.faults > 0

    def test_poisoned_window_quarantined_others_converge(self):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=3)
        # Window 1 is poisoned beyond retry: its commitment can never
        # match the stored bytes, so the guest aborts every attempt.
        records = [make_record(router_id="r3", sport=9)]
        store.append_records("r3", 1, records)
        bulletin.publish(Commitment(
            "r3", 1, window_digest([b"poison"]), 1, 5_000))
        service = ProverService(store, bulletin)
        injector = FaultInjector(
            FaultPlan.parse("store.window_blobs:storage:every=5",
                            seed=SEED))
        inject_faults(service, injector)
        daemon = AggregationDaemon(
            service, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=3,
                         retry_base_ms=50, retry_max_ms=200,
                         stall_after=50),
            seed=SEED)
        for _ in range(200):
            daemon.step()
            daemon.clock.advance_ms(300)
            if not daemon.pending_windows():
                break
        assert set(daemon.quarantined) == {1}
        assert service.aggregated_windows == {0, 2}
        assert daemon.health()["state"] == "degraded"
        # The operator hook pulls the window back into rotation (the
        # bulletin is append-only, so the bad commitment itself cannot
        # be withdrawn — requeue is for when the *store* was at fault).
        assert daemon.requeue(1) is True
        assert 1 in daemon.pending_windows()


class TestChaosThreaded:
    def test_thread_survives_the_full_plan(self):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=3, rows_per_window=2)
        service = ProverService(store, bulletin)
        injector = FaultInjector(FaultPlan.parse(CHAOS_PLAN, seed=SEED))
        inject_faults(service, injector)
        clock = SimClock()
        daemon = AggregationDaemon(
            service, clock,
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=10,
                         retry_base_ms=100, retry_max_ms=500,
                         stall_after=50),
            seed=SEED)
        stop = threading.Event()
        thread = daemon.run_threaded(stop, poll_ms=700)
        try:
            import time
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if not daemon.pending_windows() \
                        and not daemon.quarantined:
                    break
                assert thread.is_alive()
                time.sleep(0.01)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert service.aggregated_windows == {0, 1, 2}
        assert service.state.root == clean_run_roots(
            windows=3, rows_per_window=2)


class TestChaosWithRecovery:
    def test_crash_mid_chaos_restores_and_finishes(self):
        """Checkpointing composes with chaos: crash after two windows,
        restore on a fresh service, and still converge."""
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin)
        service = ProverService(store, bulletin, auto_checkpoint=True)
        injector = FaultInjector(
            FaultPlan.parse("store.window_blobs:storage:every=4",
                            seed=SEED))
        inject_faults(service, injector)
        daemon = AggregationDaemon(
            service, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=10,
                         retry_base_ms=50, retry_max_ms=200,
                         stall_after=50),
            seed=SEED)
        while len(service.aggregated_windows) < 2:
            daemon.step()
            daemon.clock.advance_ms(300)
        # "Crash" — all in-memory prover state is lost.
        del service, daemon
        recovered = ProverService(store, bulletin,
                                  auto_checkpoint=True)
        assert recovered.restore() is True
        assert recovered.aggregated_windows == {0, 1}
        daemon = AggregationDaemon(
            recovered, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, stall_after=50),
            seed=SEED)
        daemon.drain()
        assert recovered.aggregated_windows == {0, 1, 2, 3}
        assert recovered.state.root == clean_run_roots()
