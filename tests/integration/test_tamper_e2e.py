"""Integration: the Figure 3 / §6 tamper-detection experiment.

"We also simulated a data tampering scenario ... and confirmed that any
attempt to modify committed data results in failed proof generation due
to hash mismatches or Merkle inconsistencies."
"""

import pytest

from repro.core.tamper import (
    TamperKind,
    corrupt_record_bytes,
    inject_record,
    modify_record_field,
    reorder_window,
    run_tamper_experiment,
    truncate_window,
)
from repro.errors import IntegrityError

from ..conftest import make_record


@pytest.fixture
def system():
    from repro.core.system import SystemConfig, TelemetrySystem
    built = TelemetrySystem(SystemConfig(seed=11, flows_per_tick=5))
    built.generate(260)  # several committed windows to tamper with
    windows = built.bulletin.windows()
    assert len(windows) >= 3, "fixture needs several committed windows"
    # Aggregate window 0 cleanly; later windows are the tamper targets.
    built.prover.aggregate_window(windows[0])
    return built


def first_router(system):
    return system.store.router_ids()[0]


class TestAllTamperKindsDetected:
    def test_modify_field(self, system):
        window = system.bulletin.windows()[1]
        router = first_router(system)
        # Hide loss by zeroing the counter — or, if the record happens
        # to carry no loss, fabricate some; either way the bytes change.
        original = system.store.window_records(router, window)[0]
        new_loss = 0 if original.lost_packets else 7
        outcome = run_tamper_experiment(
            TamperKind.MODIFY_FIELD,
            lambda: modify_record_field(system.store, router, window, 0,
                                        lost_packets=new_loss),
            lambda: system.prover.aggregate_window(window))
        assert outcome.detected
        assert "commitment mismatch" in outcome.detail

    def test_corrupt_bytes(self, system):
        window = system.bulletin.windows()[1]
        outcome = run_tamper_experiment(
            TamperKind.CORRUPT_BYTES,
            lambda: corrupt_record_bytes(system.store,
                                         first_router(system), window,
                                         0, byte_index=7),
            lambda: system.prover.aggregate_window(window))
        assert outcome.detected

    def test_truncate(self, system):
        window = system.bulletin.windows()[1]
        outcome = run_tamper_experiment(
            TamperKind.TRUNCATE,
            lambda: truncate_window(system.store, first_router(system),
                                    window, keep=1),
            lambda: system.prover.aggregate_window(window))
        assert outcome.detected

    def test_reorder(self, system):
        window = system.bulletin.windows()[1]
        outcome = run_tamper_experiment(
            TamperKind.REORDER,
            lambda: reorder_window(system.store, first_router(system),
                                   window),
            lambda: system.prover.aggregate_window(window))
        assert outcome.detected

    def test_inject(self, system):
        window = system.bulletin.windows()[1]
        router = first_router(system)
        outcome = run_tamper_experiment(
            TamperKind.INJECT,
            lambda: inject_record(system.store, router, window,
                                  make_record(router_id=router)),
            lambda: system.prover.aggregate_window(window))
        assert outcome.detected


class TestDetectionRateIs100Percent:
    def test_every_record_position_detected(self, small_system):
        """Tampering ANY single record in a window is detected."""
        system = small_system
        window = system.bulletin.windows()[0]
        router = system.store.router_ids()[0]
        count = system.store.window_count(router, window)
        detected = 0
        for seq in range(count):
            blobs = system.store.window_blobs(router, window)
            modify_record_field(system.store, router, window, seq,
                                packets=123_456_789)
            try:
                system.prover.aggregate_window(window)
            except Exception:
                detected += 1
            # Restore for the next position.
            system.store.replace_window(router, window, blobs)
        assert detected == count


class TestEquivocationPrevented:
    def test_router_cannot_republish(self, system):
        """The bulletin refuses a second, different commitment — the
        tamper-then-recommit attack fails at publication."""
        from repro.commitments import Commitment
        from repro.hashing import sha256
        window = system.bulletin.windows()[1]
        router = first_router(system)
        original = system.bulletin.get(router, window)
        with pytest.raises(IntegrityError, match="equivocation"):
            system.bulletin.publish(Commitment(
                router_id=router, window_index=window,
                digest=sha256(b"recommitted"),
                record_count=original.record_count,
                published_at_ms=999_999))


class TestCleanDataStillProves:
    def test_untampered_windows_aggregate_after_failed_attempts(
            self, system):
        """Failed rounds leave no state damage: clean windows still
        aggregate and chain correctly afterwards."""
        windows = system.bulletin.windows()
        router = first_router(system)
        # Tamper window 1, attempt, fail.
        modify_record_field(system.store, router, windows[1], 0,
                            packets=0, octets=0)
        with pytest.raises(Exception):
            system.prover.aggregate_window(windows[1])
        # Window 2 is clean and aggregates fine on the same chain.
        result = system.prover.aggregate_window(windows[2])
        assert result.round == 1
        verified = system.verifier.verify_chain(
            system.prover.chain.receipts())
        assert len(verified) == 2
