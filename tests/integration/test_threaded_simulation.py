"""Integration: the paper's threaded §6 setup feeding the prover."""

from repro.commitments import BulletinBoard
from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.netflow import (
    NetFlowSimulator,
    SimulatorConfig,
    WallClock,
)
from repro.storage import SqliteLogStore


class TestThreadedPipelineWithSql:
    def test_parallel_routers_shared_sql_backend(self):
        """4 router threads → shared sqlite → commitments → proofs —
        the complete §6 experimental configuration."""
        store = SqliteLogStore()
        bulletin = BulletinBoard()
        simulator = NetFlowSimulator(
            store, bulletin, WallClock(),
            SimulatorConfig(flows_per_tick=4, tick_ms=20,
                            commit_interval_ms=100))
        simulator.run_threaded(duration_ms=400)
        assert simulator.records_generated > 0
        assert len(bulletin) >= 4  # each router committed something

        service = ProverService(store, bulletin)
        results = service.aggregate_all_committed()
        assert results, "at least one aggregation round"

        response = service.answer_query(
            "SELECT COUNT(*), SUM(lost_packets) FROM clogs")
        verifier = VerifierClient(bulletin)
        chain = verifier.verify_chain(service.chain.receipts())
        verified = verifier.verify_query(response, chain[-1])
        assert verified.scanned == len(service.state)
        store.close()

    def test_windows_only_partially_committed_are_skippable(self):
        """aggregate_all_committed only consumes windows that made it
        onto the bulletin; in-flight buffers are untouched."""
        store = SqliteLogStore()
        bulletin = BulletinBoard()
        simulator = NetFlowSimulator(
            store, bulletin, WallClock(),
            SimulatorConfig(flows_per_tick=4, tick_ms=20,
                            commit_interval_ms=100))
        simulator.run_threaded(duration_ms=250)
        committed = set(bulletin.windows())
        service = ProverService(store, bulletin)
        results = service.aggregate_all_committed()
        consumed = {w for result in results
                    for _r, w in ((win["r"], win["w"]) for win in
                                  result.journal_header["windows"])}
        assert consumed <= committed
        store.close()
