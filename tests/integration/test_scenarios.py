"""Integration: the paper's §2.1 motivating scenarios.

SLA verification and network-neutrality auditing, both implemented as
verifiable queries over the committed CLogs — the client learns only
aggregate answers, never raw telemetry.
"""

import pytest

from repro.analysis import compare_distributions
from repro.core.system import SystemConfig, TelemetrySystem
from repro.netflow.generator import (
    DEFAULT_PROVIDERS,
    ThrottleSpec,
    TrafficConfig,
)


def build_system(throttle=None, seed=19):
    traffic = TrafficConfig(seed=seed, throttle=throttle or {})
    system = TelemetrySystem(SystemConfig(seed=seed, flows_per_tick=8),
                             traffic=traffic)
    system.generate(250)
    system.aggregate_all()
    return system


@pytest.fixture(scope="module")
def fair_system():
    return build_system()


@pytest.fixture(scope="module")
def throttled_system():
    victim = sorted(DEFAULT_PROVIDERS)[0]
    return build_system(throttle={
        victim: ThrottleSpec(extra_latency_us=60_000,
                             extra_loss_rate=0.1)})


class TestSLAScenario:
    """§2.1: prove "at least 90% of flows achieve RTT < X ms" without
    revealing measurements — via two verifiable COUNT queries."""

    def test_rtt_sla_fraction(self, fair_system):
        threshold_us = 200_000
        total_resp, total = fair_system.query(
            "SELECT COUNT(*) FROM clogs")
        good_resp, good = fair_system.query(
            f"SELECT COUNT(*) FROM clogs "
            f"WHERE rtt_avg_us < {threshold_us}")
        fraction = good.values[0] / total.values[0]
        assert fraction >= 0.9  # the unthrottled network meets the SLA

    def test_loss_sla(self, fair_system):
        _resp, verified = fair_system.query(
            "SELECT COUNT(*) FROM clogs WHERE loss_rate > 0.05")
        total = len(fair_system.prover.state)
        assert verified.values[0] / total < 0.1

    def test_sla_breach_visible_under_throttling(self,
                                                 throttled_system):
        victim = sorted(DEFAULT_PROVIDERS)[0]
        prefix = DEFAULT_PROVIDERS[victim]
        _resp, bad = throttled_system.query(
            f'SELECT COUNT(*) FROM clogs '
            f'WHERE src_ip IN "{prefix}" AND loss_rate > 0.05')
        _resp, total = throttled_system.query(
            f'SELECT COUNT(*) FROM clogs WHERE src_ip IN "{prefix}"')
        assert total.values[0] > 0
        assert bad.values[0] / total.values[0] > 0.3


class TestNeutralityScenario:
    """§2.1: per-provider aggregate comparisons expose differentiated
    treatment; a fair network shows statistically equivalent metrics."""

    @staticmethod
    def provider_rtts(system):
        rtts = {}
        for provider, prefix in sorted(DEFAULT_PROVIDERS.items()):
            _resp, verified = system.query(
                f'SELECT AVG(rtt_avg_us), COUNT(*) FROM clogs '
                f'WHERE src_ip IN "{prefix}"')
            rtts[provider] = verified.values[0]
        return rtts

    def test_fair_network_providers_equivalent(self, fair_system):
        rtts = self.provider_rtts(fair_system)
        values = [v for v in rtts.values() if v is not None]
        assert max(values) / min(values) < 1.5

    def test_throttled_provider_stands_out(self, throttled_system):
        victim = sorted(DEFAULT_PROVIDERS)[0]
        rtts = self.provider_rtts(throttled_system)
        others = [v for p, v in rtts.items()
                  if p != victim and v is not None]
        assert rtts[victim] > 2 * max(others)

    def test_ground_truth_ks_test_agrees(self, throttled_system):
        """Sanity: the simulator's raw per-flow RTTs really are
        distributionally different (the verifiable queries above are
        detecting a real effect, not noise)."""
        victim = sorted(DEFAULT_PROVIDERS)[0]
        import ipaddress
        victim_net = ipaddress.IPv4Network(DEFAULT_PROVIDERS[victim])
        victim_rtts, other_rtts = [], []
        for entry in throttled_system.prover.state \
                .entries_in_slot_order():
            view = entry.query_view()
            bucket = victim_rtts if ipaddress.IPv4Address(
                view["src_ip"]) in victim_net else other_rtts
            bucket.append(view["rtt_avg_us"])
        verdict = compare_distributions(victim_rtts, other_rtts,
                                        alpha=0.01)
        assert not verdict.equivalent
        assert verdict.mean_ratio > 2


class TestAuditorTrustModel:
    def test_auditor_needs_only_public_material(self, fair_system):
        """A fresh verifier client (bulletin + receipts only) reaches
        the same conclusions — no store access."""
        from repro.core.verifier_client import VerifierClient
        auditor = VerifierClient(fair_system.bulletin)
        chain = auditor.verify_chain(fair_system.prover.chain.receipts())
        response = fair_system.prover.answer_query(
            "SELECT COUNT(*) FROM clogs WHERE loss_rate > 0.5")
        verified = auditor.verify_query(response, chain[-1])
        assert verified.values == response.values
