"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    db = tmp_path / "logs.db"
    bulletin = tmp_path / "bulletin.json"
    receipts = tmp_path / "receipts"
    assert main(["simulate", "--db", str(db),
                 "--bulletin", str(bulletin),
                 "--records", "150", "--flows-per-tick", "6",
                 "--seed", "3"]) == 0
    return db, bulletin, receipts


class TestSimulate:
    def test_artifacts_created(self, workspace):
        db, bulletin, _receipts = workspace
        assert db.exists()
        data = json.loads(bulletin.read_text())
        assert data["commitments"]
        entry = data["commitments"][0]
        assert set(entry) >= {"router_id", "window_index", "digest",
                              "record_count"}

    def test_info(self, workspace, capsys):
        db, *_ = workspace
        assert main(["info", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "r1" in out


class TestAggregateQueryVerify:
    def test_full_workflow(self, workspace, capsys):
        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        assert list(receipts.glob("round-*.json"))

        out_receipt = db.parent / "query.json"
        assert main(["query", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "--out", str(out_receipt),
                     "SELECT COUNT(*) FROM clogs"]) == 0
        output = capsys.readouterr().out
        assert "COUNT(*)" in output
        assert out_receipt.exists()

        assert main(["verify", "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        assert "chain of" in capsys.readouterr().out

    def test_rebuild_strategy(self, workspace):
        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "--strategy", "rebuild"]) == 0
        assert main(["verify", "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0

    def test_aggregate_empty_store(self, tmp_path):
        db = tmp_path / "empty.db"
        bulletin = tmp_path / "bulletin.json"
        bulletin.write_text(json.dumps({"commitments": []}))
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(tmp_path / "r")]) == 1


class TestVerifyQuery:
    def test_query_receipt_verifies(self, workspace, capsys):
        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        out_receipt = db.parent / "q.json"
        assert main(["query", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "--out", str(out_receipt),
                     "SELECT COUNT(*) FROM clogs GROUP BY protocol"]) \
            == 0
        capsys.readouterr()
        assert main(["verify-query", "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "--query-receipt", str(out_receipt)]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_tampered_query_receipt_rejected(self, workspace, capsys):
        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        out_receipt = db.parent / "q.json"
        assert main(["query", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "--out", str(out_receipt),
                     "SELECT SUM(lost_packets) FROM clogs"]) == 0
        # Rewrite the claimed result inside the receipt JSON: the
        # journal digest breaks.
        import json as json_mod
        from repro.serialization import decode, encode
        from repro.zkvm.receipt import Receipt
        receipt = Receipt.from_json_bytes(out_receipt.read_bytes())
        journal = receipt.journal.decode_one()
        journal["values"] = [999_999]
        import dataclasses
        from repro.zkvm.receipt import Journal
        forged = dataclasses.replace(receipt,
                                     journal=Journal(encode(journal)))
        out_receipt.write_bytes(forged.to_json_bytes())
        del json_mod, decode
        capsys.readouterr()
        assert main(["verify-query", "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "--query-receipt", str(out_receipt)]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestTamperWorkflow:
    def test_tamper_blocks_aggregation(self, workspace, capsys):
        db, bulletin, receipts = workspace
        assert main(["tamper", "--db", str(db), "--router", "r1",
                     "--window", "0", "--kind", "modify-field"]) == 0
        code = main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)])
        assert code == 2
        err = capsys.readouterr().err
        assert "commitment mismatch" in err

    def test_tampered_store_fails_replay(self, workspace, capsys):
        """Aggregate cleanly, then tamper: querying with the recorded
        receipts must refuse (replay cannot reproduce the roots)."""
        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        assert main(["tamper", "--db", str(db), "--router", "r2",
                     "--window", "1", "--kind", "corrupt-bytes"]) == 0
        code = main(["query", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts),
                     "SELECT COUNT(*) FROM clogs"])
        assert code == 2


class TestVerifyRejections:
    def test_verify_fails_on_forged_bulletin(self, workspace, capsys):
        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        # Rewrite one published digest.
        data = json.loads(bulletin.read_text())
        data["commitments"][0]["digest"] = "00" * 32
        bulletin.write_text(json.dumps(data))
        assert main(["verify", "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_verify_missing_receipts(self, workspace, capsys):
        _db, bulletin, _receipts = workspace
        code = main(["verify", "--bulletin", str(bulletin),
                     "--receipts", str(_db.parent / "nowhere")])
        assert code == 2


class TestServe:
    def test_serve_and_remote_query(self, workspace, capsys):
        """`repro serve` in a subprocess; `repro query --connect` to it."""
        import os
        import re
        import subprocess
        import sys

        db, bulletin, receipts = workspace
        assert main(["aggregate", "--db", str(db),
                     "--bulletin", str(bulletin),
                     "--receipts", str(receipts)]) == 0
        capsys.readouterr()

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--db", str(db), "--bulletin", str(bulletin),
             "--receipts", str(receipts), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            assert match, f"unexpected serve banner: {banner!r}"
            endpoint = f"{match.group(1)}:{match.group(2)}"

            assert main(["query", "--connect", endpoint,
                         "SELECT COUNT(*) FROM clogs"]) == 0
            out = capsys.readouterr().out
            assert "COUNT(*)" in out
            assert "matched" in out
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_query_requires_connect_or_files(self, capsys):
        assert main(["query", "SELECT COUNT(*) FROM clogs"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_connect_to_dead_server_is_a_clean_error(self, capsys):
        assert main(["query", "--connect", "127.0.0.1:1",
                     "SELECT COUNT(*) FROM clogs"]) == 2
        assert "error:" in capsys.readouterr().err
