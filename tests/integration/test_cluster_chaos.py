"""Chaos: kill real worker daemons mid-window, assert nothing changes.

These are the acceptance scenarios for the cluster backend.  Workers
run as genuine subprocesses (``python -m repro worker``) so a SIGKILL
takes the whole node — sockets, leases, pool threads — exactly like a
machine loss.  The invariants under test:

- a round whose leases die mid-flight still closes with receipts and
  journals *byte-identical* to all-local proving;
- the dead node ends up quarantined, visibly — in the dispatcher
  snapshot, in ``ProverService.status()`` and in ``repro_cluster_*``
  metrics;
- leases are re-dispatched without double adoption (adopted results
  plus local fallbacks account for every job exactly once);
- an all-dead fleet degrades to local proving instead of hanging.

``REPRO_FAULT_SEED`` (swept in CI) seeds the frame-fault storm
scenario; the kill scenarios are seed-independent.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.cluster import (
    QUARANTINED,
    ClusterDispatcher,
    ClusterOpts,
)
from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.engine import ProofJob, ProverPool, execute_job
from repro.faults import FaultInjector, FaultPlan
from repro.obs.names import CLUSTER_DEGRADED, CLUSTER_NODES
from repro.storage import MemoryLogStore
from repro.zkvm import ExecutorEnvBuilder

from ..conftest import make_record
from .cluster_guests import echo_guest, slow_guest

REPO_ROOT = Path(__file__).resolve().parents[2]
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

#: Chaos timings: quarantine on the first failure, short backoff so
#: reinstatement probes keep hammering the corpse (and keep failing).
FAST = ClusterOpts(poll_interval=0.02, request_timeout=2.0,
                   probe_timeout=0.5, backoff_base=0.5,
                   backoff_max=5.0, quarantine_after=1,
                   lease_timeout=8.0)


def job_for(guest, value):
    builder = ExecutorEnvBuilder()
    builder.write(value)
    return ProofJob.from_parts(guest, builder.build())


class WorkerProc:
    """A worker daemon in its own process, killable for real."""

    def __init__(self, *extra_args: str) -> None:
        env = dict(os.environ)
        # `src` for the package, `.` so the daemon can import
        # tests.integration.cluster_guests from the jobs' guest_module.
        env["PYTHONPATH"] = "src" + os.pathsep + "."
        env.pop("REPRO_FAULTS", None)  # kill scenarios stay clean
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--port", "0", "--backend", "thread", *extra_args],
            cwd=REPO_ROOT, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        if "worker listening on " not in line:
            rest = self.proc.stdout.read() or ""
            self.proc.kill()
            raise AssertionError(
                f"worker failed to start: {line!r}\n{rest}")
        self.endpoint = line.split("worker listening on ", 1)[1] \
                            .split()[0]

    def sigkill(self) -> None:
        if self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10)

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def __enter__(self) -> "WorkerProc":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dead_endpoint() -> str:
    """A host:port nothing listens on (bound once, then released)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    host, port = sock.getsockname()
    sock.close()
    return f"{host}:{port}"


def node_snap(snapshot: dict, endpoint: str) -> dict:
    return next(n for n in snapshot["nodes"]
                if n["endpoint"] == endpoint)


def commit_window(store, bulletin, window, sport):
    records = [make_record(sport=sport, lost_packets=window)]
    store.append_records("r1", window, records)
    bulletin.publish(Commitment(
        router_id="r1", window_index=window,
        digest=window_digest([r.to_bytes() for r in records]),
        record_count=len(records), published_at_ms=window * 5_000))


def build_committed(windows=3):
    """Deterministic multi-window store; identical across calls."""
    store, bulletin = MemoryLogStore(), BulletinBoard()
    for window in range(windows):
        commit_window(store, bulletin, window, sport=1_000 + window)
    return store, bulletin


class TestKillMidWindow:
    def test_sigkill_with_inflight_leases(self):
        """SIGKILL a worker while it holds leases: every job still
        resolves byte-identically, the corpse is quarantined, and no
        job is adopted twice."""
        jobs = [job_for(slow_guest, f"chaos-{i}") for i in range(8)]
        with WorkerProc() as survivor:
            victim = WorkerProc()
            with ProverPool(backend="remote",
                            nodes=[victim.endpoint, survivor.endpoint],
                            cluster_opts=FAST) as pool:
                futures = [pool.submit(j) for j in jobs]
                # Wait until the victim actually holds work in flight.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    snap = pool.snapshot()["cluster"]
                    if node_snap(snap, victim.endpoint)["leases"] >= 1:
                        break
                    time.sleep(0.01)
                else:
                    raise AssertionError("victim never took a lease")
                victim.sigkill()
                results = [f.result(timeout=120) for f in futures]
                snap = pool.snapshot()["cluster"]
            victim.close()
        for job, result in zip(jobs, results):
            local = execute_job(job)
            assert result.receipt.to_json_bytes() == \
                local.receipt.to_json_bytes()
            assert result.receipt.journal == local.receipt.journal
        assert node_snap(snap, victim.endpoint)["state"] == QUARANTINED
        # Exactly-once adoption: remote adoptions plus local fallbacks
        # cover the job list with nothing counted twice.
        adopted = sum(n["jobs_ok"] for n in snap["nodes"])
        assert adopted + snap["fallback_jobs"] == len(jobs)
        assert snap["leases"] == 0

    def test_round_journal_identical_after_worker_kill(self):
        """Service-level acceptance: kill one of two workers between
        windows; every remaining round's receipt and journal is
        byte-identical to an all-local run, and the quarantine shows
        up in STATUS and the repro_cluster_* metrics."""
        store_a, bulletin_a = build_committed()
        baseline = ProverService(store_a, bulletin_a)
        for window in range(3):
            baseline.aggregate_window(window)
        expected = [r.to_json_bytes()
                    for r in baseline.chain.receipts()]

        store_b, bulletin_b = build_committed()
        with WorkerProc() as survivor:
            victim = WorkerProc()
            with obs.capture() as cap:
                service = ProverService(
                    store_b, bulletin_b,
                    prove_nodes=(victim.endpoint, survivor.endpoint))
                try:
                    service.aggregate_window(0)
                    victim.sigkill()
                    service.aggregate_window(1)
                    service.aggregate_window(2)
                    got = [r.to_json_bytes()
                           for r in service.chain.receipts()]
                    status = service.status()
                finally:
                    service.close()
            victim.close()
        assert got == expected
        cluster = status["engine"]["cluster"]
        dead = node_snap(cluster, victim.endpoint)
        assert dead["state"] == QUARANTINED
        assert node_snap(cluster, survivor.endpoint)["jobs_ok"] >= 1
        gauge = cap.registry.get(CLUSTER_NODES)
        assert gauge is not None
        assert gauge.value(state="quarantined") == 1
        assert gauge.value(state="healthy") == 1

    def test_all_nodes_down_degrades_without_hanging(self):
        """Every node dead from the start: the service must finish the
        round via local fallback and report itself degraded."""
        store_a, bulletin_a = build_committed(windows=1)
        baseline = ProverService(store_a, bulletin_a)
        baseline.aggregate_window(0)
        expected = [r.to_json_bytes()
                    for r in baseline.chain.receipts()]

        store_b, bulletin_b = build_committed(windows=1)
        with obs.capture() as cap:
            service = ProverService(
                store_b, bulletin_b,
                prove_nodes=(dead_endpoint(), dead_endpoint()))
            try:
                service.aggregate_window(0)
                got = [r.to_json_bytes()
                       for r in service.chain.receipts()]
                status = service.status()
            finally:
                service.close()
        assert got == expected
        cluster = status["engine"]["cluster"]
        assert cluster["degraded"] is True
        assert cluster["fallback_jobs"] >= 1
        assert all(n["state"] == QUARANTINED
                   for n in cluster["nodes"])
        degraded = cap.registry.get(CLUSTER_DEGRADED)
        assert degraded is not None and degraded.value() == 1


class TestSeededFaultStorm:
    def test_frame_fault_storm_converges(self):
        """A seeded net.frame storm on the dispatcher's client side
        (swept over REPRO_FAULT_SEED in CI): proving still converges
        byte-identically and the pool is never left stalled."""
        plan = FaultPlan.parse("net.frame:corrupt:p=0.2", seed=FAULT_SEED)
        jobs = [job_for(echo_guest, f"storm-{FAULT_SEED}-{i}")
                for i in range(6)]
        with WorkerProc() as w1, WorkerProc() as w2:
            dispatcher = ClusterDispatcher(
                [w1.endpoint, w2.endpoint], opts=FAST,
                injector=FaultInjector(plan))
            try:
                futures = [dispatcher.dispatch(j) for j in jobs]
                results = [f.result(timeout=120) for f in futures]
                snap = dispatcher.snapshot()
            finally:
                dispatcher.shutdown()
        for job, result in zip(jobs, results):
            assert result.receipt.to_json_bytes() == \
                execute_job(job).receipt.to_json_bytes()
        assert snap["leases"] == 0  # nothing stalled
