"""Integration tests for historical (per-round) query auditing."""

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.errors import ProofError
from repro.storage import MemoryLogStore

from ..conftest import make_record


@pytest.fixture
def service():
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    for window in range(3):
        records = [make_record(sport=1000 + window * 10 + i,
                               lost_packets=window)
                   for i in range(2)]
        store.append_records("r1", window, records)
        bulletin.publish(Commitment(
            "r1", window,
            window_digest([r.to_bytes() for r in records]),
            len(records), window * 5_000))
    svc = ProverService(store, bulletin, retain_history=True)
    svc.aggregate_all_committed()
    return svc


class TestHistoricalQueries:
    def test_each_round_answers_with_its_own_size(self, service):
        for round_index, expected in ((0, 2), (1, 4), (2, 6)):
            response = service.answer_query(
                "SELECT COUNT(*) FROM clogs", round_index=round_index)
            assert response.value() == expected
            assert response.round == round_index

    def test_historical_response_verifies_against_its_round(self,
                                                            service):
        verifier = VerifierClient(service.bulletin)
        chain = verifier.verify_chain(service.chain.receipts())
        response = service.answer_query(
            "SELECT SUM(lost_packets) FROM clogs", round_index=1)
        verified = verifier.verify_query(response, chain[1])
        assert verified.round == 1

    def test_historical_response_rejected_against_other_round(self,
                                                              service):
        from repro.errors import VerificationError
        verifier = VerifierClient(service.bulletin)
        chain = verifier.verify_chain(service.chain.receipts())
        response = service.answer_query(
            "SELECT COUNT(*) FROM clogs", round_index=0)
        with pytest.raises(VerificationError):
            verifier.verify_query(response, chain[2])

    def test_default_is_latest(self, service):
        response = service.answer_query("SELECT COUNT(*) FROM clogs")
        assert response.round == 2

    def test_without_retention_historical_refused(self):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        records = [make_record()]
        store.append_records("r1", 0, records)
        bulletin.publish(Commitment(
            "r1", 0, window_digest([r.to_bytes() for r in records]),
            1, 0))
        service = ProverService(store, bulletin)  # no retention
        service.aggregate_window(0)
        with pytest.raises(ProofError, match="retain_history"):
            service.answer_query("SELECT COUNT(*) FROM clogs",
                                 round_index=0)

    def test_unknown_round_refused(self, service):
        with pytest.raises(ProofError):
            service.answer_query("SELECT COUNT(*) FROM clogs",
                                 round_index=99)
