"""Integration: long aggregation chains and flows spanning rounds."""

import pytest

from repro.commitments import Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.storage import MemoryLogStore
from repro.commitments import BulletinBoard

from ..conftest import make_record


def commit_window(store, bulletin, router, window, records):
    store.append_records(router, window, records)
    bulletin.publish(Commitment(
        router_id=router, window_index=window,
        digest=window_digest([r.to_bytes() for r in records]),
        record_count=len(records), published_at_ms=window * 5_000))


@pytest.fixture
def service():
    return ProverService(MemoryLogStore(), BulletinBoard())


class TestCrossRoundAggregation:
    def test_flow_accumulates_across_rounds(self, service):
        """The same flow seen in consecutive windows keeps one CLog
        entry whose counters accumulate (Merkle update path)."""
        for window in range(4):
            commit_window(service.store, service.bulletin, "r1", window,
                          [make_record(lost_packets=2,
                                       first_switched_ms=window * 5_000,
                                       last_switched_ms=(window + 1)
                                       * 5_000)])
            service.aggregate_window(window)
        assert len(service.state) == 1
        entry = service.state.entries_in_slot_order()[0]
        assert entry.lost_packets == 8      # SUM across 4 rounds
        assert entry.record_count == 4
        assert entry.first_ms == 0
        assert entry.last_ms == 20_000

    def test_ten_round_chain_verifies(self, service):
        for window in range(10):
            commit_window(service.store, service.bulletin, "r1", window,
                          [make_record(sport=1000 + window)])
            service.aggregate_window(window)
        from repro.core.verifier_client import VerifierClient
        verifier = VerifierClient(service.bulletin)
        verified = verifier.verify_chain(service.chain.receipts())
        assert [v.round for v in verified] == list(range(10))
        assert verified[-1].size == 10

    def test_state_root_consistent_with_last_journal(self, service):
        for window in range(3):
            commit_window(service.store, service.bulletin, "r1", window,
                          [make_record(sport=1000 + window)])
            service.aggregate_window(window)
        header = service.chain.latest.journal_header
        assert header["new_root"] == service.state.root
        assert header["size"] == len(service.state)

    def test_query_after_each_round(self, service):
        for window in range(3):
            commit_window(service.store, service.bulletin, "r1", window,
                          [make_record(sport=1000 + window,
                                       lost_packets=window)])
            service.aggregate_window(window)
            response = service.answer_query(
                "SELECT COUNT(*), SUM(lost_packets) FROM clogs")
            assert response.values[0] == window + 1

    def test_growth_across_capacity_boundaries(self, service):
        """Insert counts that force repeated tree-depth growth across
        rounds; the chain must stay consistent."""
        sport = 1000
        for window, batch in enumerate([1, 2, 4, 8, 16]):
            records = []
            for _ in range(batch):
                records.append(make_record(sport=sport))
                sport += 1
            commit_window(service.store, service.bulletin, "r1", window,
                          records)
            service.aggregate_window(window)
        assert len(service.state) == 31
        assert service.state.depth == 5
        from repro.core.verifier_client import VerifierClient
        VerifierClient(service.bulletin).verify_chain(
            service.chain.receipts())
