"""Concurrency harness for the multi-tenant query-serving layer.

Hundreds of asyncio clients (coroutines over real TCP connections)
against a threaded :class:`~repro.net.server.ProverServer` running the
:class:`~repro.qserve.service.QueryService`.  The invariants:

* **Exactly-once** — every submitted query receives exactly one
  answer or exactly one typed error; nothing is lost, nothing is
  answered twice (the async client is deliberately single-attempt, so
  the transport cannot blur the accounting).
* **Verifiability under load** — every receipt that comes back
  verifies against the bulletin, and all answers to the same (sql,
  round) carry byte-identical journals no matter which batch proved
  them.
* **Typed backpressure** — overload surfaces as
  :class:`~repro.errors.AdmissionRejected` (never a hang, never an
  untyped 500), and per-tenant rate limits hold within tolerance.
* **Loop responsiveness** — a slow uncached query proves on an
  executor thread, so concurrent STATUS/METRICS requests answer
  immediately instead of queueing behind it.

``REPRO_LOAD_CLIENTS`` scales the client count (default 120).
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.errors import AdmissionRejected
from repro.net import AsyncQueryClient, ProverServer
from repro.qserve import QueryService

from ..conftest import make_committed_records

N_CLIENTS = int(os.environ.get("REPRO_LOAD_CLIENTS", "120"))
N_TENANTS = 4

# A small family of distinct queries so the load both batches (distinct
# sqls share scans) and coalesces (repeats hit the result cache).
QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    "SELECT SUM(octets) FROM clogs",
    "SELECT AVG(rtt_avg_us) FROM clogs",
    "SELECT COUNT(*), SUM(packets) FROM clogs WHERE packets > 50",
    "SELECT SUM(octets) FROM clogs GROUP BY src_net16",
    "SELECT MIN(packets), MAX(packets) FROM clogs",
]


@pytest.fixture(scope="module")
def backdrop():
    """An aggregated engine-backed service plus its bulletin."""
    store, bulletin, _ = make_committed_records(60, seed=17)
    service = ProverService(store, bulletin, pool_backend="thread",
                            prove_workers=2)
    service.aggregate_all_committed()
    yield service, bulletin
    service.close()


def serve(service, qserve, **kwargs):
    kwargs.setdefault("max_connections", N_CLIENTS * 2)
    kwargs.setdefault("request_timeout", 120.0)
    return ProverServer(service, qserve=qserve, **kwargs)


class TestQServeLoad:
    def test_no_query_lost_or_double_answered(self, backdrop):
        service, bulletin = backdrop
        service.query_cache.clear()
        qserve = QueryService(service, max_inflight=N_CLIENTS * 2,
                              batch=True, batch_window=0.01)
        server = serve(service, qserve)
        with server:
            outcomes = asyncio.run(self._flood(server))

        assert len(outcomes) == N_CLIENTS
        failures = [o for o in outcomes if isinstance(o, Exception)]
        assert failures == [], failures

        # Same (sql, round) ⇒ byte-identical journal, whichever batch
        # (or cache tier) produced it.
        by_sql: dict[str, bytes] = {}
        for index, response in enumerate(outcomes):
            sql = QUERIES[index % len(QUERIES)]
            assert response.sql == sql
            journal = response.receipt.journal.data
            assert by_sql.setdefault(sql, journal) == journal

        # Every distinct receipt verifies against the public material.
        verifier = VerifierClient(bulletin)
        chain = verifier.verify_chain(service.chain.receipts())
        seen: set[bytes] = set()
        for response in outcomes:
            if response.receipt.journal.data in seen:
                continue
            seen.add(response.receipt.journal.data)
            verifier.verify_query(response, chain[-1])

        stats = qserve.stats()
        assert stats["inflight"] == 0
        assert stats["queued"] == 0
        # The cache did real coalescing work: far fewer proofs than
        # clients.
        assert stats["cache"]["hits"] > 0

    async def _flood(self, server):
        async def one(index: int):
            sql = QUERIES[index % len(QUERIES)]
            tenant = f"tenant-{index % N_TENANTS}"
            try:
                async with AsyncQueryClient(server.host,
                                            server.port) as client:
                    return await client.query(sql, tenant=tenant)
            except Exception as exc:  # typed errors count as outcomes
                return exc

        return await asyncio.gather(
            *(one(index) for index in range(N_CLIENTS)))

    def test_rate_limited_tenant_within_tolerance(self, backdrop):
        """A hot tenant hammering a cache-warm query is throttled to
        its bucket; a polite tenant on the same server is untouched."""
        service, _ = backdrop
        sql = "SELECT COUNT(*) FROM clogs"
        service.answer_query(sql)  # warm: successes cost no proving
        rate, burst = 5.0, 3.0
        qserve = QueryService(service, max_inflight=256,
                              tenant_rate=rate, tenant_burst=burst)
        server = serve(service, qserve)
        with server:
            hot, polite, elapsed = asyncio.run(
                self._hammer(server, sql))

        rejected = [o for o in hot if isinstance(o, Exception)]
        accepted = [o for o in hot if not isinstance(o, Exception)]
        assert rejected, "the hot tenant was never throttled"
        assert all(isinstance(o, AdmissionRejected) for o in rejected)
        assert all("rate limit" in str(o) for o in rejected)
        # Tolerance: the bucket admits at most burst + rate * elapsed
        # whole tokens (+1 for refill raggedness at the boundary).
        assert len(accepted) <= int(burst + rate * elapsed) + 1
        assert len(accepted) >= int(burst)
        # The polite tenant (one request) was never collateral damage.
        assert not isinstance(polite, Exception)

    async def _hammer(self, server, sql):
        start = time.monotonic()
        async with AsyncQueryClient(server.host, server.port) as hot:
            outcomes = []
            for _ in range(40):
                try:
                    outcomes.append(await hot.query(sql, tenant="hot"))
                except AdmissionRejected as exc:
                    outcomes.append(exc)
        elapsed = time.monotonic() - start
        async with AsyncQueryClient(server.host, server.port) as cold:
            try:
                polite = await cold.query(sql, tenant="polite")
            except Exception as exc:
                polite = exc
        return outcomes, polite, elapsed

    def test_capacity_backpressure_is_typed(self, backdrop):
        """Flooding a tiny admission bound yields immediate typed
        rejections for the overflow — and every accepted query still
        answers correctly."""
        service, _ = backdrop
        # A query no other test warms: the shared persistent tier must
        # miss, or every submit would resolve without holding a slot.
        sql = ("SELECT SUM(octets), COUNT(*) FROM clogs "
               "GROUP BY dst_port")
        qserve = QueryService(service, max_inflight=4, batch=True,
                              batch_window=0.05)
        server = serve(service, qserve)
        with server:
            outcomes = asyncio.run(self._burst(server, 24, sql))

        accepted = [o for o in outcomes if not isinstance(o, Exception)]
        rejected = [o for o in outcomes if isinstance(o, Exception)]
        assert len(accepted) + len(rejected) == 24
        assert rejected, "overflow was absorbed rather than rejected"
        assert all(isinstance(o, AdmissionRejected) for o in rejected)
        assert all("admission queue is full" in str(o)
                   for o in rejected)
        journals = {o.receipt.journal.data for o in accepted}
        assert len(journals) == 1  # everyone got the same proven answer
        assert qserve.stats()["inflight"] == 0

    async def _burst(self, server, count, sql):
        async def one(_index: int):
            try:
                async with AsyncQueryClient(server.host,
                                            server.port) as client:
                    return await client.query(sql, tenant="burst")
            except Exception as exc:
                return exc

        return await asyncio.gather(*(one(i) for i in range(count)))

    def test_slow_query_does_not_stall_status(self, backdrop):
        """Regression: proof work runs on an executor thread, so the
        event loop keeps answering STATUS/METRICS while a cold query
        proves.  (Before the fix, the loop itself proved the query and
        every concurrent request queued behind it.)"""
        service, _ = backdrop
        service.query_cache.clear()
        qserve = QueryService(service, max_inflight=16)
        server = serve(service, qserve)
        with server:
            status_latencies, query_seconds = asyncio.run(
                self._probe(server))

        # The cold proof takes real work; the probes must not inherit
        # any of it.  Generous absolute bound to stay CI-safe.
        assert query_seconds > 0
        assert max(status_latencies) < min(2.0, query_seconds + 2.0)
        assert len(status_latencies) == 10

    async def _probe(self, server):
        sql = ("SELECT SUM(octets), AVG(rtt_avg_us) FROM clogs "
               "WHERE packets > 10 GROUP BY src_port")

        async def slow_query():
            start = time.monotonic()
            async with AsyncQueryClient(server.host,
                                        server.port) as client:
                await client.query(sql, tenant="heavy")
            return time.monotonic() - start

        async def probes():
            latencies = []
            async with AsyncQueryClient(server.host,
                                        server.port) as client:
                for _ in range(10):
                    start = time.monotonic()
                    status = await client.fetch_status()
                    latencies.append(time.monotonic() - start)
                    assert status["service"]["rounds"] >= 1
                    assert status["qserve"] is not None
                    await asyncio.sleep(0.01)
            return latencies

        query_task = asyncio.ensure_future(slow_query())
        await asyncio.sleep(0.05)  # let the query reach the prover
        latencies = await probes()
        query_seconds = await query_task
        return latencies, query_seconds
