"""End-to-end integration: the full Figure-1 pipeline.

Simulate traffic → routers commit windows → prover aggregates with
chained proofs → client queries → client verifies everything from
public material only.
"""

import pytest

from repro.core.guest_programs import aggregation_guest, query_guest
from repro.core.system import SystemConfig, TelemetrySystem
from repro.zkvm import verify_receipt


class TestFullPipeline:
    def test_simulate_aggregate_query_verify(self, aggregated_system):
        system = aggregated_system
        assert len(system.prover.chain) >= 2  # multiple windows/rounds

        response, verified = system.query(
            "SELECT COUNT(*), SUM(lost_packets) FROM clogs")
        assert verified.values == response.values
        assert verified.scanned == len(system.prover.state)

    def test_every_receipt_verifies_standalone(self, aggregated_system):
        for link in aggregated_system.prover.chain:
            verify_receipt(link.receipt, aggregation_guest.image_id)

    def test_query_receipt_verifies(self, aggregated_system):
        response = aggregated_system.prover.answer_query(
            "SELECT MAX(hop_count) FROM clogs")
        verify_receipt(response.receipt, query_guest.image_id)

    def test_chain_roots_link(self, aggregated_system):
        verified = aggregated_system.verifier.verify_chain(
            aggregated_system.prover.chain.receipts())
        for prev, current in zip(verified, verified[1:]):
            assert current.prev_root == prev.new_root
            assert current.round == prev.round + 1

    def test_aggregation_matches_ground_truth(self, aggregated_system):
        """The proven CLog dataset reflects what the simulator sent."""
        system = aggregated_system
        # Reconstruct ground truth from the store (what routers logged).
        from repro.core.clog import CLogEntry
        from repro.core.policy import DEFAULT_POLICY
        truth = {}
        for router_id in sorted(system.store.router_ids()):
            for window in system.store.window_indices(router_id):
                for record in system.store.window_records(router_id,
                                                          window):
                    existing = truth.get(record.key)
                    truth[record.key] = (
                        existing.merge(record, DEFAULT_POLICY)
                        if existing else CLogEntry.fresh(record))
        state_entries = {e.key: e for e in
                         system.prover.state.entries_in_slot_order()}
        assert set(truth) == set(state_entries)
        mismatches = [k for k in truth
                      if truth[k].lost_packets !=
                      state_entries[k].lost_packets]
        assert not mismatches

    def test_query_results_are_reproducible(self, aggregated_system):
        sql = "SELECT AVG(rtt_avg_us) FROM clogs WHERE hop_count >= 2"
        first = aggregated_system.prover.answer_query(sql)
        second = aggregated_system.prover.answer_query(sql)
        assert first.values == second.values
        assert first.receipt.claim_digest == second.receipt.claim_digest


class TestJournalPrivacy:
    def test_aggregation_journal_reveals_no_addresses(self,
                                                      aggregated_system):
        """Confidentiality: journals contain only digests and counters,
        never flow 5-tuples or raw records."""
        import re
        for link in aggregated_system.prover.chain:
            values = link.receipt.journal.decode()
            header, items = values[0], values[1:]
            assert set(header) == {"round", "prev_root", "new_root",
                                   "size", "depth", "windows", "policy",
                                   "entries"}
            for item in items:
                assert set(item) == {"s", "l", "t"}
            # No dotted-quad strings anywhere in the serialized journal.
            text = link.receipt.journal.data.decode("latin1")
            for match in re.findall(
                    r"\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\b", text):
                pytest.fail(f"journal leaks address-like text {match}")

    def test_query_journal_reveals_only_query_and_result(
            self, aggregated_system):
        response = aggregated_system.prover.answer_query(
            "SELECT COUNT(*) FROM clogs")
        journal = response.receipt.journal.decode_one()
        assert set(journal) == {"query", "root", "round", "labels",
                                "values", "matched", "scanned",
                                "group_by", "groups"}
        assert journal["group_by"] is None  # ungrouped query


class TestBackendParity:
    def test_sqlite_backend_full_pipeline(self):
        system = TelemetrySystem(SystemConfig(
            seed=11, flows_per_tick=5, backend="sqlite"))
        system.generate(100)
        rounds = system.aggregate_all()
        assert rounds >= 1
        response, verified = system.query(
            "SELECT COUNT(*) FROM clogs")
        assert verified.values == response.values
        system.close()

    def test_memory_and_sqlite_agree(self):
        def run(backend):
            system = TelemetrySystem(SystemConfig(
                seed=23, flows_per_tick=5, backend=backend))
            system.generate(100)
            system.aggregate_all()
            root = system.prover.state.root
            system.close()
            return root
        assert run("memory") == run("sqlite")
