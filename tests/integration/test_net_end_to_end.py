"""Integration: the distributed Figure-1 deployment over localhost.

Routers publish commitments to a remote prover server, trigger an
aggregation round, and a remote client issues a proven query and
verifies it from fetched public material only — all over real TCP
sockets.  Fault cases exercise the protocol's failure surface: every
injected fault must surface as a typed :mod:`repro.errors` exception
after bounded retries, never a hang or a raw socket error.
"""

from __future__ import annotations

import concurrent.futures
import socket
import struct
import threading

import pytest

from repro.commitments import BulletinBoard
from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.errors import (
    ConnectionFailed,
    FrameTooLarge,
    MissingCommitment,
    ProofError,
    QuerySyntaxError,
    ReproError,
    RetryExhausted,
    TruncatedFrame,
)
from repro.net import ProverServer, QueryClient, RetryPolicy, \
    RouterClient
from repro.net.framing import HEADER, MAGIC, WIRE_VERSION, encode_frame

from ..conftest import make_committed_records

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01,
                         max_delay=0.05)
SQL = "SELECT COUNT(*), SUM(packets) FROM clogs"


@pytest.fixture
def deployment():
    """A live server whose bulletin starts EMPTY: routers must publish
    over the wire before anything can aggregate."""
    store, router_board, _count = make_committed_records(40)
    service = ProverService(store, BulletinBoard())
    server = ProverServer(service, idle_timeout=5.0,
                          request_timeout=30.0)
    server.start_background()
    try:
        yield server, router_board
    finally:
        server.stop_background()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestHappyPath:
    def test_router_publish_aggregate_query_verify(self, deployment):
        server, router_board = deployment

        # Routers publish their window commitments over the wire.
        with RouterClient(server.host, server.port,
                          retry=FAST_RETRY) as router:
            assert router.publish_all(router_board) == 4
            rounds = router.run_round()
            assert len(rounds) == 1
            assert rounds[0]["round"] == 0

        # A remote client queries and verifies from public material.
        with QueryClient(server.host, server.port,
                         retry=FAST_RETRY) as client:
            response = client.query(SQL)
            bulletin = client.fetch_bulletin()
            receipts = client.fetch_receipt_chain()

        verifier = VerifierClient(bulletin)
        verified = verifier.verify_response(response, receipts)
        assert verified.values == response.values
        # COUNT(*) over everything: the count equals the scanned flows.
        assert verified.values[0] == verified.scanned > 0

    def test_verified_query_convenience(self, deployment):
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            router.publish_all(router_board)
            router.run_round()
        with QueryClient(server.host, server.port) as client:
            response, verified = client.verified_query(SQL)
        assert verified.values == response.values

    def test_aggregation_without_published_commitments_fails_typed(
            self, deployment):
        server, _router_board = deployment
        with RouterClient(server.host, server.port,
                          retry=FAST_RETRY) as router:
            with pytest.raises(MissingCommitment):
                router.run_round([0])

    def test_double_aggregation_rejected_remotely(self, deployment):
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            router.publish_all(router_board)
            router.run_round([0])
            with pytest.raises(ProofError):
                router.run_round([0])

    def test_bad_sql_surfaces_as_syntax_error(self, deployment):
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            router.publish_all(router_board)
            router.run_round()
        with QueryClient(server.host, server.port,
                         retry=FAST_RETRY) as client:
            with pytest.raises(QuerySyntaxError):
                client.query("SELEKT nothing FROM nowhere")

    def test_concurrent_clients(self, deployment):
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            router.publish_all(router_board)
            router.run_round()

        def one_query(i: int):
            with QueryClient(server.host, server.port,
                             retry=FAST_RETRY) as client:
                return client.query(SQL).values

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(one_query, range(16)))
        assert len(set(results)) == 1  # deterministic, all identical

    def test_health_reports_progress(self, deployment):
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            before = router.health()
            assert before["rounds"] == 0
            router.publish_all(router_board)
            router.run_round()
            after = router.health()
        assert after["rounds"] == 1
        assert after["commitments"] == 4
        assert after["status"] == "ok"


class TestStatusEndpoint:
    def test_status_without_daemon(self, deployment):
        server, _router_board = deployment
        with QueryClient(server.host, server.port) as client:
            body = client.fetch_status()
        assert body["daemon"] is None
        assert body["service"]["rounds"] == 0
        assert "query_cache_max" in body["service"]

    def test_status_surfaces_daemon_health(self):
        from repro.core.daemon import AggregationDaemon
        from repro.netflow.clock import SimClock
        store, bulletin, _ = make_committed_records(20)
        service = ProverService(store, bulletin)
        daemon = AggregationDaemon(service, SimClock())
        server = ProverServer(service, daemon=daemon,
                              idle_timeout=5.0)
        server.start_background()
        try:
            with QueryClient(server.host, server.port) as client:
                body = client.fetch_status()
        finally:
            server.stop_background()
        health = body["daemon"]
        assert health["state"] == "healthy"
        assert health["quarantined"] == {}
        assert health["stats"]["rounds"] == 0

    def test_client_transport_fault_site_retries(self, deployment):
        """A net.transport fault on the first attempt is absorbed by
        the client's retry policy; the request still succeeds."""
        from repro.faults import FaultInjector, FaultPlan
        from repro.faults.plan import NET_TRANSPORT
        server, _router_board = deployment
        injector = FaultInjector(FaultPlan.parse(
            "net.transport:connection:count=1"))
        with QueryClient(server.host, server.port, retry=FAST_RETRY,
                         fault_injector=injector) as client:
            body = client.fetch_status()
        assert body["service"]["rounds"] == 0
        assert injector.injected(NET_TRANSPORT) == 1


class TestFaults:
    def test_dead_server_raises_after_bounded_retries(self):
        client = QueryClient("127.0.0.1", _free_port(),
                             retry=FAST_RETRY, timeout=1.0)
        with pytest.raises(RetryExhausted) as info:
            client.query(SQL)
        assert info.value.attempts == FAST_RETRY.max_attempts
        assert isinstance(info.value.__cause__, ConnectionFailed)

    def test_truncated_response_frame(self):
        """A server that dies mid-frame must yield TruncatedFrame →
        RetryExhausted, not a hang or a raw socket error."""
        def serve_truncated(conn: socket.socket) -> None:
            conn.recv(65536)  # swallow the request
            # Header promises 1000 payload bytes; send 10 and die.
            conn.sendall(HEADER.pack(MAGIC, WIRE_VERSION, 1000)
                         + b"x" * 10)
            conn.close()

        with _fake_server(serve_truncated) as port:
            client = QueryClient("127.0.0.1", port, retry=FAST_RETRY,
                                 timeout=2.0)
            with pytest.raises(RetryExhausted) as info:
                client.query(SQL)
        assert isinstance(info.value.__cause__, TruncatedFrame)

    def test_oversized_request_rejected_by_server(self, deployment):
        server, _router_board = deployment
        small_server = ProverServer(server.service,
                                    max_frame_size=1024,
                                    idle_timeout=2.0)
        small_server.start_background()
        try:
            client = QueryClient(small_server.host, small_server.port,
                                 retry=FAST_RETRY, timeout=2.0)
            big_sql = ("SELECT COUNT(*) FROM clogs WHERE src_ip = "
                       + '"' + "9" * 4096 + '"')
            with pytest.raises(FrameTooLarge):
                client.query(big_sql)
        finally:
            small_server.stop_background()

    def test_oversized_response_rejected_by_client(self, deployment):
        """The client enforces its own frame budget on responses."""
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            router.publish_all(router_board)
            router.run_round()
        client = QueryClient(server.host, server.port,
                             retry=FAST_RETRY, max_frame_size=256,
                             timeout=2.0)
        with pytest.raises(FrameTooLarge):
            client.fetch_receipt_chain()

    def test_garbage_from_server_is_protocol_error(self):
        def serve_garbage(conn: socket.socket) -> None:
            conn.recv(65536)
            conn.sendall(encode_frame(b"\xffnot an envelope"))
            conn.close()

        with _fake_server(serve_garbage) as port:
            client = QueryClient("127.0.0.1", port, retry=FAST_RETRY,
                                 timeout=2.0)
            with pytest.raises(ReproError):
                client.health()

    def test_server_restart_mid_session(self, deployment):
        """A pooled connection dies with the old server; the retry
        layer reconnects to the new one transparently."""
        server, router_board = deployment
        with RouterClient(server.host, server.port) as router:
            router.publish_all(router_board)
            router.run_round()
        port = server.port
        client = QueryClient(server.host, port,
                             retry=RetryPolicy(max_attempts=4,
                                               base_delay=0.05),
                             timeout=2.0)
        first = client.query(SQL)  # pools a live connection

        server.stop_background()  # restart on the same port
        replacement = ProverServer(server.service, port=port,
                                   idle_timeout=5.0)
        replacement.start_background()
        try:
            again = client.query(SQL)
            assert again.values == first.values
            assert again.receipt.claim_digest \
                == first.receipt.claim_digest  # deterministic proving
        finally:
            client.close()
            replacement.stop_background()

    def test_slow_client_disconnected_by_idle_timeout(self,
                                                      deployment):
        server, _router_board = deployment
        quick = ProverServer(server.service, idle_timeout=0.2)
        quick.start_background()
        try:
            with socket.create_connection((quick.host, quick.port),
                                          timeout=5.0) as sock:
                sock.sendall(b"RV")  # 2 of 7 header bytes, then stall
                sock.settimeout(5.0)
                assert sock.recv(4096) == b""  # server hung up on us
        finally:
            quick.stop_background()

    def test_partial_frame_then_silence_does_not_wedge_server(
            self, deployment):
        """After dropping a slow client the server keeps serving."""
        server, router_board = deployment
        quick = ProverServer(server.service, idle_timeout=0.2)
        quick.start_background()
        try:
            stalled = socket.create_connection(
                (quick.host, quick.port), timeout=5.0)
            stalled.sendall(struct.pack(">2sB", MAGIC, WIRE_VERSION))
            with RouterClient(quick.host, quick.port,
                              retry=FAST_RETRY) as router:
                assert router.health()["status"] == "ok"
            stalled.close()
        finally:
            quick.stop_background()


class _fake_server:
    """A one-connection-at-a-time raw TCP server for fault injection."""

    def __init__(self, handler) -> None:
        self._handler = handler

    def __enter__(self) -> int:
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR,
                              1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._running = True

        def loop() -> None:
            while self._running:
                try:
                    conn, _addr = self._sock.accept()
                except OSError:
                    return
                try:
                    self._handler(conn)
                except OSError:
                    pass

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()
        return self._sock.getsockname()[1]

    def __exit__(self, *exc_info: object) -> None:
        self._running = False
        self._sock.close()
        self._thread.join(timeout=5)
