"""Adversarial chain constructions the client verifier must reject.

These forge chains a *malicious prover* could attempt with access to
the honest proving machinery (i.e., without breaking the crypto):
double-counting a committed window, forking history, splicing rounds
from another deployment.
"""

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.aggregation import Aggregator, RouterWindowInput
from repro.core.clog import CLogState
from repro.core.verifier_client import VerifierClient
from repro.errors import ChainError

from ..conftest import make_record


def committed(bulletin: BulletinBoard, router: str, window: int,
              records) -> RouterWindowInput:
    blobs = tuple(r.to_bytes() for r in records)
    digest = window_digest(list(blobs))
    if bulletin.try_get(router, window) is None:
        bulletin.publish(Commitment(router, window, digest,
                                    len(blobs), window * 5_000))
    return RouterWindowInput(router_id=router, window_index=window,
                             commitment=digest, blobs=blobs)


class TestReplayAcrossRounds:
    def test_double_counted_window_rejected(self):
        """A prover aggregates the SAME committed window in two rounds
        (double-counting committed loss, say).  Each round's receipt is
        individually valid; only chain-level window tracking catches
        it."""
        bulletin = BulletinBoard()
        window0 = committed(bulletin, "r1", 0,
                            [make_record(lost_packets=5)])
        aggregator = Aggregator()
        first = aggregator.aggregate(CLogState(), [window0], None)
        # Round 1 replays window 0 (ProverService would refuse; the
        # raw Aggregator — a malicious prover's tool — does not).
        second = aggregator.aggregate(first.new_state, [window0],
                                      first.receipt)
        verifier = VerifierClient(bulletin)
        with pytest.raises(ChainError, match="twice"):
            verifier.verify_chain([first.receipt, second.receipt])

    def test_distinct_windows_pass(self):
        bulletin = BulletinBoard()
        window0 = committed(bulletin, "r1", 0, [make_record()])
        window1 = committed(bulletin, "r1", 1,
                            [make_record(sport=2000)])
        aggregator = Aggregator()
        first = aggregator.aggregate(CLogState(), [window0], None)
        second = aggregator.aggregate(first.new_state, [window1],
                                      first.receipt)
        VerifierClient(bulletin).verify_chain([first.receipt,
                                               second.receipt])


class TestForkedHistory:
    def test_spliced_foreign_round_rejected(self):
        """Round 1 from a *different* genesis cannot extend round 0 of
        this chain (prev_root mismatch)."""
        bulletin = BulletinBoard()
        window0 = committed(bulletin, "r1", 0, [make_record()])
        window1 = committed(bulletin, "r1", 1,
                            [make_record(sport=2000)])
        other0 = committed(bulletin, "r1", 2,
                           [make_record(sport=3000)])
        aggregator = Aggregator()
        genesis = aggregator.aggregate(CLogState(), [window0], None)
        other_genesis = aggregator.aggregate(CLogState(), [other0],
                                             None)
        foreign_round1 = aggregator.aggregate(
            other_genesis.new_state, [window1], other_genesis.receipt)
        verifier = VerifierClient(bulletin)
        with pytest.raises(ChainError, match="prev_root"):
            verifier.verify_chain([genesis.receipt,
                                   foreign_round1.receipt])

    def test_round_skipping_rejected(self):
        bulletin = BulletinBoard()
        window0 = committed(bulletin, "r1", 0, [make_record()])
        window1 = committed(bulletin, "r1", 1,
                            [make_record(sport=2000)])
        aggregator = Aggregator()
        first = aggregator.aggregate(CLogState(), [window0], None)
        second = aggregator.aggregate(first.new_state, [window1],
                                      first.receipt)
        verifier = VerifierClient(bulletin)
        # Presenting round 1 without round 0: not a genesis.
        with pytest.raises(ChainError):
            verifier.verify_chain([second.receipt])


class TestCrossDeploymentSplicing:
    def test_round_from_other_bulletin_rejected(self):
        """Receipts proven against commitments never published on THIS
        bulletin are rejected at the cross-check."""
        foreign_bulletin = BulletinBoard()
        window = committed(foreign_bulletin, "r1", 0, [make_record()])
        result = Aggregator().aggregate(CLogState(), [window], None)
        from repro.errors import MissingCommitment
        empty_bulletin = BulletinBoard()
        with pytest.raises(MissingCommitment):
            VerifierClient(empty_bulletin).verify_chain(
                [result.receipt])

    def test_same_window_different_digest_rejected(self):
        """The bulletin has (r1, 0) but with a different digest than
        the receipt consumed — a forked-commitment splice."""
        prover_bulletin = BulletinBoard()
        window = committed(prover_bulletin, "r1", 0, [make_record()])
        result = Aggregator().aggregate(CLogState(), [window], None)
        client_bulletin = BulletinBoard()
        client_bulletin.publish(Commitment(
            "r1", 0, window_digest([make_record(sport=9).to_bytes()]),
            1, 0))
        from repro.errors import VerificationError
        with pytest.raises(VerificationError, match="differs"):
            VerifierClient(client_bulletin).verify_chain(
                [result.receipt])
