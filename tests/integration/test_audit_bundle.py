"""Integration tests for audit bundles."""

import json

import pytest

from repro.core.audit import AuditBundle, BUNDLE_VERSION, verify_bundle
from repro.errors import ReproError, VerificationError


@pytest.fixture(scope="module")
def bundle_setup():
    from repro.core.system import SystemConfig, TelemetrySystem
    system = TelemetrySystem(SystemConfig(seed=11, flows_per_tick=5))
    system.generate(150)
    system.aggregate_all()
    responses = [
        system.prover.answer_query("SELECT COUNT(*) FROM clogs"),
        system.prover.answer_query(
            "SELECT SUM(lost_packets) FROM clogs GROUP BY protocol"),
    ]
    bundle = AuditBundle.from_service(
        system.prover, responses, metadata={"operator": "test-isp"})
    return system, bundle


class TestRoundTrip:
    def test_bundle_verifies(self, bundle_setup):
        _system, bundle = bundle_setup
        report = verify_bundle(bundle)
        assert report.rounds == len(bundle.chain)
        assert report.checkpoint_ok
        assert len(report.queries) == 2
        assert "rounds verified" in report.summary()

    def test_json_roundtrip_preserves_verifiability(self, bundle_setup):
        _system, bundle = bundle_setup
        restored = AuditBundle.from_json_bytes(bundle.to_json_bytes())
        report = verify_bundle(restored)
        assert report.final_root == verify_bundle(bundle).final_root
        assert restored.metadata == {"operator": "test-isp"}

    def test_bundle_is_self_contained(self, bundle_setup):
        """Verification works with the provider's systems gone —
        only the serialized bytes survive."""
        _system, bundle = bundle_setup
        data = bundle.to_json_bytes()
        del bundle
        report = verify_bundle(AuditBundle.from_json_bytes(data))
        assert report.rounds >= 1

    def test_grouped_query_in_bundle(self, bundle_setup):
        _system, bundle = bundle_setup
        report = verify_bundle(bundle)
        grouped = [q for q in report.queries if q["groups"]]
        assert grouped, "expected the GROUP BY query to carry groups"


class TestRejections:
    def _doc(self, bundle) -> dict:
        return json.loads(bundle.to_json_bytes().decode())

    def test_tampered_commitment_rejected(self, bundle_setup):
        _system, bundle = bundle_setup
        doc = self._doc(bundle)
        doc["commitments"][0]["digest"] = "11" * 32
        with pytest.raises(ReproError):
            verify_bundle(AuditBundle.from_json_bytes(
                json.dumps(doc).encode()))

    def test_dropped_round_rejected(self, bundle_setup):
        _system, bundle = bundle_setup
        if len(bundle.chain) < 2:
            pytest.skip("need two rounds")
        doc = self._doc(bundle)
        doc["chain"] = doc["chain"][1:]  # drop genesis
        with pytest.raises(ReproError):
            verify_bundle(AuditBundle.from_json_bytes(
                json.dumps(doc).encode()))

    def test_checkpoint_mismatch_rejected(self, bundle_setup):
        _system, bundle = bundle_setup
        doc = self._doc(bundle)
        doc["checkpoint"]["root"] = "22" * 32
        with pytest.raises(VerificationError, match="checkpoint"):
            verify_bundle(AuditBundle.from_json_bytes(
                json.dumps(doc).encode()))

    def test_foreign_query_receipt_rejected(self, bundle_setup):
        """A query receipt proven against a different deployment's
        chain does not verify inside this bundle."""
        system, bundle = bundle_setup
        from repro.core.system import SystemConfig, TelemetrySystem
        other = TelemetrySystem(SystemConfig(seed=99, flows_per_tick=5))
        other.generate(80)
        other.aggregate_all()
        foreign = other.prover.answer_query(
            "SELECT COUNT(*) FROM clogs")
        doc = self._doc(bundle)
        doc["query_receipts"].append(
            foreign.receipt.to_json_bytes().decode())
        with pytest.raises(ReproError):
            verify_bundle(AuditBundle.from_json_bytes(
                json.dumps(doc).encode()))

    def test_unsupported_version(self, bundle_setup):
        _system, bundle = bundle_setup
        doc = self._doc(bundle)
        doc["version"] = BUNDLE_VERSION + 1
        with pytest.raises(ReproError, match="version"):
            AuditBundle.from_json_bytes(json.dumps(doc).encode())

    def test_garbage_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            AuditBundle.from_json_bytes(b"\xff\xfe not json")
