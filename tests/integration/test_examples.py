"""Smoke test: every example script imports and its main() runs.

Examples are the repo's living documentation; a refactor that breaks
one should fail the suite, not wait for a reader to notice.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_main_runs(path: pathlib.Path, capsys):
    spec = importlib.util.spec_from_file_location(
        f"examples_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # __name__ != "__main__" here, so importing must not run main().
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), \
        f"{path.name} has no main() entry point"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
