"""Smoke test: every example script imports and its main() runs.

Examples are the repo's living documentation; a refactor that breaks
one should fail the suite, not wait for a reader to notice.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 8


def test_cluster_harness_smoke(tmp_path, capsys):
    """The compose-style harness brings a declared fleet up, proves a
    round over the wire, and tears it down."""
    import json
    import sys

    sys.path.insert(0, str(EXAMPLES_DIR / "cluster"))
    try:
        from cluster_harness import ClusterHarness, load_topology, \
            run_demo
    finally:
        sys.path.pop(0)
    topology_path = tmp_path / "topology.json"
    topology_path.write_text(json.dumps({
        "workers": [{"backend": "thread", "workers": 2},
                    {"backend": "serial"}],
        "windows": 1, "flows_per_window": 4}))
    topology = load_topology(topology_path)
    with ClusterHarness(topology["workers"]) as harness:
        assert len(harness.endpoints) == 2
        rounds = run_demo(harness.endpoints, topology)
    assert rounds == 1
    out = capsys.readouterr().out
    assert "chain verifies: 1 rounds" in out


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_main_runs(path: pathlib.Path, capsys):
    spec = importlib.util.spec_from_file_location(
        f"examples_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # __name__ != "__main__" here, so importing must not run main().
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), \
        f"{path.name} has no main() entry point"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
