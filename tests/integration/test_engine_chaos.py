"""Chaos tests for the proving engine under the supervised daemon.

The ``engine.worker`` fault site models a prover worker dying at job
dispatch — the host-side moment a crash surfaces on any backend.  Two
invariants must hold when it fires:

* transient worker faults are absorbed by the daemon's retry schedule
  and the surviving chain is bit-identical to a fault-free run, and
* a permanently poisoned window is quarantined after ``max_attempts``
  without stalling the pool — every other window still proves through
  the same engine.
"""

import os

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.daemon import AggregationDaemon, DaemonPolicy
from repro.core.prover_service import ProverService
from repro.faults import FaultInjector, FaultPlan, inject_faults
from repro.netflow.clock import SimClock
from repro.storage import MemoryLogStore

from ..conftest import make_committed_records, make_record

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def populate(store, bulletin, windows=3, rows_per_window=2):
    for window in range(windows):
        for router in ("r1", "r2"):
            records = [
                make_record(router_id=router,
                            sport=1_000 + window * 10 + j)
                for j in range(rows_per_window)
            ]
            store.append_records(router, window, records)
            bulletin.publish(Commitment(
                router, window,
                window_digest([r.to_bytes() for r in records]),
                len(records), window * 5_000))


def clean_root(windows=3):
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    populate(store, bulletin, windows=windows)
    service = ProverService(store, bulletin)
    for window in range(windows):
        service.aggregate_window(window)
    return service.state.root


def pooled_service(**kwargs):
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    populate(store, bulletin, **kwargs)
    return ProverService(store, bulletin, pool_backend="thread",
                         prove_workers=2)


class TestEngineWorkerFaults:
    def test_transient_worker_faults_absorbed(self):
        """Worker deaths on a retry-friendly schedule: the daemon
        converges to the clean root and nothing is quarantined."""
        service = pooled_service()
        injector = FaultInjector(FaultPlan.parse(
            "engine.worker:proof:start=2,every=3,count=3", seed=SEED))
        inject_faults(service, injector)
        daemon = AggregationDaemon(
            service, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=10,
                         retry_base_ms=100, retry_max_ms=500,
                         stall_after=50),
            seed=SEED)
        try:
            for _ in range(200):
                daemon.step()
                daemon.clock.advance_ms(600)
                if not daemon.pending_windows() and \
                        not daemon.quarantined:
                    break
            assert daemon.quarantined == {}
            assert service.aggregated_windows == {0, 1, 2}
            assert service.state.root == clean_root()
            # The plan actually killed jobs at the engine...
            assert injector.stats()["injected"]["engine.worker"] > 0
            snap = service.status()["engine"]
            assert snap["jobs_failed"] > 0
            # ...and the pool drained: nothing left in flight.
            assert snap["in_flight"] == 0
        finally:
            service.close()

    def test_poisoned_window_quarantined_pool_not_stalled(self):
        """One window can never prove (bad commitment → guest abort
        every attempt).  It must be quarantined after max_attempts
        while the same pool keeps proving every other window."""
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=3)
        poison = [make_record(router_id="r3", sport=9)]
        store.append_records("r3", 1, poison)
        bulletin.publish(Commitment(
            "r3", 1, window_digest([b"poison"]), 1, 5_000))
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        injector = FaultInjector(FaultPlan.parse(
            "engine.worker:proof:count=2", seed=SEED))
        inject_faults(service, injector)
        daemon = AggregationDaemon(
            service, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=3,
                         retry_base_ms=50, retry_max_ms=200,
                         stall_after=50),
            seed=SEED)
        try:
            for _ in range(200):
                daemon.step()
                daemon.clock.advance_ms(300)
                if not daemon.pending_windows():
                    break
            assert set(daemon.quarantined) == {1}
            assert service.aggregated_windows == {0, 2}
            assert daemon.health()["state"] == "degraded"
            snap = service.status()["engine"]
            assert snap["in_flight"] == 0  # pool drained, not stalled
            assert snap["jobs_done"] > 0
            # The operator hook still works with an engine attached.
            assert daemon.requeue(1) is True
            assert 1 in daemon.pending_windows()
        finally:
            service.close()

    def test_engine_faults_use_domain_errors(self):
        """An injected engine.worker fault surfaces as the same
        ProofError a real worker death produces — so the daemon's
        classify/retry logic needs no special case."""
        from repro.errors import ProofError
        service = pooled_service(windows=1)
        injector = FaultInjector(FaultPlan.parse(
            "engine.worker:proof:count=1", seed=SEED))
        inject_faults(service, injector)
        try:
            with pytest.raises(ProofError):
                service.aggregate_window(0)
            # Next attempt rides the same pool and succeeds.
            result = service.aggregate_window(0)
            assert result.record_count == 4
            assert 0 in service.aggregated_windows
        finally:
            service.close()


class TestQueryPartitionFaults:
    """A transient worker fault under a *query* partition job.

    Partitioned queries ride the same pool, cache, and fault sites as
    aggregation rounds, so the recovery story must match: the faulted
    attempt fails loudly with the domain error, and the retry
    completes the round — replaying the already-proven partitions from
    the content-addressed cache and re-proving only the one that died.
    """

    def test_transient_partition_fault_then_retry_completes(self):
        from repro.errors import ProofError
        sql = "SELECT COUNT(*), SUM(octets) FROM clogs"
        store, bulletin, _ = make_committed_records(200, seed=5)
        reference_store, reference_bulletin, _ = \
            make_committed_records(200, seed=5)
        reference = ProverService(reference_store, reference_bulletin)
        reference.aggregate_window(0)
        expected = reference.answer_query(sql)

        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2, query_partitions=4)
        try:
            service.aggregate_window(0)
            injector = FaultInjector(FaultPlan.parse(
                "engine.worker:proof:count=1", seed=SEED))
            inject_faults(service, injector)
            with pytest.raises(ProofError):
                service.answer_query(sql)
            # The failed attempt must not have poisoned the cache.
            response = service.answer_query(sql)
            assert response.receipt.journal.data == \
                expected.receipt.journal.data
            info = service.last_prove_info
            assert info.num_partitions > 1
            # Partitions proven before the fault replay from the cache
            # on the retry; only the faulted job is proven fresh.
            assert any(r.cached for r in info.partition_infos)
            snap = service.status()["engine"]
            assert snap["in_flight"] == 0
            assert snap["jobs_failed"] == 1
        finally:
            service.close()
