"""Chaos tests for the proving engine under the supervised daemon.

The ``engine.worker`` fault site models a prover worker dying at job
dispatch — the host-side moment a crash surfaces on any backend.  Two
invariants must hold when it fires:

* transient worker faults are absorbed by the daemon's retry schedule
  and the surviving chain is bit-identical to a fault-free run, and
* a permanently poisoned window is quarantined after ``max_attempts``
  without stalling the pool — every other window still proves through
  the same engine.
"""

import os

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.daemon import AggregationDaemon, DaemonPolicy
from repro.core.prover_service import ProverService
from repro.faults import FaultInjector, FaultPlan, inject_faults
from repro.netflow.clock import SimClock
from repro.storage import MemoryLogStore

from ..conftest import make_committed_records, make_record

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def populate(store, bulletin, windows=3, rows_per_window=2):
    for window in range(windows):
        for router in ("r1", "r2"):
            records = [
                make_record(router_id=router,
                            sport=1_000 + window * 10 + j)
                for j in range(rows_per_window)
            ]
            store.append_records(router, window, records)
            bulletin.publish(Commitment(
                router, window,
                window_digest([r.to_bytes() for r in records]),
                len(records), window * 5_000))


def clean_root(windows=3):
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    populate(store, bulletin, windows=windows)
    service = ProverService(store, bulletin)
    for window in range(windows):
        service.aggregate_window(window)
    return service.state.root


def pooled_service(**kwargs):
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    populate(store, bulletin, **kwargs)
    return ProverService(store, bulletin, pool_backend="thread",
                         prove_workers=2)


class TestEngineWorkerFaults:
    def test_transient_worker_faults_absorbed(self):
        """Worker deaths on a retry-friendly schedule: the daemon
        converges to the clean root and nothing is quarantined."""
        service = pooled_service()
        injector = FaultInjector(FaultPlan.parse(
            "engine.worker:proof:start=2,every=3,count=3", seed=SEED))
        inject_faults(service, injector)
        daemon = AggregationDaemon(
            service, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=10,
                         retry_base_ms=100, retry_max_ms=500,
                         stall_after=50),
            seed=SEED)
        try:
            for _ in range(200):
                daemon.step()
                daemon.clock.advance_ms(600)
                if not daemon.pending_windows() and \
                        not daemon.quarantined:
                    break
            assert daemon.quarantined == {}
            assert service.aggregated_windows == {0, 1, 2}
            assert service.state.root == clean_root()
            # The plan actually killed jobs at the engine...
            assert injector.stats()["injected"]["engine.worker"] > 0
            snap = service.status()["engine"]
            assert snap["jobs_failed"] > 0
            # ...and the pool drained: nothing left in flight.
            assert snap["in_flight"] == 0
        finally:
            service.close()

    def test_poisoned_window_quarantined_pool_not_stalled(self):
        """One window can never prove (bad commitment → guest abort
        every attempt).  It must be quarantined after max_attempts
        while the same pool keeps proving every other window."""
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=3)
        poison = [make_record(router_id="r3", sport=9)]
        store.append_records("r3", 1, poison)
        bulletin.publish(Commitment(
            "r3", 1, window_digest([b"poison"]), 1, 5_000))
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        injector = FaultInjector(FaultPlan.parse(
            "engine.worker:proof:count=2", seed=SEED))
        inject_faults(service, injector)
        daemon = AggregationDaemon(
            service, SimClock(),
            DaemonPolicy(batch_limit=1, max_lag_ms=0, max_attempts=3,
                         retry_base_ms=50, retry_max_ms=200,
                         stall_after=50),
            seed=SEED)
        try:
            for _ in range(200):
                daemon.step()
                daemon.clock.advance_ms(300)
                if not daemon.pending_windows():
                    break
            assert set(daemon.quarantined) == {1}
            assert service.aggregated_windows == {0, 2}
            assert daemon.health()["state"] == "degraded"
            snap = service.status()["engine"]
            assert snap["in_flight"] == 0  # pool drained, not stalled
            assert snap["jobs_done"] > 0
            # The operator hook still works with an engine attached.
            assert daemon.requeue(1) is True
            assert 1 in daemon.pending_windows()
        finally:
            service.close()

    def test_engine_faults_use_domain_errors(self):
        """An injected engine.worker fault surfaces as the same
        ProofError a real worker death produces — so the daemon's
        classify/retry logic needs no special case."""
        from repro.errors import ProofError
        service = pooled_service(windows=1)
        injector = FaultInjector(FaultPlan.parse(
            "engine.worker:proof:count=1", seed=SEED))
        inject_faults(service, injector)
        try:
            with pytest.raises(ProofError):
                service.aggregate_window(0)
            # Next attempt rides the same pool and succeeds.
            result = service.aggregate_window(0)
            assert result.record_count == 4
            assert 0 in service.aggregated_windows
        finally:
            service.close()


class TestStreamFaults:
    """Worker faults and crashes under streaming composition.

    Streamed rounds keep their half-proven state in two places — the
    in-memory fold frontier and the receipt cache — and recovery leans
    on both: a transient fold fault retries with every already-proven
    delta replaying from the cache, and a full crash restores the
    persisted frontier without re-proving anything that folded.
    """

    def stream_service(self, windows=3):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=windows)
        return ProverService(store, bulletin, pool_backend="thread",
                             prove_workers=2, stream=True)

    def reference_round(self, window_indices):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=max(window_indices) + 1)
        service = ProverService(store, bulletin)
        return service.aggregate_windows(list(window_indices))

    def test_transient_fold_fault_retries_with_cached_deltas(self):
        """A worker dies under the carry fold fired by the second
        delta.  The ingest fails loudly; retrying it replays the delta
        from the receipt cache and re-proves only the faulted fold, and
        the closed round is bit-identical to a fault-free one."""
        from repro.errors import ProofError
        service = self.stream_service()
        try:
            assert service.ingest_window(0) == 1
            # start=2: the retried window's delta (fire 1) proves, the
            # carry fold it triggers (fire 2) dies.
            injector = FaultInjector(FaultPlan.parse(
                "engine.worker:proof:start=2,count=1", seed=SEED))
            inject_faults(service, injector)
            with pytest.raises(ProofError):
                service.ingest_window(1)
            # The failed ingest left the round exactly as it was: one
            # delta on the frontier, window 1 still pending.
            stream = service.stream_status()
            assert stream["pending_deltas"] == 1
            assert stream["ingested_windows"] == [0]
            assert 1 in service.pending_windows()
            # Retry absorbs the window; the two deltas fold into one
            # frontier node.
            assert service.ingest_window(1) == 2
            assert service.stream_status()["frontier_nodes"] == 1
            result = service.close_stream_round()
            info = service.last_prove_info
            # The retried delta replayed from the cache...
            assert not info.delta_results[0].cached
            assert info.delta_results[1].cached
            # ...and every fold (the re-proven carry + the final) was
            # proven fresh — the faulted job never produced a receipt.
            assert not any(r.cached for r in info.fold_results)
            assert injector.stats()["injected"]["engine.worker"] == 1
            snap = service.status()["engine"]
            assert snap["jobs_failed"] == 1
            assert snap["in_flight"] == 0
            reference = self.reference_round([0, 1])
            assert result.receipt.journal.data == \
                reference.receipt.journal.data
            assert service.state.root == reference.new_state.root
        finally:
            service.close()

    def test_faulted_close_keeps_frontier_and_retries(self):
        """A worker death under the *final* fold must not consume the
        frontier — closing again finishes the round."""
        from repro.errors import ProofError
        service = self.stream_service(windows=2)
        try:
            service.ingest_window(0)
            service.ingest_window(1)
            injector = FaultInjector(FaultPlan.parse(
                "engine.worker:proof:count=1", seed=SEED))
            inject_faults(service, injector)
            with pytest.raises(ProofError):
                service.close_stream_round()
            stream = service.stream_status()
            assert stream["open_round"] == 0
            assert stream["frontier_nodes"] == 1
            result = service.close_stream_round()
            assert service.aggregated_windows == {0, 1}
            reference = self.reference_round([0, 1])
            assert result.receipt.journal.data == \
                reference.receipt.journal.data
        finally:
            service.close()

    def test_crash_and_restore_resume_persisted_frontier(self):
        """A prover crashes mid-round with three deltas proven.  A
        fresh service restores the checkpointed frontier and closes the
        round by proving *only* the final fold — no delta re-proves."""
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=3)
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2, stream=True)
        try:
            for window in range(3):
                service.ingest_window(window)
            service.checkpoint()
        finally:
            service.close()  # crash: the in-memory frontier is gone

        revived = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2, stream=True)
        try:
            assert revived.restore() is True
            stream = revived.stream_status()
            assert stream["open_round"] == 0
            assert stream["pending_deltas"] == 3
            assert stream["frontier_nodes"] == 2
            assert stream["ingested_windows"] == [0, 1, 2]
            # Ingested windows are still pending: no receipt covers
            # them until the restored round closes.
            assert revived.pending_windows() == [0, 1, 2]
            result = revived.close_stream_round()
            # The only engine job after the crash is the final fold —
            # the three deltas and the carry fold rode the checkpoint.
            snap = revived.status()["engine"]
            assert snap["jobs_done"] == 1
            assert snap["jobs_failed"] == 0
            info = revived.last_prove_info
            assert info.delta_results == ()
            assert len(info.fold_results) == 1
            assert revived.aggregated_windows == {0, 1, 2}
            reference = self.reference_round([0, 1, 2])
            assert result.receipt.journal.data == \
                reference.receipt.journal.data
            assert revived.state.root == reference.new_state.root
        finally:
            revived.close()


class TestQueryPartitionFaults:
    """A transient worker fault under a *query* partition job.

    Partitioned queries ride the same pool, cache, and fault sites as
    aggregation rounds, so the recovery story must match: the faulted
    attempt fails loudly with the domain error, and the retry
    completes the round — replaying the already-proven partitions from
    the content-addressed cache and re-proving only the one that died.
    """

    def test_transient_partition_fault_then_retry_completes(self):
        from repro.errors import ProofError
        sql = "SELECT COUNT(*), SUM(octets) FROM clogs"
        store, bulletin, _ = make_committed_records(200, seed=5)
        reference_store, reference_bulletin, _ = \
            make_committed_records(200, seed=5)
        reference = ProverService(reference_store, reference_bulletin)
        reference.aggregate_window(0)
        expected = reference.answer_query(sql)

        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2, query_partitions=4)
        try:
            service.aggregate_window(0)
            injector = FaultInjector(FaultPlan.parse(
                "engine.worker:proof:count=1", seed=SEED))
            inject_faults(service, injector)
            with pytest.raises(ProofError):
                service.answer_query(sql)
            # The failed attempt must not have poisoned the cache.
            response = service.answer_query(sql)
            assert response.receipt.journal.data == \
                expected.receipt.journal.data
            info = service.last_prove_info
            assert info.num_partitions > 1
            # Partitions proven before the fault replay from the cache
            # on the retry; only the faulted job is proven fresh.
            assert any(r.cached for r in info.partition_infos)
            snap = service.status()["engine"]
            assert snap["in_flight"] == 0
            assert snap["jobs_failed"] == 1
        finally:
            service.close()


class TestQServeBatchFaults:
    """Worker faults and crashes under *batched* query serving.

    A batch shares its partition scans across member queries, so the
    failure domain is new: one faulted merge must not take down the
    queries that already proved, and a retry must replay the shared
    partitions from the content-addressed receipt cache rather than
    re-scanning.  Crash/restore adds the staleness question — a chain
    that diverged after restore must never be answered from the
    persistent result cache.
    """

    SQLS = [
        "SELECT COUNT(*) FROM clogs",
        "SELECT SUM(octets), MIN(packets) FROM clogs",
        "SELECT AVG(rtt_avg_us) FROM clogs WHERE packets > 50",
    ]

    def _submit_all(self, qserve, sqls):
        import asyncio

        async def scenario():
            await qserve.start()
            try:
                return await asyncio.gather(
                    *(qserve.submit(sql) for sql in sqls),
                    return_exceptions=True)
            finally:
                await qserve.stop()

        return asyncio.run(scenario())

    def test_batch_merge_fault_survivors_answer_faulted_retries(self):
        """A transient engine.worker fault kills the first merge of a
        3-query batch.  The other two queries still answer from the
        same fan-out, and the faulted one retries with every shared
        partition replaying from the receipt cache — every journal
        ends up byte-identical to a fault-free serial run."""
        from repro.core.planner import partition_layout
        from repro.qserve import QueryService

        store, bulletin, _ = make_committed_records(60, seed=13)
        reference_store, reference_bulletin, _ = \
            make_committed_records(60, seed=13)
        reference = ProverService(reference_store, reference_bulletin)
        reference.aggregate_all_committed()
        expected = {sql: reference.answer_query(sql) for sql in
                    self.SQLS}

        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        try:
            service.aggregate_all_committed()
            num_partitions = partition_layout(len(service.state), 4)[1]
            # The fan-out submits the partition jobs first, then one
            # merge per query: fire start=P+1 hits the first merge.
            injector = FaultInjector(FaultPlan.parse(
                f"engine.worker:proof:start={num_partitions + 1},"
                "count=1", seed=SEED))
            inject_faults(service, injector)
            qserve = QueryService(service, batch=True,
                                  batch_window=0.2)
            responses = self._submit_all(qserve, self.SQLS)
            for sql, response in zip(self.SQLS, responses):
                assert not isinstance(response, BaseException), response
                assert response.receipt.journal.data == \
                    expected[sql].receipt.journal.data
            assert injector.stats()["injected"]["engine.worker"] == 1
            snap = service.status()["engine"]
            assert snap["jobs_failed"] == 1
            assert snap["in_flight"] == 0
        finally:
            service.close()

    def test_crash_restore_diverged_chain_never_serves_stale(self):
        """Kill the service mid-batch, then restore onto a chain that
        aggregated *different* windows to the same round index.  The
        killed query fails typed (never hangs), and nothing proven
        before the crash is served for the diverged root — the
        persistent result cache is root-keyed."""
        import asyncio

        from repro.errors import NetworkError
        from repro.qserve import QueryService

        store = MemoryLogStore()
        bulletin = BulletinBoard()
        populate(store, bulletin, windows=2, rows_per_window=3)
        sql = self.SQLS[0]

        service_a = ProverService(store, bulletin,
                                  pool_backend="thread",
                                  prove_workers=2)
        try:
            service_a.aggregate_window(0)
            stale_root = service_a.state.root
            qserve_a = QueryService(service_a, batch=True,
                                    batch_window=30.0)

            async def crash_mid_batch():
                await qserve_a.start()
                # One answer lands in the persistent tier first.
                proven = await qserve_a.submit(sql)
                # The second is queued when the service dies: the huge
                # batch window guarantees it is still waiting.
                victim = asyncio.ensure_future(
                    qserve_a.submit(self.SQLS[1]))
                await asyncio.sleep(0.05)
                await qserve_a.stop()
                return proven, await asyncio.gather(
                    victim, return_exceptions=True)

            stale, (victim_outcome,) = asyncio.run(crash_mid_batch())
            assert stale.root == stale_root
            assert isinstance(victim_outcome, NetworkError)
        finally:
            service_a.close()

        # Restore: same store, same round index, different windows —
        # a diverged chain with a different committed root.
        service_b = ProverService(store, bulletin,
                                  pool_backend="thread",
                                  prove_workers=2)
        try:
            service_b.aggregate_window(1)
            assert service_b.state.root != stale_root
            qserve_b = QueryService(service_b, batch=True,
                                    batch_window=0.05)
            # With the persistent tier attached, the stale answer is
            # still invisible to the diverged chain (root-keyed)...
            assert service_b.query_cache.get(
                sql, 0, service_b.state.root) is None
            # ...while the stale root would still find it.
            assert service_b.query_cache.get(sql, 0,
                                             stale_root) is not None
            responses = self._submit_all(qserve_b,
                                         [sql, self.SQLS[1]])
            for response in responses:
                assert not isinstance(response, BaseException), response
                assert response.root == service_b.state.root
            assert responses[0].receipt.journal.data != \
                stale.receipt.journal.data
            # The killed query left no half-proven cache entry behind.
            assert service_b.query_cache.stats()["persistent"] is True
        finally:
            service_b.close()
