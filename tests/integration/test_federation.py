"""Integration tests for inter-domain peering reconciliation."""

import pytest

from repro.core.federation import (
    PeeringAuditor,
    ReconciliationReport,
    build_peering_scenario,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def scenario():
    return build_peering_scenario(num_flows=60, seed=11,
                                  boundary_loss=0.02)


class TestHonestReconciliation:
    def test_conservation_holds_exactly(self, scenario):
        report = PeeringAuditor(tolerance=0.0).reconcile(scenario)
        assert report.consistent
        assert report.gap == 0
        assert report.flows_a == report.flows_b == 60

    def test_boundary_loss_visible_in_a_chain(self, scenario):
        """A's proven loss includes the peering-link losses."""
        response = scenario.domain_a.prover.answer_query(
            "SELECT SUM(lost_packets), SUM(packets) FROM clogs")
        lost, packets = response.values
        assert lost > 0
        assert lost < packets

    def test_domains_are_isolated(self, scenario):
        """Each domain's chain covers only its own routers."""
        for domain, routers in ((scenario.domain_a, {"r1", "r2"}),
                                (scenario.domain_b, {"r3", "r4"})):
            header = domain.prover.chain.latest.journal_header
            assert {w["r"] for w in header["windows"]} == routers

    def test_report_rendering(self, scenario):
        report = PeeringAuditor().reconcile(scenario)
        assert "CONSISTENT" in str(report)


class TestDisputes:
    def test_understating_b_breaks_its_own_proofs(self):
        """B rewrites its ingress logs to claim it received less
        (billing dispute): B's chain simply cannot be produced."""
        scenario = build_peering_scenario(num_flows=30, seed=13)
        from repro.core.tamper import modify_record_field
        record = scenario.domain_b.store.window_records("r3", 0)[0]
        modify_record_field(scenario.domain_b.store, "r3", 0, 0,
                            packets=record.packets // 2,
                            octets=record.octets // 2)
        with pytest.raises(Exception):
            scenario.domain_b.prover.aggregate_all_committed()

    def test_mismatched_claims_flagged(self):
        """If the two domains genuinely account differently (here: a
        synthetic gap), the auditor's report says DISPUTED."""
        report = ReconciliationReport(
            delivered_by_a=100_000, received_by_b=90_000,
            flows_a=50, flows_b=50, tolerance=0.01)
        assert not report.consistent
        assert report.gap == 10_000
        assert "DISPUTED" in str(report)

    def test_flow_count_mismatch_flagged(self):
        report = ReconciliationReport(
            delivered_by_a=1000, received_by_b=1000,
            flows_a=10, flows_b=9, tolerance=0.1)
        assert not report.consistent

    def test_tolerance(self):
        report = ReconciliationReport(
            delivered_by_a=100_000, received_by_b=99_950,
            flows_a=5, flows_b=5, tolerance=0.001)
        assert report.consistent
        assert report.relative_gap == pytest.approx(0.0005)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            PeeringAuditor(tolerance=-1)


class TestScenarioConstruction:
    def test_all_flows_cross_the_boundary(self, scenario):
        """Every flow appears in both domains (r1 ingress, r4 egress)."""
        a_flows = {r.key for r in
                   scenario.domain_a.store.window_records("r1", 0)}
        b_flows = {r.key for r in
                   scenario.domain_b.store.window_records("r3", 0)}
        assert a_flows == b_flows

    def test_wrong_domain_record_rejected(self, scenario):
        from ..conftest import make_record
        with pytest.raises(ConfigurationError, match="does not belong"):
            scenario.domain_a.commit_window(
                5, [make_record(router_id="r4")])
