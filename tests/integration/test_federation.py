"""Integration tests for inter-domain peering reconciliation."""

import pytest

from repro.core.federation import (
    PeeringAuditor,
    ReconciliationReport,
    build_peering_scenario,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def scenario():
    return build_peering_scenario(num_flows=60, seed=11,
                                  boundary_loss=0.02)


class TestHonestReconciliation:
    def test_conservation_holds_exactly(self, scenario):
        report = PeeringAuditor(tolerance=0.0).reconcile(scenario)
        assert report.consistent
        assert report.gap == 0
        assert report.flows_a == report.flows_b == 60

    def test_boundary_loss_visible_in_a_chain(self, scenario):
        """A's proven loss includes the peering-link losses."""
        response = scenario.domain_a.prover.answer_query(
            "SELECT SUM(lost_packets), SUM(packets) FROM clogs")
        lost, packets = response.values
        assert lost > 0
        assert lost < packets

    def test_domains_are_isolated(self, scenario):
        """Each domain's chain covers only its own routers."""
        for domain, routers in ((scenario.domain_a, {"r1", "r2"}),
                                (scenario.domain_b, {"r3", "r4"})):
            header = domain.prover.chain.latest.journal_header
            assert {w["r"] for w in header["windows"]} == routers

    def test_report_rendering(self, scenario):
        report = PeeringAuditor().reconcile(scenario)
        assert "CONSISTENT" in str(report)


class TestDisputes:
    def test_understating_b_breaks_its_own_proofs(self):
        """B rewrites its ingress logs to claim it received less
        (billing dispute): B's chain simply cannot be produced."""
        scenario = build_peering_scenario(num_flows=30, seed=13)
        from repro.core.tamper import modify_record_field
        record = scenario.domain_b.store.window_records("r3", 0)[0]
        modify_record_field(scenario.domain_b.store, "r3", 0, 0,
                            packets=record.packets // 2,
                            octets=record.octets // 2)
        with pytest.raises(Exception):
            scenario.domain_b.prover.aggregate_all_committed()

    def test_mismatched_claims_flagged(self):
        """If the two domains genuinely account differently (here: a
        synthetic gap), the auditor's report says DISPUTED."""
        report = ReconciliationReport(
            delivered_by_a=100_000, received_by_b=90_000,
            flows_a=50, flows_b=50, tolerance=0.01)
        assert not report.consistent
        assert report.gap == 10_000
        assert "DISPUTED" in str(report)

    def test_flow_count_mismatch_flagged(self):
        report = ReconciliationReport(
            delivered_by_a=1000, received_by_b=1000,
            flows_a=10, flows_b=9, tolerance=0.1)
        assert not report.consistent

    def test_tolerance(self):
        report = ReconciliationReport(
            delivered_by_a=100_000, received_by_b=99_950,
            flows_a=5, flows_b=5, tolerance=0.001)
        assert report.consistent
        assert report.relative_gap == pytest.approx(0.0005)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            PeeringAuditor(tolerance=-1)


class TestScenarioConstruction:
    def test_all_flows_cross_the_boundary(self, scenario):
        """Every flow appears in both domains (r1 ingress, r4 egress)."""
        a_flows = {r.key for r in
                   scenario.domain_a.store.window_records("r1", 0)}
        b_flows = {r.key for r in
                   scenario.domain_b.store.window_records("r3", 0)}
        assert a_flows == b_flows

    def test_wrong_domain_record_rejected(self, scenario):
        from ..conftest import make_record
        with pytest.raises(ConfigurationError, match="does not belong"):
            scenario.domain_a.commit_window(
                5, [make_record(router_id="r4")])


class TestRegressionFixes:
    """Regressions for two reconciliation bugs.

    Both tests fail on the pre-fix code: ``relative_gap`` normalized by
    ``delivered_by_a`` alone (0/0 -> "0.0", i.e. a silent pass when A
    claimed nothing), and ``reconcile`` only aggregated when a domain's
    chain was *completely* empty, so a partially-aggregated domain was
    reconciled against a stale round.
    """

    def test_zero_delivery_gap_is_total_not_zero(self):
        report = ReconciliationReport(
            delivered_by_a=0, received_by_b=500,
            flows_a=5, flows_b=5, tolerance=0.01)
        assert report.relative_gap == 1.0
        assert not report.consistent

    def test_both_zero_is_consistent(self):
        report = ReconciliationReport(
            delivered_by_a=0, received_by_b=0,
            flows_a=0, flows_b=0, tolerance=0.0)
        assert report.relative_gap == 0.0
        assert report.consistent

    def test_reconcile_covers_stale_pending_windows(self):
        """A domain with one round proven and another window still
        pending must be reconciled over *all* committed data."""
        scenario = build_peering_scenario(num_flows=24, seed=3,
                                          num_windows=2)
        scenario.domain_a.prover.aggregate_window(0)
        assert scenario.domain_a.prover.pending_windows() == [1]
        report = PeeringAuditor(tolerance=0.0).reconcile(scenario)
        assert not scenario.domain_a.prover.pending_windows()
        assert not scenario.domain_b.prover.pending_windows()
        assert report.consistent
        assert report.flows_a == report.flows_b == 24


class TestFederationJoin:
    """K-provider joins: one receipt replaces K query responses."""

    @pytest.fixture(scope="class")
    def federation(self):
        from repro.federation import (
            FederationAuditor,
            FederationJoinProver,
            build_federation_scenario,
        )
        scenario = build_federation_scenario(
            num_providers=3, num_flows=36, seed=5,
            boundary_loss=0.02)
        prover = FederationJoinProver(tolerance_ppm=0)
        join = prover.prove_join(scenario)
        report = FederationAuditor().audit(
            scenario.public_views(), scenario.board, join)
        yield scenario, prover, join, report
        prover.close()

    def test_audit_is_consistent(self, federation):
        scenario, _, join, report = federation
        assert report.consistent
        assert report.flagged == ()
        assert join.providers == ("isp-a", "isp-b", "isp-c")
        assert "CONSISTENT" in str(report)

    def test_conservation_across_every_boundary(self, federation):
        """Proven per-boundary conservation: what i delivered is
        exactly what i+1 ingested, for every adjacent pair."""
        _, _, join, report = federation
        assert len(report.boundaries) == 2
        for boundary in report.boundaries:
            assert boundary.ok
            assert boundary.gap == 0
            assert boundary.trusted
        # The matrix rows are the boundary sends.
        assert join.matrix == tuple(
            (b.src, b.dst, b.sent) for b in report.boundaries)

    def test_path_loss_matches_totals(self, federation):
        _, _, join, report = federation
        path = report.path
        assert path["offered"] - path["delivered"] == path["lost"]
        assert path["lost"] > 0  # boundary_loss=0.02 loses something
        assert join.path_loss_ppm == path["loss_ppm"]

    def test_join_roots_are_the_verified_chain_roots(self, federation):
        scenario, _, join, report = federation
        for index, domain in enumerate(scenario.providers):
            chain_root = domain.prover.chain.latest.new_root
            assert join.roots[index] == chain_root
            assert report.providers[index].verified_root == chain_root

    def test_no_raw_records_cross_domain_boundaries(self, federation):
        """The inter-domain artifact is the join receipt: no record
        bytes and no flow key appears in its journal."""
        scenario, _, join, _ = federation
        journal_bytes = join.receipt.journal.data
        for domain in scenario.providers:
            for router_id in domain.router_ids:
                for record in domain.store.window_records(router_id, 0):
                    assert record.to_bytes() not in journal_bytes
                    assert record.key.pack() not in journal_bytes

    def test_sla_violation_detected(self, federation):
        """With a 0-ppm SLA ceiling the lossy providers must fail."""
        from repro.federation import FederationJoinProver
        scenario, prover, _, _ = federation
        strict = FederationJoinProver(engine=prover._engine,
                                      sla_loss_ppm=0)
        join = strict.prove_join(scenario)
        assert not join.sla_ok
        assert False in join.journal["sla"]["providers"]


class TestByzantineProvider:
    """A provider that equivocates on its published root is caught."""

    @pytest.fixture()
    def scenario(self):
        from repro.federation import build_federation_scenario
        built = build_federation_scenario(num_providers=2,
                                          num_flows=10, seed=9)
        built.aggregate_and_publish()
        return built

    def test_join_over_tampered_root_aborts(self, scenario):
        """The coordinator feeds the join guest a root that does not
        match the provider's proven round: deterministic abort."""
        from repro.errors import GuestAbort
        from repro.federation import FederationJoinProver
        from repro.hashing import Digest
        true_root = scenario.board.latest("isp-a")[1]
        fake_root = Digest(bytes(32))
        with FederationJoinProver() as prover:
            with pytest.raises(GuestAbort, match="isp-b"):
                prover.prove_join(scenario,
                                  roots=[true_root, fake_root])
            # Deterministic: same tamper, same abort.
            with pytest.raises(GuestAbort, match="isp-b"):
                prover.prove_join(scenario,
                                  roots=[true_root, fake_root])

    def test_auditor_flags_only_the_equivocator(self, scenario):
        """An honest join followed by a board tamper: the auditor
        flags exactly the tampered provider; the honest one's audit
        is untouched and the proven boundary itself still balances."""
        from repro.federation import (
            FederationAuditor,
            FederationJoinProver,
        )
        from repro.hashing import Digest
        with FederationJoinProver() as prover:
            join = prover.prove_join(scenario)
        round_index = scenario.board.latest("isp-b")[0]
        scenario.board.publish("isp-b", round_index,
                               Digest(bytes(32)), replace=True)
        report = FederationAuditor().audit(
            scenario.public_views(), scenario.board, join)
        assert report.flagged == ("isp-b",)
        assert not report.consistent
        audit_a, audit_b = report.providers
        assert not audit_a.flagged and audit_a.reason == ""
        assert audit_b.reason == "tampered-root"
        # The proven arithmetic still holds; only trust is withdrawn.
        assert all(b.ok for b in report.boundaries)
        assert all(not b.trusted for b in report.boundaries)
