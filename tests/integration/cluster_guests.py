"""Guests for the cluster chaos suite.

Worker daemons run in separate processes, so these guests live in an
importable module: a dispatched :class:`~repro.engine.jobs.ProofJob`
records ``guest_module`` and the worker re-registers the guest by
importing it (the same fallback ``execute_job`` uses for the process
backend).

``slow_guest`` sleeps inside the guest body so chaos tests can hold a
lease *in flight* long enough to SIGKILL the node that owns it —
simulated proving is otherwise far too fast to catch mid-window.
"""

from __future__ import annotations

import time

from repro.core.guest_programs import register_guest
from repro.zkvm import GuestProgram


def _echo_fn(env):
    value = env.read()
    env.tick(100)
    env.commit({"echo": value})


echo_guest = register_guest(GuestProgram(_echo_fn, name="chaos/echo"))


def _slow_fn(env):
    value = env.read()
    time.sleep(0.4)
    env.tick(100)
    env.commit({"echo": value})


slow_guest = register_guest(GuestProgram(_slow_fn, name="chaos/slow"))
