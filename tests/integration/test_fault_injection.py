"""Fault-injection: failures must never corrupt the proof chain.

The prover service's invariant: state and chain advance *only* when a
round fully proves.  Inject storage failures, missing commitments and
mid-round exceptions and confirm the service stays consistent and can
continue once the fault clears.
"""

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.errors import MissingCommitment, StorageError
from repro.storage import MemoryLogStore
from repro.storage.backend import LogStore

from ..conftest import make_record


class FaultyLogStore(LogStore):
    """Delegating store that fails reads after a fuse burns down."""

    def __init__(self, inner: LogStore, read_fuse: int) -> None:
        self.inner = inner
        self.read_fuse = read_fuse

    def _maybe_fail(self):
        if self.read_fuse <= 0:
            raise StorageError("injected backend outage")
        self.read_fuse -= 1

    # reads (fused)
    def window_blobs(self, router_id, window_index):
        self._maybe_fail()
        return self.inner.window_blobs(router_id, window_index)

    def window_indices(self, router_id):
        self._maybe_fail()
        return self.inner.window_indices(router_id)

    def router_ids(self):
        self._maybe_fail()
        return self.inner.router_ids()

    # writes (transparent)
    def append_records(self, router_id, window_index, records):
        self.inner.append_records(router_id, window_index, records)

    def overwrite_raw(self, router_id, window_index, seq, data):
        self.inner.overwrite_raw(router_id, window_index, seq, data)

    def replace_window(self, router_id, window_index, blobs):
        self.inner.replace_window(router_id, window_index, blobs)

    def purge_window(self, router_id, window_index):
        return self.inner.purge_window(router_id, window_index)

    def close(self):
        self.inner.close()


def committed_store(windows: int = 2):
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    for window in range(windows):
        records = [make_record(sport=1000 + window * 10 + i)
                   for i in range(3)]
        store.append_records("r1", window, records)
        bulletin.publish(Commitment(
            "r1", window,
            window_digest([r.to_bytes() for r in records]),
            len(records), window * 5_000))
    return store, bulletin


class TestStorageOutage:
    def test_outage_fails_round_cleanly(self):
        store, bulletin = committed_store()
        faulty = FaultyLogStore(store, read_fuse=1)
        service = ProverService(faulty, bulletin)
        with pytest.raises(StorageError, match="outage"):
            service.aggregate_window(0)
        # Nothing advanced.
        assert len(service.chain) == 0
        assert len(service.state) == 0

    def test_recovery_after_outage(self):
        store, bulletin = committed_store()
        faulty = FaultyLogStore(store, read_fuse=1)
        service = ProverService(faulty, bulletin)
        with pytest.raises(StorageError):
            service.aggregate_window(0)
        faulty.read_fuse = 10**9  # outage over
        result = service.aggregate_window(0)
        assert result.round == 0
        assert len(service.chain) == 1

    def test_failed_round_does_not_mark_window_consumed(self):
        store, bulletin = committed_store()
        faulty = FaultyLogStore(store, read_fuse=1)
        service = ProverService(faulty, bulletin)
        with pytest.raises(StorageError):
            service.aggregate_window(0)
        faulty.read_fuse = 10**9
        # Window 0 is still aggregatable (was not marked consumed).
        service.aggregate_window(0)


class TestMissingCommitments:
    def test_round_refused_without_commitment(self):
        store, bulletin = committed_store()
        # A window present in the store but never published.
        orphan = [make_record(sport=9_000)]
        store.append_records("r1", 9, orphan)
        service = ProverService(store, bulletin)
        with pytest.raises(MissingCommitment):
            service.aggregate_window(9)

    def test_partial_router_coverage_is_fine(self):
        """Only routers that actually logged the window participate."""
        store, bulletin = committed_store(windows=1)
        extra = [make_record(router_id="r2", sport=7_000)]
        store.append_records("r2", 0, extra)
        bulletin.publish(Commitment(
            "r2", 0, window_digest([r.to_bytes() for r in extra]),
            1, 5_000))
        service = ProverService(store, bulletin)
        result = service.aggregate_window(0)
        routers = {w["r"] for w in result.journal_header["windows"]}
        assert routers == {"r1", "r2"}


class TestChainUnaffectedByLaterFaults:
    def test_verified_history_survives_storage_loss(self):
        """Raw logs are ephemeral (§2.2): purging aggregated windows
        must not affect already-proven rounds or their verification."""
        store, bulletin = committed_store()
        service = ProverService(store, bulletin)
        service.aggregate_window(0)
        service.aggregate_window(1)
        # Logs get discarded after aggregation.
        store.purge_window("r1", 0)
        store.purge_window("r1", 1)
        from repro.core.verifier_client import VerifierClient
        verified = VerifierClient(bulletin).verify_chain(
            service.chain.receipts())
        assert len(verified) == 2
        # Queries still work: they run over CLogs, not raw logs.
        response = service.answer_query("SELECT COUNT(*) FROM clogs")
        assert response.value() == len(service.state)
