"""Unit tests for the supervised daemon: retry, quarantine, health."""

import threading

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.daemon import AggregationDaemon, DaemonPolicy
from repro.core.prover_service import ProverService
from repro.errors import ConfigurationError, StorageError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    inject_faults,
)
from repro.netflow.clock import SimClock
from repro.storage import MemoryLogStore

from ..conftest import make_record


def commit(store, bulletin, window, n=2):
    records = [make_record(sport=1000 + window * 10 + i)
               for i in range(n)]
    store.append_records("r1", window, records)
    bulletin.publish(Commitment(
        "r1", window, window_digest([r.to_bytes() for r in records]),
        n, window * 5_000))


@pytest.fixture
def setup():
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    service = ProverService(store, bulletin)
    clock = SimClock()
    return store, bulletin, service, clock


def make_daemon(service, clock, **policy_overrides):
    defaults = dict(batch_limit=2, max_lag_ms=0, max_attempts=3,
                    retry_base_ms=100, retry_max_ms=1_000,
                    retry_jitter=0.0, commitment_deadline_ms=5_000,
                    stall_after=3)
    defaults.update(policy_overrides)
    return AggregationDaemon(service, clock,
                             DaemonPolicy(**defaults))


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"retry_base_ms": -1},
        {"retry_multiplier": 0.5},
        {"retry_jitter": 1.5},
        {"commitment_deadline_ms": -1},
        {"stall_after": 0},
        {"results_kept": 0},
    ])
    def test_supervision_knobs_validated(self, kwargs):
        with pytest.raises(ConfigurationError):
            DaemonPolicy(**kwargs)


class TestRetryBackoff:
    def test_transient_fault_retried_after_backoff(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage:count=1"))
        inject_faults(service, injector)
        commit(store, bulletin, 0)
        assert daemon.step() is None  # fault absorbed, not raised
        assert daemon.stats.faults == 1
        assert daemon.stats.retries == 1
        assert daemon.health()["state"] == "degraded"
        # Window is deferred: not due until the backoff elapses.
        assert daemon.due_windows() == []
        assert daemon.step() is None
        clock.advance_ms(100)
        result = daemon.step()
        assert result is not None
        assert daemon.health()["state"] == "healthy"

    def test_backoff_grows_exponentially(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock, max_attempts=5)
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage:count=3"))
        inject_faults(service, injector)
        commit(store, bulletin, 0)
        delays = []
        for _ in range(3):
            daemon.step()
            delay = daemon._retry_at_ms[0] - clock.now_ms()
            delays.append(delay)
            clock.advance_ms(delay)
        assert delays == [100, 200, 400]  # base * 2^(attempt-1)

    def test_jitter_is_seeded(self, setup):
        store, bulletin, service, clock = setup

        def delay_with(seed):
            st = MemoryLogStore()
            bb = BulletinBoard()
            svc = ProverService(st, bb)
            daemon = AggregationDaemon(
                svc, SimClock(),
                DaemonPolicy(max_lag_ms=0, retry_base_ms=1_000,
                             retry_jitter=0.5), seed=seed)
            injector = FaultInjector(FaultPlan.parse(
                "store.window_blobs:storage:count=1"))
            inject_faults(svc, injector)
            commit(st, bb, 0)
            daemon.step()
            return daemon._retry_at_ms[0]

        assert delay_with(1) == delay_with(1)
        assert delay_with(1) != delay_with(2)


class TestQuarantine:
    def test_permanent_fault_quarantined_after_max_attempts(self,
                                                            setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)  # max_attempts=3
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage"))  # permanent
        inject_faults(service, injector)
        commit(store, bulletin, 0)
        for _ in range(3):
            daemon.step()
            clock.advance_ms(2_000)
        assert daemon.quarantined.keys() == {0}
        assert "StorageError" in daemon.quarantined[0]
        assert daemon.pending_windows() == []
        assert daemon.step() is None  # nothing left to try

    def test_quarantine_isolates_not_stalls(self, setup):
        """A permanently failing window dead-letters while other
        windows keep aggregating — degrade, don't stall."""
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock, batch_limit=1)
        # Window 0 poisoned at the guest: its commitment does not
        # match the stored blobs.
        records = [make_record(sport=1)]
        store.append_records("r1", 0, records)
        bulletin.publish(Commitment(
            "r1", 0, window_digest([b"not the real bytes"]), 1, 0))
        commit(store, bulletin, 1)
        for _ in range(10):
            daemon.step()
            clock.advance_ms(2_000)
        assert 0 in daemon.quarantined
        assert "GuestAbort" in daemon.quarantined[0]
        assert 1 in service.aggregated_windows
        assert daemon.health()["state"] == "degraded"

    def test_requeue_gives_window_another_chance(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage:count=3"))
        inject_faults(service, injector)
        commit(store, bulletin, 0)
        for _ in range(3):
            daemon.step()
            clock.advance_ms(2_000)
        assert 0 in daemon.quarantined
        assert daemon.requeue(0) is True
        assert daemon.requeue(0) is False
        clock.advance_ms(2_000)
        assert daemon.step() is not None  # injector exhausted its 3

    def test_batch_failure_isolates_windows(self, setup):
        """A failing batched round falls back to per-window proving so
        the poisoned window is attributed, not the whole batch."""
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock, batch_limit=2,
                             max_attempts=2)
        records = [make_record(sport=1)]
        store.append_records("r1", 0, records)
        bulletin.publish(Commitment(
            "r1", 0, window_digest([b"tampered"]), 1, 0))
        commit(store, bulletin, 1)
        for _ in range(8):
            daemon.step()
            clock.advance_ms(2_000)
        assert 0 in daemon.quarantined
        assert 1 in service.aggregated_windows


class TestLateCommitments:
    def test_window_waits_for_late_router_before_deadline(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)
        # r1 stored data but has not committed yet.
        store.append_records("r1", 0, [make_record(sport=1)])
        # r2 committed its share.
        records = [make_record(router_id="r2", sport=2)]
        store.append_records("r2", 0, records)
        bulletin.publish(Commitment(
            "r2", 0, window_digest([r.to_bytes() for r in records]),
            1, 0))
        assert daemon.step() is None  # waiting, no attempt burned
        assert daemon.stats.faults == 0
        assert 0 not in daemon.quarantined

    def test_late_router_skipped_past_deadline(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock,
                             commitment_deadline_ms=5_000)
        store.append_records("r1", 0, [make_record(sport=1)])
        records = [make_record(router_id="r2", sport=2)]
        store.append_records("r2", 0, records)
        bulletin.publish(Commitment(
            "r2", 0, window_digest([r.to_bytes() for r in records]),
            1, 0))
        daemon.step()  # records first_seen
        clock.advance_ms(5_000)
        result = daemon.step()
        assert result is not None  # proved with r2 only
        routers = {w["r"] for w in result.journal_header["windows"]}
        assert routers == {"r2"}

    def test_window_with_no_commitments_eventually_quarantined(
            self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock,
                             commitment_deadline_ms=1_000,
                             max_attempts=2)
        store.append_records("r1", 0, [make_record(sport=1)])
        # Make the window *pending* via another window's commitment?
        # No — pending comes from the bulletin, so an entirely
        # uncommitted window never enters the queue at all.
        assert daemon.pending_windows() == []
        assert daemon.step() is None


class TestHealth:
    def test_healthy_initially_and_after_success(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)
        assert daemon.health()["state"] == "healthy"
        commit(store, bulletin, 0)
        daemon.step()
        health = daemon.health()
        assert health["state"] == "healthy"
        assert health["stats"]["rounds"] == 1

    def test_stalled_after_consecutive_failures(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock, stall_after=3,
                             max_attempts=100)
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage"))
        inject_faults(service, injector)
        commit(store, bulletin, 0)
        for _ in range(3):
            daemon.step()
            clock.advance_ms(2_000)
        assert daemon.health()["state"] == "stalled"

    def test_health_metrics_emitted(self, setup):
        from repro.obs import runtime as obs
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage:count=1"))
        inject_faults(service, injector)
        commit(store, bulletin, 0)
        with obs.capture() as cap:
            daemon.step()
            clock.advance_ms(2_000)
            daemon.step()
            faults_series = cap.registry.get(
                "repro_daemon_faults_total")
            assert faults_series.value(error="StorageError") == 1
            steps = cap.registry.get("repro_daemon_steps_total")
            assert steps.value(outcome="faulted") == 1
            assert steps.value(outcome="round") == 1
            assert cap.registry.get("repro_daemon_health").value() == 0


class TestStatusPendingWindows:
    """Regression: ``ProverService.status()`` must surface the backlog.

    Health tooling watches status() to tell a prover that is catching
    up from one that stalled; before ``pending_windows`` was added,
    committed-but-unproven windows were invisible there — both cases
    reported the same body.
    """

    def test_status_lists_committed_but_unproven_windows(self, setup):
        store, bulletin, service, clock = setup
        assert service.status()["pending_windows"] == []
        commit(store, bulletin, 0)
        commit(store, bulletin, 1)
        commit(store, bulletin, 2)
        assert service.status()["pending_windows"] == [0, 1, 2]
        service.aggregate_window(1)
        status = service.status()
        assert status["pending_windows"] == [0, 2]
        assert status["aggregated_windows"] == [1]
        service.aggregate_windows([0, 2])
        assert service.status()["pending_windows"] == []

    def test_stream_ingested_windows_stay_pending_until_close(self):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        commit(store, bulletin, 0)
        commit(store, bulletin, 1)
        service = ProverService(store, bulletin, stream=True)
        try:
            service.ingest_window(0)
            # Delta-proven but unclosed: no chained receipt covers the
            # window yet, so the backlog must still report it.
            status = service.status()
            assert status["pending_windows"] == [0, 1]
            assert status["stream"]["ingested_windows"] == [0]
            service.ingest_window(1)
            service.close_stream_round()
            status = service.status()
            assert status["pending_windows"] == []
            assert status["stream"]["open_round"] is None
        finally:
            service.close()


class TestBoundedStats:
    def test_results_keep_last_k(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock, batch_limit=1,
                             results_kept=2)
        for window in range(4):
            commit(store, bulletin, window)
        daemon.drain()
        assert daemon.stats.rounds == 4
        assert len(daemon.stats.results) == 2  # only the tail kept
        assert daemon.stats.results[-1].round == 3


class TestThreadSurvival:
    def test_thread_survives_handled_and_unhandled_faults(self, setup):
        store, bulletin, service, clock = setup
        daemon = make_daemon(service, clock)

        class Bomb:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def aggregate(self, state, inputs, prev_receipt):
                self.calls += 1
                if self.calls == 1:
                    raise StorageError("handled fault")
                if self.calls == 2:
                    raise RuntimeError("unhandled bug")
                return self.inner.aggregate(state, inputs,
                                            prev_receipt)

        bomb = Bomb(service._aggregator)
        service._aggregator = bomb
        commit(store, bulletin, 0)
        stop = threading.Event()
        thread = daemon.run_threaded(stop, poll_ms=10)
        try:
            import time
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if daemon.stats.rounds:
                    break
                assert thread.is_alive()
                time.sleep(0.01)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert daemon.stats.rounds == 1
        assert daemon.stats.crashes == 1   # the RuntimeError, survived
        assert daemon.stats.faults >= 1    # the StorageError, handled
        assert 0 in service.aggregated_windows
