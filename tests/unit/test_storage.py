"""Unit tests for both log-store backends (parametrized)."""

import pytest

from repro.errors import StorageError
from repro.storage import MemoryLogStore, SqliteLogStore

from ..conftest import make_record


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    backend = MemoryLogStore() if request.param == "memory" \
        else SqliteLogStore()
    yield backend
    backend.close()


def records(n, router="r1"):
    return [make_record(router_id=router, sport=1000 + i)
            for i in range(n)]


class TestAppendRead:
    def test_append_and_read_back(self, store):
        original = records(5)
        store.append_records("r1", 0, original)
        assert store.window_records("r1", 0) == original
        assert store.window_blobs("r1", 0) == \
            [r.to_bytes() for r in original]

    def test_append_preserves_order_across_calls(self, store):
        first, second = records(3), records(2)
        store.append_records("r1", 0, first)
        store.append_records("r1", 0, second)
        assert store.window_records("r1", 0) == first + second

    def test_windows_isolated(self, store):
        store.append_records("r1", 0, records(2))
        store.append_records("r1", 5, records(3))
        assert store.window_count("r1", 0) == 2
        assert store.window_count("r1", 5) == 3
        assert store.window_indices("r1") == [0, 5]

    def test_routers_isolated(self, store):
        store.append_records("r1", 0, records(2))
        store.append_records("r2", 0, records(1, router="r2"))
        assert store.router_ids() == ["r1", "r2"]
        assert store.window_count("r2", 0) == 1

    def test_missing_window_is_empty(self, store):
        assert store.window_blobs("ghost", 9) == []
        assert store.window_indices("ghost") == []

    def test_all_blobs_for_window(self, store):
        store.append_records("r1", 0, records(2))
        store.append_records("r2", 0, records(1, router="r2"))
        store.append_records("r1", 1, records(1))
        per_router = store.all_blobs_for_window(0)
        assert set(per_router) == {"r1", "r2"}
        assert len(per_router["r1"]) == 2


class TestMutation:
    def test_overwrite_raw(self, store):
        store.append_records("r1", 0, records(3))
        store.overwrite_raw("r1", 0, 1, b"tampered")
        assert store.window_blobs("r1", 0)[1] == b"tampered"

    def test_overwrite_missing_row(self, store):
        store.append_records("r1", 0, records(1))
        with pytest.raises(StorageError):
            store.overwrite_raw("r1", 0, 5, b"x")
        with pytest.raises(StorageError):
            store.overwrite_raw("ghost", 0, 0, b"x")

    def test_replace_window(self, store):
        store.append_records("r1", 0, records(3))
        store.replace_window("r1", 0, [b"a", b"b"])
        assert store.window_blobs("r1", 0) == [b"a", b"b"]

    def test_replace_with_empty(self, store):
        store.append_records("r1", 0, records(2))
        store.replace_window("r1", 0, [])
        assert store.window_blobs("r1", 0) == []

    def test_purge_window(self, store):
        store.append_records("r1", 0, records(4))
        assert store.purge_window("r1", 0) == 4
        assert store.window_blobs("r1", 0) == []
        assert store.purge_window("r1", 0) == 0


class TestLifecycle:
    def test_closed_store_rejects_operations(self, store):
        store.append_records("r1", 0, records(1))
        store.close()
        with pytest.raises(StorageError):
            store.window_blobs("r1", 0)

    def test_context_manager(self):
        with MemoryLogStore() as store:
            store.append_records("r1", 0, records(1))
        with pytest.raises(StorageError):
            store.router_ids()


class TestSqliteSpecific:
    def test_persistence_to_file(self, tmp_path):
        path = str(tmp_path / "logs.db")
        first = SqliteLogStore(path)
        first.append_records("r1", 0, records(3))
        first.close()
        second = SqliteLogStore(path)
        assert second.window_count("r1", 0) == 3
        second.close()

    def test_concurrent_writers(self):
        import threading
        store = SqliteLogStore()

        def writer(router_id):
            for window in range(5):
                store.append_records(router_id, window,
                                     records(3, router=router_id))

        threads = [threading.Thread(target=writer, args=(f"r{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store.router_ids()) == 4
        for router_id in store.router_ids():
            assert store.window_indices(router_id) == list(range(5))
        store.close()

    def test_bad_path_raises(self):
        with pytest.raises(StorageError):
            SqliteLogStore("/nonexistent-dir/sub/logs.db")
