"""Unit tests for the exception hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        leaves = [
            errors.ConfigurationError,
            errors.SerializationError,
            errors.CommitmentMismatch,
            errors.MerkleInclusionError,
            errors.MissingCommitment,
            errors.GuestAbort,
            errors.VerificationError,
            errors.ImageIdMismatch,
            errors.JournalMismatch,
            errors.SealError,
            errors.ChainError,
            errors.QuerySyntaxError,
            errors.StorageError,
            errors.SimulationError,
        ]
        for cls in leaves:
            assert issubclass(cls, errors.ReproError)

    def test_integrity_family(self):
        for cls in (errors.CommitmentMismatch, errors.MerkleError,
                    errors.MerkleInclusionError,
                    errors.MissingCommitment):
            assert issubclass(cls, errors.IntegrityError)

    def test_proof_family(self):
        for cls in (errors.GuestAbort, errors.VerificationError,
                    errors.ImageIdMismatch, errors.JournalMismatch,
                    errors.SealError, errors.ChainError):
            assert issubclass(cls, errors.ProofError)

    def test_verification_family(self):
        for cls in (errors.ImageIdMismatch, errors.JournalMismatch,
                    errors.SealError):
            assert issubclass(cls, errors.VerificationError)


class TestMessages:
    def test_commitment_mismatch_carries_context(self):
        exc = errors.CommitmentMismatch("r1", 3, "aa" * 32, "bb" * 32)
        assert exc.router_id == "r1"
        assert exc.window_index == 3
        assert "r1" in str(exc)
        assert "window 3" in str(exc)

    def test_guest_abort_reason(self):
        exc = errors.GuestAbort("hash mismatch")
        assert exc.reason == "hash mismatch"
        assert "hash mismatch" in str(exc)

    def test_query_syntax_position(self):
        exc = errors.QuerySyntaxError("bad token", position=17)
        assert exc.position == 17
        assert "offset 17" in str(exc)
        bare = errors.QuerySyntaxError("bad token")
        assert bare.position is None

    def test_catching_the_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.SealError("nope")
