"""Unit tests for crash-safe checkpoint/restore on the prover."""

import pytest

from repro.core.prover_service import ProverService
from repro.errors import CheckpointError, StorageError
from repro.storage import MemoryLogStore, SqliteLogStore

from ..conftest import make_committed_records


@pytest.fixture
def proven():
    """A service with two proven rounds over 20 committed records."""
    store, bulletin, _ = make_committed_records(20)
    extra_store, _, _ = make_committed_records(10, seed=9,
                                               window_index=1)
    for router_id in extra_store.router_ids():
        blobs = extra_store.window_blobs(router_id, 1)
        store.replace_window(router_id, 1, blobs)
    from repro.commitments import Commitment, window_digest
    for router_id in extra_store.router_ids():
        blobs = store.window_blobs(router_id, 1)
        bulletin.publish(Commitment(router_id, 1,
                                    window_digest(blobs),
                                    len(blobs), 5_000))
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    service.aggregate_window(1)
    return store, bulletin, service


class TestRoundTrip:
    def test_memory_roundtrip_bit_identical(self, proven):
        store, bulletin, service = proven
        root = service.checkpoint()
        assert root == service.state.root
        restored = ProverService(store, bulletin)
        assert restored.restore() is True
        assert restored.state.root == service.state.root
        assert restored.chain.latest.new_root == \
            service.chain.latest.new_root
        assert len(restored.chain) == len(service.chain)
        assert restored.aggregated_windows == \
            service.aggregated_windows
        before = service.answer_query("SELECT COUNT(*) FROM clogs")
        after = restored.answer_query("SELECT COUNT(*) FROM clogs")
        assert before.receipt.to_bytes() == after.receipt.to_bytes()

    def test_sqlite_roundtrip_across_connections(self, tmp_path):
        db = tmp_path / "prover.db"
        mem_store, bulletin, _ = make_committed_records(15)
        store = SqliteLogStore(str(db))
        for router_id in mem_store.router_ids():
            store.replace_window(router_id, 0,
                                 mem_store.window_blobs(router_id, 0))
        service = ProverService(store, bulletin)
        service.aggregate_window(0)
        service.checkpoint()
        store.close()  # simulated process exit
        reopened = SqliteLogStore(str(db))
        restored = ProverService(reopened, bulletin)
        assert restored.restore() is True
        assert restored.state.root == service.state.root
        reopened.close()

    def test_empty_service_checkpoints_and_restores(self):
        store, bulletin, _ = make_committed_records(5)
        service = ProverService(store, bulletin)
        service.checkpoint()
        restored = ProverService(store, bulletin)
        assert restored.restore() is True
        assert len(restored.chain) == 0
        assert len(restored.state) == 0

    def test_restore_without_checkpoint_is_cold_start(self):
        store, bulletin, _ = make_committed_records(5)
        service = ProverService(store, bulletin)
        assert service.restore() is False

    def test_named_checkpoints_are_independent(self, proven):
        store, bulletin, service = proven
        service.checkpoint("a")
        assert store.get_checkpoint("a") is not None
        assert store.get_checkpoint("prover-latest") is None
        assert store.checkpoint_names() == ["a"]
        assert store.delete_checkpoint("a") is True
        assert store.delete_checkpoint("a") is False


class TestAutoCheckpoint:
    def test_round_writes_checkpoint_automatically(self):
        store, bulletin, _ = make_committed_records(10)
        service = ProverService(store, bulletin, auto_checkpoint=True)
        service.aggregate_window(0)
        restored = ProverService(store, bulletin)
        assert restored.restore() is True
        assert restored.state.root == service.state.root

    def test_off_by_default(self):
        store, bulletin, _ = make_committed_records(10)
        service = ProverService(store, bulletin)
        service.aggregate_window(0)
        assert store.get_checkpoint("prover-latest") is None


class TestIntegrityOnRestore:
    def test_corrupt_blob_rejected(self, proven):
        store, bulletin, service = proven
        service.checkpoint()
        store.put_checkpoint("prover-latest", b"garbage")
        fresh = ProverService(store, bulletin)
        with pytest.raises(CheckpointError):
            fresh.restore()
        # The refused restore left the service untouched and usable.
        assert len(fresh.chain) == 0

    def test_tampered_entries_fail_root_check(self, proven):
        from repro.serialization import decode, encode
        store, bulletin, service = proven
        service.checkpoint()
        payload = decode(store.get_checkpoint("prover-latest"))
        entry = dict(payload["entries"][0])
        entry["octets"] += 1  # bump one counter post-proof
        payload["entries"][0] = entry
        store.put_checkpoint("prover-latest", encode(payload))
        with pytest.raises(CheckpointError, match="root"):
            ProverService(store, bulletin).restore()

    def test_truncated_chain_keeps_linkage_but_fails_root(self, proven):
        from repro.serialization import decode, encode
        store, bulletin, service = proven
        service.checkpoint()
        payload = decode(store.get_checkpoint("prover-latest"))
        payload["chain"] = payload["chain"][:1]  # drop round 1
        store.put_checkpoint("prover-latest", encode(payload))
        with pytest.raises(CheckpointError):
            ProverService(store, bulletin).restore()

    def test_spliced_chain_rejected(self, proven):
        from repro.serialization import decode, encode
        store, bulletin, service = proven
        service.checkpoint()
        payload = decode(store.get_checkpoint("prover-latest"))
        payload["chain"] = [payload["chain"][1], payload["chain"][0]]
        store.put_checkpoint("prover-latest", encode(payload))
        with pytest.raises(CheckpointError):
            ProverService(store, bulletin).restore()

    def test_unproven_entries_rejected(self, proven):
        from repro.serialization import decode, encode
        store, bulletin, service = proven
        service.checkpoint()
        payload = decode(store.get_checkpoint("prover-latest"))
        payload["chain"] = []
        store.put_checkpoint("prover-latest", encode(payload))
        with pytest.raises(CheckpointError, match="no proven round"):
            ProverService(store, bulletin).restore()

    def test_wrong_version_rejected(self, proven):
        from repro.serialization import decode, encode
        store, bulletin, service = proven
        service.checkpoint()
        payload = decode(store.get_checkpoint("prover-latest"))
        payload["version"] = 99
        store.put_checkpoint("prover-latest", encode(payload))
        with pytest.raises(CheckpointError, match="version"):
            ProverService(store, bulletin).restore()

    def test_restore_refused_on_non_fresh_service(self, proven):
        store, bulletin, service = proven
        service.checkpoint()
        with pytest.raises(CheckpointError, match="fresh"):
            service.restore()


class TestBackendSupport:
    def test_base_class_refuses_checkpoints(self):
        from repro.storage.backend import LogStore

        class Minimal(LogStore):
            def append_records(self, *a): ...
            def overwrite_raw(self, *a): ...
            def replace_window(self, *a): ...
            def purge_window(self, *a): return 0
            def window_blobs(self, *a): return []
            def window_indices(self, *a): return []
            def router_ids(self): return []
            def close(self): ...

        with pytest.raises(StorageError, match="checkpoint"):
            Minimal().put_checkpoint("x", b"")

    def test_memory_backend_kv_semantics(self):
        store = MemoryLogStore()
        assert store.get_checkpoint("x") is None
        store.put_checkpoint("x", b"1")
        store.put_checkpoint("x", b"2")  # overwrite
        assert store.get_checkpoint("x") == b"2"
        assert store.checkpoint_names() == ["x"]
