"""Unit tests for tamper injection primitives."""

import pytest

from repro.core.tamper import (
    TamperKind,
    TamperOutcome,
    corrupt_record_bytes,
    inject_record,
    modify_record_field,
    reorder_window,
    run_tamper_experiment,
    truncate_window,
)
from repro.errors import GuestAbort, StorageError
from repro.storage import MemoryLogStore

from ..conftest import make_record


@pytest.fixture
def store():
    backend = MemoryLogStore()
    backend.append_records("r1", 0, [make_record(sport=1000 + i)
                                     for i in range(4)])
    return backend


class TestPrimitives:
    def test_modify_field_produces_valid_record(self, store):
        tampered = modify_record_field(store, "r1", 0, 1,
                                       lost_packets=0)
        assert tampered.lost_packets == 0
        stored = store.window_records("r1", 0)[1]
        assert stored == tampered

    def test_modify_missing_row(self, store):
        with pytest.raises(StorageError):
            modify_record_field(store, "r1", 0, 99, packets=1)

    def test_corrupt_bytes_flips_one_bit(self, store):
        before = store.window_blobs("r1", 0)[2]
        corrupt_record_bytes(store, "r1", 0, 2, byte_index=10)
        after = store.window_blobs("r1", 0)[2]
        assert before != after
        assert sum(a != b for a, b in zip(before, after)) == 1

    def test_truncate(self, store):
        truncate_window(store, "r1", 0, keep=2)
        assert store.window_count("r1", 0) == 2

    def test_reorder(self, store):
        before = store.window_blobs("r1", 0)
        reorder_window(store, "r1", 0)
        after = store.window_blobs("r1", 0)
        assert after[0] == before[-1]
        assert after[-1] == before[0]
        assert sorted(after) == sorted(before)

    def test_reorder_needs_two(self):
        store = MemoryLogStore()
        store.append_records("r1", 0, [make_record()])
        with pytest.raises(StorageError):
            reorder_window(store, "r1", 0)

    def test_inject(self, store):
        inject_record(store, "r1", 0, make_record(sport=9999))
        assert store.window_count("r1", 0) == 5


class TestHarness:
    def test_detected_on_guest_abort(self):
        def prove():
            raise GuestAbort("hash mismatch")

        outcome = run_tamper_experiment(TamperKind.MODIFY_FIELD,
                                        lambda: None, prove)
        assert outcome.detected
        assert outcome.error_type == "GuestAbort"
        assert "DETECTED" in str(outcome)

    def test_detected_on_repro_error(self):
        from repro.errors import SerializationError

        def prove():
            raise SerializationError("cannot decode")

        outcome = run_tamper_experiment(TamperKind.CORRUPT_BYTES,
                                        lambda: None, prove)
        assert outcome.detected

    def test_undetected_when_prove_succeeds(self):
        outcome = run_tamper_experiment(TamperKind.TRUNCATE,
                                        lambda: None, lambda: "receipt")
        assert not outcome.detected
        assert "UNDETECTED" in str(outcome)

    def test_outcome_is_dataclass(self):
        outcome = TamperOutcome(kind=TamperKind.INJECT, detected=True,
                                error_type="GuestAbort", detail="x")
        assert outcome.kind is TamperKind.INJECT
