"""Unit tests for partitioned query proving.

Covers the new guest pair (partition + merge), the aligned-chunk
layout, the host-side :meth:`QueryProver.prove_query_partitioned`
pipeline through the engine, and the soundness boundaries: a partial
result only counts when it binds the committed aggregation root
through its subtree path, and the merge only counts when it folds
every partition exactly once from the trusted partition image.
"""

import pytest

from repro.core.aggregation import make_receipt_binding
from repro.core.guest_programs import (
    query_guest,
    query_merge_guest,
    query_partition_guest,
)
from repro.core.planner import partition_layout
from repro.core.prover_service import ProverService
from repro.core.query_proof import (
    QueryProver,
    QueryResponse,
    env_query_partitions,
)
from repro.core.verifier_client import VerifierClient
from repro.engine import ProvingEngine
from repro.errors import (
    ConfigurationError,
    GuestAbort,
    ProofError,
    VerificationError,
)
from repro.zkvm import ExecutorEnvBuilder, Prover, ProverOpts

from ..conftest import make_committed_records


@pytest.fixture(scope="module")
def proven():
    """One aggregated round over 60 records, plus a thread engine."""
    store, bulletin, _ = make_committed_records(60, seed=13)
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    engine = ProvingEngine(prover_opts=ProverOpts.groth16(),
                           backend="thread", max_workers=2)
    yield service, bulletin, engine
    engine.close()


class TestPartitionLayout:
    def test_exact_power_of_two(self):
        assert partition_layout(64, 4) == (4, 4)

    def test_ragged_last_chunk(self):
        chunk_po2, count = partition_layout(60, 4)
        assert (chunk_po2, count) == (4, 4)
        # Partitions tile [0, 60): three full chunks + one of 12.
        assert 60 - (3 << chunk_po2) == 12

    def test_more_partitions_than_entries(self):
        assert partition_layout(3, 8) == (0, 3)

    def test_single_partition_covers_everything(self):
        chunk_po2, count = partition_layout(60, 1)
        assert count == 1
        assert (1 << chunk_po2) >= 60

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            partition_layout(0, 4)
        with pytest.raises(ConfigurationError):
            partition_layout(10, 0)


class TestEnvKnob:
    def test_unset_and_blank(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERY_PARTITIONS", raising=False)
        assert env_query_partitions() is None
        monkeypatch.setenv("REPRO_QUERY_PARTITIONS", "  ")
        assert env_query_partitions() is None

    def test_parses_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_PARTITIONS", "4")
        assert env_query_partitions() == 4
        monkeypatch.setenv("REPRO_QUERY_PARTITIONS", "0")
        assert env_query_partitions() is None

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_PARTITIONS", "many")
        with pytest.raises(ConfigurationError, match="integer"):
            env_query_partitions()

    def test_env_ignored_without_engine(self, monkeypatch):
        """The env var tunes an engine-backed service; it must never
        conjure an engine for a default one."""
        monkeypatch.setenv("REPRO_QUERY_PARTITIONS", "4")
        store, bulletin, _ = make_committed_records(12, seed=3)
        service = ProverService(store, bulletin)
        assert service.engine is None
        assert service.query_partitions is None

    def test_env_tunes_engine_backed_service(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_PARTITIONS", "3")
        store, bulletin, _ = make_committed_records(12, seed=3)
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        try:
            assert service.query_partitions == 3
            assert service.status()["query_partitions"] == 3
        finally:
            service.close()


class TestQueryProverConfig:
    def test_num_partitions_validated(self):
        with pytest.raises(ConfigurationError):
            QueryProver(num_partitions=0)

    def test_partitioned_requires_engine(self, proven):
        service, _, _ = proven
        prover = QueryProver(num_partitions=4)
        with pytest.raises(ConfigurationError, match="ProvingEngine"):
            prover.prove_query_partitioned(
                "SELECT COUNT(*) FROM clogs", service.state,
                service.chain.latest.receipt)

    def test_service_validates_query_partitions(self):
        store, bulletin, _ = make_committed_records(8, seed=3)
        with pytest.raises(ConfigurationError):
            ProverService(store, bulletin, query_partitions=0)


class TestPartitionedProving:
    @pytest.mark.parametrize("partitions", [1, 2, 4, 7])
    def test_byte_identical_to_serial(self, proven, partitions):
        service, _, engine = proven
        sql = ("SELECT COUNT(*), AVG(rtt_avg_us), SUM(octets) "
               "FROM clogs WHERE hop_count >= 1")
        serial, _ = QueryProver().prove_query(
            sql, service.state, service.chain.latest.receipt)
        prover = QueryProver(engine=engine)
        response, info = prover.prove_query_partitioned(
            sql, service.state, service.chain.latest.receipt,
            num_partitions=partitions)
        assert response.receipt.journal.data == \
            serial.receipt.journal.data
        assert response.values == serial.values
        assert info.num_partitions == \
            partition_layout(len(service.state), partitions)[1]
        assert not response.receipt.claim.assumptions

    def test_verifier_accepts_merged_receipt(self, proven):
        """The unchanged client API verifies both strategies."""
        service, bulletin, engine = proven
        sql = "SELECT SUM(packets) FROM clogs GROUP BY src_net16"
        prover = QueryProver(engine=engine)
        response, _ = prover.prove_query_partitioned(
            sql, service.state, service.chain.latest.receipt, 4)
        client = VerifierClient(bulletin)
        chain = client.verify_chain(service.chain.receipts())
        verified = client.verify_query(response, chain[-1])
        assert verified.root == service.state.root
        assert response.receipt.claim.image_id == \
            query_merge_guest.image_id

    def test_verifier_rejects_untrusted_image(self, proven):
        """A bare partition receipt is NOT a query answer: its journal
        covers one slot range, so the client must refuse it outright."""
        service, bulletin, engine = proven
        sql = "SELECT COUNT(*) FROM clogs"
        prover = QueryProver(engine=engine)
        response, info = prover.prove_query_partitioned(
            sql, service.state, service.chain.latest.receipt, 4)
        partial = info.partition_infos[0].receipt
        forged = QueryResponse(
            sql=sql, labels=response.labels, values=response.values,
            matched=response.matched, scanned=response.scanned,
            round=response.round, root=response.root, receipt=partial)
        client = VerifierClient(bulletin)
        chain = client.verify_chain(service.chain.receipts())
        with pytest.raises(VerificationError,
                           match="not a trusted query program"):
            client.verify_query(forged, chain[-1])

    def test_empty_state_rejected(self, proven):
        from repro.core.clog import CLogState
        _, _, engine = proven
        service, _, _ = proven
        prover = QueryProver(engine=engine)
        with pytest.raises(ProofError, match="empty"):
            prover.prove_query_partitioned(
                "SELECT COUNT(*) FROM clogs", CLogState(),
                service.chain.latest.receipt, 2)

    def test_prove_query_dispatches_by_plan(self, proven):
        """Tiny states fall back to the full scan even when
        partitioning is configured (per-proof overhead dominates)."""
        service, _, engine = proven
        prover = QueryProver(engine=engine, num_partitions=4)
        response, info = prover.prove_query(
            "SELECT COUNT(*) FROM clogs", service.state,
            service.chain.latest.receipt)
        # 60 entries sit below the modeled crossover.
        assert response.receipt.claim.image_id == query_guest.image_id


class TestPartitionGuestAborts:
    def _partition_env(self, service, sql, index, partitions,
                       siblings=None, start=None):
        size = len(service.state)
        chunk_po2, count = partition_layout(size, partitions)
        chunk = 1 << chunk_po2
        lo = index << chunk_po2
        hi = min(size, lo + chunk)
        entries = service.state.entries_in_slot_order()[lo:hi]
        tree = service.state.merkle_map.tree
        if siblings is None:
            siblings = list(
                tree.prove_subtree(chunk_po2, index).siblings)
        builder = ExecutorEnvBuilder()
        builder.write({
            "query": sql,
            "partition": index,
            "num_partitions": count,
            "chunk_po2": chunk_po2,
            "start": lo if start is None else start,
            "count": len(entries),
            "siblings": siblings,
        })
        builder.write(make_receipt_binding(service.chain.latest.receipt))
        for entry in entries:
            builder.write({"key": entry.key.pack(),
                           "payload": entry.to_payload()})
        return builder.build()

    def test_partition_journal_binds_geometry(self, proven):
        service, _, _ = proven
        sql = "SELECT COUNT(*) FROM clogs"
        info = Prover().prove(query_partition_guest, self._partition_env(
            service, sql, 1, 4))
        journal = info.receipt.journal.decode_one()
        assert journal["root"] == service.state.root
        assert journal["partition"] == 1
        assert journal["num_partitions"] == 4
        chunk_po2, _ = partition_layout(len(service.state), 4)
        assert journal["scanned"] == min(
            len(service.state) - (1 << chunk_po2), 1 << chunk_po2)
        assert len(journal["states"]) == 1

    def test_tampered_sibling_path_aborts(self, proven):
        service, _, _ = proven
        tree = service.state.merkle_map.tree
        chunk_po2, _ = partition_layout(len(service.state), 4)
        siblings = list(tree.prove_subtree(chunk_po2, 0).siblings)
        siblings[0] = siblings[-1]
        with pytest.raises(GuestAbort, match="committed root"):
            Prover().prove(query_partition_guest, self._partition_env(
                service, "SELECT COUNT(*) FROM clogs", 0, 4,
                siblings=siblings))

    def test_misaligned_start_aborts(self, proven):
        service, _, _ = proven
        with pytest.raises(GuestAbort, match="slot alignment"):
            Prover().prove(query_partition_guest, self._partition_env(
                service, "SELECT COUNT(*) FROM clogs", 1, 4, start=3))


class TestMergeGuestAborts:
    def _partial(self, service, engine, sql, partitions=2):
        prover = QueryProver(engine=engine)
        _, info = prover.prove_query_partitioned(
            sql, service.state, service.chain.latest.receipt,
            partitions)
        from repro.zkvm.recursion import resolve
        return [resolve(p.receipt, service.chain.latest.receipt)
                for p in info.partition_infos]

    def _merge_env(self, sql, receipts, count=None):
        builder = ExecutorEnvBuilder()
        builder.write({"query": sql,
                       "num_partitions": count or len(receipts)})
        for receipt in receipts:
            builder.write(make_receipt_binding(receipt))
        return builder.build()

    def test_duplicate_partition_aborts(self, proven):
        service, _, engine = proven
        sql = "SELECT COUNT(*) FROM clogs"
        partials = self._partial(service, engine, sql)
        with pytest.raises(GuestAbort, match="appears twice"):
            Prover().prove(query_merge_guest, self._merge_env(
                sql, [partials[0], partials[0]]))

    def test_missing_partition_aborts(self, proven):
        """Dropping a slot range must not yield a 'complete' answer —
        completeness is the property the merge enforces."""
        service, _, engine = proven
        sql = "SELECT COUNT(*) FROM clogs"
        partials = self._partial(service, engine, sql)
        with pytest.raises(GuestAbort, match="partition count"):
            Prover().prove(query_merge_guest, self._merge_env(
                sql, [partials[0]]))

    def test_query_text_mismatch_aborts(self, proven):
        service, _, engine = proven
        partials = self._partial(service, engine,
                                 "SELECT COUNT(*) FROM clogs")
        with pytest.raises(GuestAbort, match="different query"):
            Prover().prove(query_merge_guest, self._merge_env(
                "SELECT SUM(octets) FROM clogs", partials))

    def test_foreign_image_aborts(self, proven):
        """A receipt from any guest other than the partition guest —
        even a trusted one — must not enter the fold."""
        service, _, engine = proven
        sql = "SELECT COUNT(*) FROM clogs"
        agg_receipt = service.chain.latest.receipt
        with pytest.raises(GuestAbort,
                           match="not.*produced by the query partition"):
            Prover().prove(query_merge_guest, self._merge_env(
                sql, [agg_receipt], count=1))
