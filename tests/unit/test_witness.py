"""Unit tests for aggregation witness construction."""

from repro.core.clog import CLogEntry, CLogState
from repro.core.policy import DEFAULT_POLICY
from repro.core.witness import OP_GROW, OP_INSERT, OP_UPDATE, build_witness
from repro.merkle.tree import EMPTY_ROOTS

from ..conftest import make_record


def fresh_records(n):
    return [make_record(sport=1000 + i) for i in range(n)]


class TestFreshInserts:
    def test_all_inserts_for_new_flows(self):
        witness = build_witness(CLogState(), fresh_records(3),
                                DEFAULT_POLICY)
        kinds = [op["op"] for op in witness.ops]
        assert kinds.count(OP_INSERT) == 3
        assert witness.prev_root == EMPTY_ROOTS[0]
        assert witness.prev_size == 0
        assert len(witness.new_state) == 3

    def test_grow_ops_at_capacity_boundaries(self):
        witness = build_witness(CLogState(), fresh_records(5),
                                DEFAULT_POLICY)
        kinds = [op["op"] for op in witness.ops]
        # Capacity grows at sizes 1, 2, 4 -> three grow ops for 5 inserts.
        assert kinds.count(OP_GROW) == 3
        # A grow is always immediately followed by an insert.
        for i, kind in enumerate(kinds):
            if kind == OP_GROW:
                assert kinds[i + 1] == OP_INSERT

    def test_new_root_matches_direct_construction(self):
        records = fresh_records(7)
        witness = build_witness(CLogState(), records, DEFAULT_POLICY)
        direct = CLogState()
        for record in records:
            direct.set_entry(CLogEntry.fresh(record))
        assert witness.new_root == direct.root

    def test_insert_slots_sequential(self):
        witness = build_witness(CLogState(), fresh_records(4),
                                DEFAULT_POLICY)
        slots = [op["slot"] for op in witness.ops
                 if op["op"] == OP_INSERT]
        assert slots == [0, 1, 2, 3]


class TestUpdates:
    def test_repeat_flow_becomes_update(self):
        records = [make_record(router_id="r1"),
                   make_record(router_id="r2")]
        witness = build_witness(CLogState(), records, DEFAULT_POLICY)
        kinds = [op["op"] for op in witness.ops]
        assert kinds == [OP_INSERT, OP_UPDATE]
        update = witness.ops[1]
        assert update["slot"] == 0
        # The old payload is the freshly inserted entry.
        assert CLogEntry.from_payload(update["old_payload"]) == \
            CLogEntry.fresh(records[0])

    def test_existing_state_updates_in_place(self):
        state = CLogState()
        base = make_record()
        state.set_entry(CLogEntry.fresh(base))
        prev_root = state.root
        witness = build_witness(
            state, [make_record(router_id="r2")], DEFAULT_POLICY)
        assert witness.prev_root == prev_root
        assert witness.prev_size == 1
        assert [op["op"] for op in witness.ops] == [OP_UPDATE]
        assert len(witness.new_state) == 1

    def test_witness_does_not_mutate_input_state(self):
        state = CLogState()
        state.set_entry(CLogEntry.fresh(make_record()))
        root_before = state.root
        build_witness(state, [make_record(router_id="r2")],
                      DEFAULT_POLICY)
        assert state.root == root_before

    def test_round_advances(self):
        state = CLogState()
        state.round = 3
        witness = build_witness(state, fresh_records(1), DEFAULT_POLICY)
        assert witness.new_state.round == 4


class TestMixedRound:
    def test_interleaved_inserts_and_updates(self):
        state = CLogState()
        state.set_entry(CLogEntry.fresh(make_record(sport=1000)))
        records = [
            make_record(sport=1000, router_id="r2"),  # update
            make_record(sport=2000),                   # insert (+grow)
            make_record(sport=2000, router_id="r3"),   # update
            make_record(sport=3000),                   # insert (+grow)
        ]
        witness = build_witness(state, records, DEFAULT_POLICY)
        direct = state.clone()
        for record in records:
            existing = direct.get(record.key)
            direct.set_entry(
                existing.merge(record, DEFAULT_POLICY) if existing
                else CLogEntry.fresh(record))
        assert witness.new_root == direct.root
        assert len(witness.new_state) == 3

    def test_empty_round(self):
        state = CLogState()
        state.set_entry(CLogEntry.fresh(make_record()))
        witness = build_witness(state, [], DEFAULT_POLICY)
        assert witness.ops == ()
        assert witness.new_root == state.root
