"""Unit tests for query evaluation."""

import pytest

from repro.errors import QueryError
from repro.query import evaluate, parse_query


def entries():
    return [
        {"src_ip": "10.1.0.5", "dst_ip": "172.16.0.1", "packets": 100,
         "octets": 1000, "hop_count": 3, "rtt_avg_us": 5000.0,
         "lost_packets": 2, "src_port": 443},
        {"src_ip": "10.1.0.9", "dst_ip": "172.16.0.2", "packets": 50,
         "octets": 600, "hop_count": 2, "rtt_avg_us": 9000.0,
         "lost_packets": 0, "src_port": 443},
        {"src_ip": "10.2.0.1", "dst_ip": "172.16.0.3", "packets": 10,
         "octets": 90, "hop_count": 1, "rtt_avg_us": 1000.0,
         "lost_packets": 5, "src_port": 80},
    ]


def run(sql, data=None):
    return evaluate(parse_query(sql), data if data is not None
                    else entries())


class TestAggregates:
    def test_sum(self):
        assert run("SELECT SUM(packets) FROM clogs").value() == 160

    def test_count_star(self):
        assert run("SELECT COUNT(*) FROM clogs").value() == 3

    def test_count_column(self):
        assert run("SELECT COUNT(packets) FROM clogs").value() == 3

    def test_avg(self):
        assert run("SELECT AVG(hop_count) FROM clogs").value() == \
            pytest.approx(2.0)

    def test_min_max(self):
        result = run("SELECT MIN(octets), MAX(octets) FROM clogs")
        assert result.as_dict() == {"MIN(octets)": 90,
                                    "MAX(octets)": 1000}

    def test_empty_match_gives_none_except_count(self):
        result = run("SELECT COUNT(*), SUM(packets), AVG(packets), "
                     "MIN(packets), MAX(packets) FROM clogs "
                     "WHERE packets > 99999")
        assert result.values == (0, None, None, None, None)
        assert result.matched == 0
        assert result.scanned == 3

    def test_aggregating_string_column_rejected(self):
        with pytest.raises(QueryError, match="non-numeric"):
            run("SELECT SUM(src_ip) FROM clogs")


class TestFiltering:
    def test_equality(self):
        assert run('SELECT COUNT(*) FROM clogs '
                   'WHERE src_ip = "10.1.0.5"').value() == 1

    def test_numeric_comparisons(self):
        assert run("SELECT COUNT(*) FROM clogs "
                   "WHERE packets >= 50").value() == 2
        assert run("SELECT COUNT(*) FROM clogs "
                   "WHERE rtt_avg_us < 5000").value() == 1

    def test_prefix_membership(self):
        assert run('SELECT COUNT(*) FROM clogs '
                   'WHERE src_ip IN "10.1.0.0/16"').value() == 2
        assert run('SELECT COUNT(*) FROM clogs '
                   'WHERE src_ip NOT IN "10.1.0.0/16"').value() == 1

    def test_and_or_not(self):
        assert run("SELECT COUNT(*) FROM clogs "
                   "WHERE packets > 20 AND lost_packets = 0").value() == 1
        assert run("SELECT COUNT(*) FROM clogs "
                   "WHERE packets = 10 OR packets = 50").value() == 2
        assert run("SELECT COUNT(*) FROM clogs "
                   "WHERE NOT src_port = 443").value() == 1

    def test_matched_vs_scanned(self):
        result = run("SELECT COUNT(*) FROM clogs WHERE packets > 20")
        assert result.matched == 2
        assert result.scanned == 3

    def test_missing_column_in_entry(self):
        with pytest.raises(QueryError, match="missing column"):
            run("SELECT COUNT(*) FROM clogs WHERE packets = 1",
                data=[{"octets": 5}])

    def test_type_confusion_raises(self):
        with pytest.raises(QueryError, match="cannot compare"):
            run('SELECT COUNT(*) FROM clogs WHERE packets < "abc"')


class TestCostHook:
    def test_hook_total_matches_scanned_entries(self):
        # The vectorized fast path may batch invocations; the metered
        # total (what the guest charges) must equal per-entry charging.
        calls = []
        query = parse_query("SELECT COUNT(*) FROM clogs "
                            "WHERE packets > 20")
        evaluate(query, entries(), cost_hook=calls.append)
        assert sum(calls) == 3 * query.node_count

    def test_hook_called_per_entry_on_reference_path(self):
        from repro import hotpath

        calls = []
        query = parse_query("SELECT COUNT(*) FROM clogs "
                            "WHERE packets > 20")
        with hotpath.disabled():
            evaluate(query, entries(), cost_hook=calls.append)
        assert len(calls) == 3
        assert all(c == query.node_count for c in calls)


class TestResultAccess:
    def test_value_by_label(self):
        result = run("SELECT SUM(packets), COUNT(*) FROM clogs")
        assert result.value("COUNT(*)") == 3

    def test_value_ambiguous_without_label(self):
        result = run("SELECT SUM(packets), COUNT(*) FROM clogs")
        with pytest.raises(QueryError):
            result.value()

    def test_unknown_label(self):
        result = run("SELECT COUNT(*) FROM clogs")
        with pytest.raises(QueryError):
            result.value("SUM(packets)")

    def test_empty_table(self):
        result = run("SELECT COUNT(*), SUM(packets) FROM clogs", data=[])
        assert result.values == (0, None)
