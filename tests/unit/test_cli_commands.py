"""Command-registry tests: every registered scenario smoke-runs
through the invoker, hooks observe each run, and the help output
advertises the full registry."""

import argparse
import dataclasses

import pytest

from repro.cli import (
    REGISTRY,
    CommandInvoker,
    CommandRegistry,
    CommandResult,
)
from repro.cli.commands.serve import ServeCommand
from repro.cli.commands.worker import WorkerCommand
from repro.errors import ConfigurationError
from repro.storage import SqliteLogStore

EXPECTED_COMMANDS = (
    "simulate", "aggregate", "query", "serve", "worker", "metrics",
    "verify", "verify-bundle", "verify-query", "bundle", "tamper",
    "info", "federate",
)


class RecordingHook:
    def __init__(self):
        self.events = []

    def before(self, command, args):
        self.events.append(("before", command.name))

    def after(self, command, args, result):
        assert isinstance(result, CommandResult)
        self.events.append(("after", command.name))


class TestRegistry:
    def test_all_builtin_commands_registered(self):
        assert REGISTRY.names() == EXPECTED_COMMANDS

    def test_duplicate_registration_rejected(self):
        registry = CommandRegistry()
        first = ServeCommand()
        registry.register(first)
        # Re-registering the same instance is an idempotent no-op …
        registry.register(first)
        # … but a second command claiming the name is a config error.
        with pytest.raises(ConfigurationError,
                           match="already registered"):
            registry.register(ServeCommand())

    def test_unknown_command_lookup(self):
        with pytest.raises(ConfigurationError, match="unknown CLI"):
            CommandRegistry().get("replicate")

    def test_help_lists_every_registered_scenario(self, capsys):
        parser = CommandInvoker(REGISTRY).build_parser()
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        for name in REGISTRY.names():
            assert name in help_text


class TestCommandResult:
    def test_frozen(self):
        result = CommandResult.ok("done", records=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.exit_code = 5

    def test_data_mapping_read_only(self):
        result = CommandResult.ok(records=3)
        assert result.data["records"] == 3
        with pytest.raises(TypeError):
            result.data["records"] = 4

    def test_failure_carries_exit_code(self):
        result = CommandResult.failure("boom", exit_code=3, reason="x")
        assert not result.success
        assert result.exit_code == 3
        assert result.data["reason"] == "x"


class TestHookOrdering:
    def test_before_in_order_after_reversed(self):
        registry = CommandRegistry()

        class Noop:
            name = "noop"
            help = "noop"

            def configure(self, parser):
                pass

            def run(self, args):
                return CommandResult.ok()

        command = Noop()
        registry.register(command)
        trace = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def before(self, cmd, args):
                trace.append(("before", self.tag))

            def after(self, cmd, args, result):
                trace.append(("after", self.tag))

        invoker = CommandInvoker(registry,
                                 hooks=[Tagged("a"), Tagged("b")])
        invoker.invoke(command, argparse.Namespace())
        assert trace == [("before", "a"), ("before", "b"),
                         ("after", "b"), ("after", "a")]


class TestEveryCommandSmokeRuns:
    """Drive each registered command end-to-end through the invoker.

    One ordered sweep over a shared workspace: simulate seeds the
    store, aggregate proves it, and the later commands consume those
    artifacts.  serve/worker have their accept loops stubbed so they
    exercise construction + teardown without binding a socket forever.
    """

    def test_sweep_covers_registry_and_hooks_fire(self, tmp_path,
                                                  monkeypatch, capsys):
        db = tmp_path / "logs.db"
        bulletin = tmp_path / "bulletin.json"
        receipts = tmp_path / "receipts"
        bundle_path = tmp_path / "bundle.json"
        query_receipt = tmp_path / "query.receipt.json"
        metrics_out = tmp_path / "metrics.json"

        served = []
        monkeypatch.setattr(
            ServeCommand, "_serve",
            lambda self, server, service, args: served.append("serve"))
        monkeypatch.setattr(
            WorkerCommand, "_serve",
            lambda self, server, store, args: served.append("worker"))

        count_sql = "SELECT COUNT(*) FROM clogs"
        base = ["--db", str(db), "--bulletin", str(bulletin)]
        sweep = [
            ("simulate", base + ["--records", "60", "--routers", "3"]),
            ("aggregate", base + ["--receipts", str(receipts)]),
            ("query", base + ["--receipts", str(receipts),
                              "--out", str(query_receipt), count_sql]),
            ("bundle", base + ["--receipts", str(receipts),
                               "--out", str(bundle_path),
                               "--query", count_sql]),
            ("verify", ["--bulletin", str(bulletin),
                        "--receipts", str(receipts)]),
            ("verify-bundle", ["--bundle", str(bundle_path)]),
            ("verify-query", ["--bulletin", str(bulletin),
                              "--receipts", str(receipts),
                              "--query-receipt", str(query_receipt)]),
            ("info", ["--db", str(db)]),
            ("metrics", ["--out", str(metrics_out)]),
            ("serve", base + ["--receipts", str(receipts)]),
            ("worker", []),
            ("federate", ["--providers", "2", "--flows", "8",
                          "--seed", "3"]),
            # Last: corrupts the store, so nothing may run after it.
            ("tamper", ["--db", str(db), "--window", "0",
                        "--router", None]),  # router filled below
        ]
        assert {name for name, _ in sweep} == set(REGISTRY.names()), \
            "smoke sweep must cover every registered command"

        hook = RecordingHook()
        invoker = CommandInvoker(REGISTRY, hooks=[hook])
        for name, argv in sweep:
            if name == "tamper":
                store = SqliteLogStore(str(db))
                router = sorted(store.router_ids())[0]
                store.close()
                argv = [a if a is not None else router for a in argv]
            exit_code = invoker.main([name] + argv)
            captured = capsys.readouterr()
            assert exit_code == 0, \
                f"{name} exited {exit_code}: {captured.err}"
            assert ("before", name) in hook.events
            assert ("after", name) in hook.events

        assert served == ["serve", "worker"]
        assert bundle_path.exists()
        assert query_receipt.exists()
        assert metrics_out.exists()

    def test_aggregate_empty_store_fails_cleanly(self, tmp_path,
                                                 capsys):
        db = tmp_path / "empty.db"
        bulletin = tmp_path / "bulletin.json"
        bulletin.write_text('{"commitments": []}')
        SqliteLogStore(str(db)).close()
        invoker = CommandInvoker(REGISTRY)
        exit_code = invoker.main([
            "aggregate", "--db", str(db), "--bulletin", str(bulletin),
            "--receipts", str(tmp_path / "receipts")])
        assert exit_code == 1
        assert "nothing to aggregate" in capsys.readouterr().out
