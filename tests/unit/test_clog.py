"""Unit tests for CLog entries and state."""

import pytest

from repro.core.clog import CLogEntry, CLogState, entry_view_from_wire
from repro.core.policy import AggOp, AggregationPolicy, DEFAULT_POLICY
from repro.errors import ConfigurationError, SerializationError

from ..conftest import make_record


class TestEntryConstruction:
    def test_fresh_copies_record(self):
        record = make_record()
        entry = CLogEntry.fresh(record)
        assert entry.key == record.key
        assert entry.packets == record.packets
        assert entry.lost_packets == record.lost_packets
        assert entry.record_count == 1
        assert entry.routers == ("r1",)

    def test_merge_applies_policy(self):
        entry = CLogEntry.fresh(make_record(packets=100, lost_packets=1,
                                            hop_count=1))
        merged = entry.merge(
            make_record(router_id="r2", packets=90, lost_packets=4,
                        hop_count=2),
            DEFAULT_POLICY)
        assert merged.packets == 100        # MAX
        assert merged.lost_packets == 5     # SUM
        assert merged.hop_count == 2        # MAX
        assert merged.record_count == 2
        assert merged.routers == ("r1", "r2")

    def test_merge_timestamps_and_averages(self):
        entry = CLogEntry.fresh(make_record(
            first_switched_ms=1_000, last_switched_ms=3_000,
            rtt_us=10_000, jitter_us=100))
        merged = entry.merge(make_record(
            first_switched_ms=500, last_switched_ms=5_000,
            rtt_us=20_000, jitter_us=300), DEFAULT_POLICY)
        assert merged.first_ms == 500
        assert merged.last_ms == 5_000
        assert merged.rtt_sum_us == 30_000
        assert merged.jitter_sum_us == 400

    def test_merge_wrong_key_rejected(self):
        entry = CLogEntry.fresh(make_record())
        with pytest.raises(ConfigurationError):
            entry.merge(make_record(sport=1), DEFAULT_POLICY)

    def test_merge_same_router_no_duplicate(self):
        entry = CLogEntry.fresh(make_record())
        merged = entry.merge(make_record(), DEFAULT_POLICY)
        assert merged.routers == ("r1",)


class TestCombine:
    def test_combine_partial_aggregates(self):
        a = CLogEntry.fresh(make_record(router_id="r1", lost_packets=2))
        b = CLogEntry.fresh(make_record(router_id="r2", lost_packets=3))
        combined = a.combine(b, DEFAULT_POLICY)
        assert combined.lost_packets == 5
        assert combined.record_count == 2
        assert combined.routers == ("r1", "r2")

    def test_combine_is_commutative(self):
        a = CLogEntry.fresh(make_record(router_id="r1", packets=10))
        b = CLogEntry.fresh(make_record(router_id="r2", packets=99))
        assert a.combine(b, DEFAULT_POLICY) == \
            b.combine(a, DEFAULT_POLICY)

    def test_combine_rejects_last_policy(self):
        policy = AggregationPolicy(packets=AggOp.LAST)
        a = CLogEntry.fresh(make_record(router_id="r1"))
        b = CLogEntry.fresh(make_record(router_id="r2"))
        with pytest.raises(ConfigurationError, match="associative"):
            a.combine(b, policy)

    def test_combine_wrong_key(self):
        a = CLogEntry.fresh(make_record())
        b = CLogEntry.fresh(make_record(sport=9))
        with pytest.raises(ConfigurationError):
            a.combine(b, DEFAULT_POLICY)


class TestPayload:
    def test_payload_roundtrip(self):
        entry = CLogEntry.fresh(make_record())
        assert CLogEntry.from_payload(entry.to_payload()) == entry

    def test_payload_changes_with_content(self):
        a = CLogEntry.fresh(make_record())
        b = a.merge(make_record(router_id="r2"), DEFAULT_POLICY)
        assert a.to_payload() != b.to_payload()

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            CLogEntry.from_payload(b"garbage")


class TestQueryView:
    def test_view_fields(self):
        entry = CLogEntry.fresh(make_record(
            packets=90, lost_packets=10, rtt_us=8_000,
            first_switched_ms=0, last_switched_ms=1_000,
            octets=125_000))
        view = entry.query_view()
        assert view["src_ip"] == entry.key.src_addr
        assert view["loss_rate"] == pytest.approx(0.1)
        assert view["rtt_avg_us"] == pytest.approx(8_000)
        assert view["throughput_bps"] == pytest.approx(1_000_000)
        assert view["router_count"] == 1

    def test_view_matches_wire_derivation(self):
        entry = CLogEntry.fresh(make_record())
        assert entry.query_view() == entry_view_from_wire(entry.to_wire())

    def test_view_has_all_queryable_fields(self):
        from repro.query.fields import QUERYABLE_FIELDS
        view = CLogEntry.fresh(make_record()).query_view()
        assert set(QUERYABLE_FIELDS) <= set(view)


class TestCLogState:
    def test_set_and_get(self):
        state = CLogState()
        entry = CLogEntry.fresh(make_record())
        slot = state.set_entry(entry)
        assert slot == 0
        assert state.get(entry.key) == entry
        assert entry.key in state
        assert len(state) == 1

    def test_root_changes_with_entries(self):
        state = CLogState()
        empty_root = state.root
        state.set_entry(CLogEntry.fresh(make_record()))
        assert state.root != empty_root

    def test_slot_order_stable(self):
        state = CLogState()
        entries = [CLogEntry.fresh(make_record(sport=1000 + i))
                   for i in range(5)]
        for entry in entries:
            state.set_entry(entry)
        assert state.entries_in_slot_order() == entries
        # Updating an entry keeps its slot.
        updated = entries[2].merge(make_record(sport=1002,
                                               router_id="r9"),
                                   DEFAULT_POLICY)
        state.set_entry(updated)
        assert state.entries_in_slot_order()[2] == updated

    def test_clone_is_independent(self):
        state = CLogState()
        state.set_entry(CLogEntry.fresh(make_record()))
        clone = state.clone()
        assert clone.root == state.root
        clone.set_entry(CLogEntry.fresh(make_record(sport=9)))
        assert clone.root != state.root
        assert len(state) == 1

    def test_entry_views(self):
        state = CLogState()
        state.set_entry(CLogEntry.fresh(make_record()))
        views = state.entry_views()
        assert len(views) == 1
        assert views[0]["packets"] == 100
