"""Unit tests for the SQL-subset parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query import parse_query
from repro.query.ast import (
    AggFunc,
    BinaryOp,
    Comparison,
    Logical,
    LogicalOp,
    PrefixMatch,
    query_from_wire,
)

PAPER_QUERY = ('SELECT SUM(hop_count) FROM clogs '
               'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9";')


class TestSelectList:
    def test_paper_query(self):
        query = parse_query(PAPER_QUERY)
        assert query.source == "clogs"
        assert query.labels == ("SUM(hop_count)",)
        assert isinstance(query.where, Logical)
        assert query.where.op is LogicalOp.AND

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM clogs")
        assert query.aggregates[0].func is AggFunc.COUNT
        assert query.aggregates[0].field is None
        assert query.where is None

    def test_multiple_aggregates(self):
        query = parse_query(
            "SELECT COUNT(*), AVG(rtt_avg_us), MAX(packets) FROM clogs")
        assert query.labels == ("COUNT(*)", "AVG(rtt_avg_us)",
                                "MAX(packets)")

    @pytest.mark.parametrize("func", ["SUM", "AVG", "MIN", "MAX"])
    def test_star_only_for_count(self, func):
        with pytest.raises(QuerySyntaxError):
            parse_query(f"SELECT {func}(*) FROM clogs")

    def test_unknown_column_rejected_at_parse(self):
        with pytest.raises(QuerySyntaxError, match="unknown column"):
            parse_query("SELECT SUM(bogus_col) FROM clogs")

    def test_missing_from(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT COUNT(*) clogs")


class TestPredicates:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_comparison_operators(self, op):
        query = parse_query(
            f"SELECT COUNT(*) FROM clogs WHERE packets {op} 100")
        assert isinstance(query.where, Comparison)
        assert query.where.op is BinaryOp(op)
        assert query.where.value.value == 100

    def test_float_literal(self):
        query = parse_query(
            "SELECT COUNT(*) FROM clogs WHERE loss_rate < 0.01")
        assert query.where.value.value == pytest.approx(0.01)

    def test_string_literal(self):
        query = parse_query(
            'SELECT COUNT(*) FROM clogs WHERE src_ip = "1.2.3.4"')
        assert query.where.value.value == "1.2.3.4"

    def test_prefix_match(self):
        query = parse_query(
            'SELECT COUNT(*) FROM clogs WHERE src_ip IN "10.1.0.0/16"')
        assert isinstance(query.where, PrefixMatch)
        assert query.where.prefix == "10.1.0.0/16"
        assert not query.where.negated

    def test_not_in_prefix(self):
        query = parse_query(
            'SELECT COUNT(*) FROM clogs '
            'WHERE src_ip NOT IN "10.0.0.0/8"')
        assert query.where.negated

    def test_invalid_cidr_rejected(self):
        with pytest.raises(QuerySyntaxError, match="CIDR"):
            parse_query(
                'SELECT COUNT(*) FROM clogs WHERE src_ip IN "10.1/99"')

    def test_and_or_precedence(self):
        query = parse_query(
            "SELECT COUNT(*) FROM clogs "
            "WHERE packets > 1 AND octets > 2 OR hop_count = 3")
        assert query.where.op is LogicalOp.OR
        left = query.where.operands[0]
        assert isinstance(left, Logical) and left.op is LogicalOp.AND

    def test_parentheses_override(self):
        query = parse_query(
            "SELECT COUNT(*) FROM clogs "
            "WHERE packets > 1 AND (octets > 2 OR hop_count = 3)")
        assert query.where.op is LogicalOp.AND

    def test_not_operator(self):
        query = parse_query(
            "SELECT COUNT(*) FROM clogs WHERE NOT packets > 5")
        assert query.where.op is LogicalOp.NOT

    def test_bare_not_without_in_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(
                "SELECT COUNT(*) FROM clogs WHERE packets NOT 5")

    def test_missing_literal(self):
        with pytest.raises(QuerySyntaxError, match="literal"):
            parse_query("SELECT COUNT(*) FROM clogs WHERE packets =")


class TestWhole:
    def test_trailing_semicolon_optional(self):
        with_semi = parse_query("SELECT COUNT(*) FROM clogs;")
        without = parse_query("SELECT COUNT(*) FROM clogs")
        assert with_semi == without

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError, match="trailing"):
            parse_query("SELECT COUNT(*) FROM clogs extra")

    def test_wire_roundtrip(self):
        query = parse_query(
            'SELECT SUM(octets), COUNT(*) FROM clogs '
            'WHERE (src_ip IN "10.0.0.0/8" OR packets >= 5) '
            'AND NOT dst_port = 53')
        assert query_from_wire(query.to_wire()) == query

    def test_node_count_positive(self):
        assert parse_query(PAPER_QUERY).node_count > 5
