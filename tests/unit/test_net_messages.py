"""Unit tests: message envelopes, error-code registry, wire codecs."""

import pytest

from repro.core.prover_service import ProverService
from repro.errors import (
    ChainError,
    FrameTooLarge,
    IntegrityError,
    MissingCommitment,
    ProofError,
    ProtocolError,
    QuerySyntaxError,
    RemoteError,
    SerializationError,
    VerificationError,
)
from repro.net.messages import (
    PROTOCOL_VERSION,
    Envelope,
    MessageKind,
    error_code_for,
    error_response,
    ok_response,
    raise_remote,
    request,
)
from repro.serialization import (
    decode_commitment,
    decode_query_response,
    decode_receipt,
    encode,
    encode_commitment,
    encode_query_response,
    encode_receipt,
)

from ..conftest import make_committed_records


class TestEnvelope:
    def test_request_round_trip(self):
        env = request(7, MessageKind.QUERY,
                      {"sql": "SELECT COUNT(*) FROM clogs",
                       "round": None})
        decoded = Envelope.from_bytes(env.to_bytes())
        assert decoded == env
        assert decoded.type == "req"
        assert decoded.request_id == 7

    def test_ok_and_error_round_trip(self):
        for env in (ok_response(3, "health", {"status": "ok"}),
                    error_response(4, "query", "query-syntax",
                                   "bad token")):
            assert Envelope.from_bytes(env.to_bytes()) == env

    def test_version_mismatch_rejected(self):
        payload = encode({"v": PROTOCOL_VERSION + 1, "t": "req",
                          "id": 1, "k": "health", "b": {}})
        with pytest.raises(ProtocolError, match="version"):
            Envelope.from_bytes(payload)

    @pytest.mark.parametrize("wire", [
        {"t": "req", "id": 1, "k": "health", "b": {}},  # missing v
        {"v": 1, "t": "nope", "id": 1, "k": "health", "b": {}},
        {"v": 1, "t": "req", "id": -4, "k": "health", "b": {}},
        {"v": 1, "t": "req", "id": 1, "k": 9, "b": {}},
        {"v": 1, "t": "req", "id": 1, "k": "health", "b": []},
    ])
    def test_malformed_envelopes_rejected(self, wire):
        with pytest.raises(ProtocolError):
            Envelope.from_bytes(encode(wire))

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            Envelope.from_bytes(b"\xff\xfenot an envelope")


class TestErrorCodes:
    @pytest.mark.parametrize("exc,code", [
        (MissingCommitment("w"), "missing-commitment"),
        (IntegrityError("x"), "integrity"),
        (QuerySyntaxError("bad", 3), "query-syntax"),
        (ChainError("gap"), "chain"),
        (VerificationError("seal"), "verification"),
        (ProofError("p"), "proof"),
        (FrameTooLarge("big"), "frame-too-large"),
        (ValueError("not a repro error"), "internal"),
    ])
    def test_most_specific_class_wins(self, exc, code):
        assert error_code_for(exc) == code

    def test_raise_remote_maps_known_codes_to_typed_errors(self):
        with pytest.raises(MissingCommitment):
            raise_remote("missing-commitment", "no window 3")
        with pytest.raises(FrameTooLarge):
            raise_remote("frame-too-large", "17MB")
        with pytest.raises(QuerySyntaxError):
            raise_remote("query-syntax", "unexpected token")

    def test_raise_remote_falls_back_to_remote_error(self):
        with pytest.raises(RemoteError) as info:
            raise_remote("internal", "KeyError: boom")
        assert info.value.code == "internal"

    def test_round_trip_server_exception_to_client_type(self):
        """server catches exc -> code -> client re-raises same family"""
        exc = MissingCommitment("no commitment for r1/3")
        code = error_code_for(exc)
        with pytest.raises(MissingCommitment):
            raise_remote(code, str(exc))


@pytest.fixture(scope="module")
def tiny_service():
    store, bulletin, _count = make_committed_records(24)
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    return service


class TestWireCodecs:
    def test_commitment_round_trip(self, tiny_service):
        for commitment in tiny_service.bulletin:
            data = encode_commitment(commitment)
            assert decode_commitment(data) == commitment

    def test_receipt_round_trip(self, tiny_service):
        receipt = tiny_service.chain.latest.receipt
        restored = decode_receipt(encode_receipt(receipt))
        assert restored.to_bytes() == receipt.to_bytes()
        assert restored.claim_digest == receipt.claim_digest
        assert restored.journal == receipt.journal

    def test_query_response_round_trip(self, tiny_service):
        response = tiny_service.answer_query(
            "SELECT COUNT(*), SUM(packets) FROM clogs")
        restored = decode_query_response(
            encode_query_response(response))
        assert restored.sql == response.sql
        assert restored.labels == response.labels
        assert restored.values == response.values
        assert restored.matched == response.matched
        assert restored.scanned == response.scanned
        assert restored.round == response.round
        assert restored.root == response.root
        assert restored.groups == response.groups
        assert restored.receipt.to_bytes() \
            == response.receipt.to_bytes()

    def test_grouped_response_round_trips(self, tiny_service):
        response = tiny_service.answer_query(
            "SELECT SUM(packets) FROM clogs GROUP BY protocol")
        restored = decode_query_response(
            encode_query_response(response))
        assert restored.group_by == response.group_by
        assert restored.groups == response.groups

    @pytest.mark.parametrize("data", [
        b"",
        b"\x00",                      # None, not a dict
        encode({"sql": "x"}),         # dict missing fields
        encode([1, 2, 3]),
        b"\xff\xff\xff",
    ])
    def test_malformed_bytes_raise_serialization_error(self, data):
        for decoder in (decode_commitment, decode_receipt,
                        decode_query_response):
            with pytest.raises(SerializationError):
                decoder(data)
