"""Unit tests for the query tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.text) for t in tokenize(text)
            if t.type is not TokenType.EOF]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select Sum from") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "SUM"),
            (TokenType.KEYWORD, "FROM"),
        ]

    def test_identifiers(self):
        assert kinds("hop_count clogs") == [
            (TokenType.IDENT, "hop_count"),
            (TokenType.IDENT, "clogs"),
        ]

    def test_numbers(self):
        assert kinds("42 -7 3.5") == [
            (TokenType.NUMBER, "42"),
            (TokenType.NUMBER, "-7"),
            (TokenType.NUMBER, "3.5"),
        ]

    def test_strings_both_quotes(self):
        assert kinds("\"1.1.1.1\" 'x y'") == [
            (TokenType.STRING, "1.1.1.1"),
            (TokenType.STRING, "x y"),
        ]

    def test_operators(self):
        assert [t.text for t in tokenize("= != < <= > >=")
                if t.type is TokenType.OPERATOR] == \
            ["=", "!=", "<", "<=", ">", ">="]

    def test_punct(self):
        assert kinds("( ) , ; *") == [
            (TokenType.PUNCT, "("), (TokenType.PUNCT, ")"),
            (TokenType.PUNCT, ","), (TokenType.PUNCT, ";"),
            (TokenType.PUNCT, "*"),
        ]

    def test_positions_recorded(self):
        tokens = tokenize("a  bb")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("x")[-1].type is TokenType.EOF

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError, match="unterminated"):
            tokenize('SELECT "oops')

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a @ b")

    def test_bad_operator(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a !x b")

    def test_whitespace_insensitive(self):
        assert kinds("a=1") == kinds("a = 1")
