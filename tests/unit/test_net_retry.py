"""Unit tests: retry policy, backoff schedule, jitter bounds."""

import random

import pytest

from repro.errors import (
    ConfigurationError,
    ConnectionFailed,
    QueryError,
    RetryExhausted,
)
from repro.net.retry import NO_RETRY, RetryPolicy, call_with_retry


class TestBackoffSchedule:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             multiplier=2.0, max_delay=10.0,
                             jitter=0.0)
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.4, 0.8])

    def test_max_delay_clamps(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0,
                             multiplier=10.0, max_delay=3.0,
                             jitter=0.0)
        assert list(policy.delays()) == pytest.approx(
            [1.0, 3.0, 3.0, 3.0, 3.0])

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0,
                             jitter=0.25)
        rng = random.Random(42)
        samples = [policy.delay(0, rng) for _ in range(500)]
        assert all(0.75 <= s <= 1.25 for s in samples)
        # and it actually jitters
        assert max(samples) - min(samples) > 0.1

    def test_schedule_length_is_attempts_minus_one(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert len(list(policy.delays())) == 3
        assert list(NO_RETRY.delays()) == []

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def _policy(self, attempts=3):
        return RetryPolicy(max_attempts=attempts, base_delay=0.01,
                           jitter=0.0)

    def test_success_passes_through(self):
        assert call_with_retry(lambda: 42, self._policy()) == 42

    def test_retries_transient_then_succeeds(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionFailed("refused")
            return "ok"

        result = call_with_retry(flaky, self._policy(),
                                 sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert slept == pytest.approx([0.01, 0.02])

    def test_exhaustion_raises_with_cause(self):
        def always_down():
            raise ConnectionFailed("refused")

        with pytest.raises(RetryExhausted) as info:
            call_with_retry(always_down, self._policy(attempts=4),
                            sleep=lambda _s: None)
        assert info.value.attempts == 4
        assert isinstance(info.value.__cause__, ConnectionFailed)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bad_request():
            calls.append(1)
            raise QueryError("bad sql")

        with pytest.raises(QueryError):
            call_with_retry(bad_request, self._policy())
        assert len(calls) == 1

    def test_no_retry_policy_makes_one_attempt(self):
        """One attempt means nothing was exhausted: the typed
        transport error must surface unwrapped so callers that do
        their own retrying can classify it."""
        calls = []

        def always_down():
            calls.append(1)
            raise ConnectionFailed("refused")

        with pytest.raises(ConnectionFailed):
            call_with_retry(always_down, NO_RETRY)
        assert len(calls) == 1

    def test_deterministic_with_seeded_rng(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.05,
                             jitter=0.5)
        sleeps_a, sleeps_b = [], []
        for sleeps in (sleeps_a, sleeps_b):
            def always_down():
                raise ConnectionFailed("refused")
            with pytest.raises(RetryExhausted):
                call_with_retry(always_down, policy,
                                rng=random.Random(7),
                                sleep=sleeps.append)
        assert sleeps_a == sleeps_b
