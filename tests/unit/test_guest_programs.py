"""Unit tests for the telemetry guest programs, driven directly."""

import pytest

from repro.commitments import window_digest
from repro.core.aggregation import (
    Aggregator,
    RouterWindowInput,
    make_receipt_binding,
)
from repro.core.clog import CLogState
from repro.core.guest_programs import aggregation_guest, query_guest
from repro.core.policy import DEFAULT_POLICY
from repro.core.witness import build_witness
from repro.errors import ChainError, GuestAbort
from repro.hashing import sha256
from repro.merkle.tree import EMPTY_ROOTS
from repro.zkvm import ExecutorEnvBuilder, Prover, verify_receipt

from ..conftest import make_record


def window_inputs(records_by_router: dict[str, list]):
    inputs = []
    for router_id, records in sorted(records_by_router.items()):
        blobs = tuple(r.to_bytes() for r in records)
        inputs.append(RouterWindowInput(
            router_id=router_id, window_index=0,
            commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


def simple_round(records_by_router=None):
    if records_by_router is None:
        records_by_router = {
            "r1": [make_record(router_id="r1")],
            "r2": [make_record(router_id="r2", sport=2000)],
        }
    state = CLogState()
    return Aggregator().aggregate(state, window_inputs(records_by_router),
                                  prev_receipt=None)


class TestAggregationGuest:
    def test_journal_header_fields(self):
        result = simple_round()
        header = result.journal_header
        assert header["round"] == 0
        assert header["prev_root"] == EMPTY_ROOTS[0]
        assert header["new_root"] == result.new_root
        assert header["size"] == 2
        assert header["entries"] == 2
        assert header["policy"] == DEFAULT_POLICY.digest()
        assert {(w["r"], w["w"]) for w in header["windows"]} == \
            {("r1", 0), ("r2", 0)}

    def test_per_entry_journal_items(self):
        result = simple_round()
        values = result.receipt.journal.decode()
        items = values[1:]
        assert len(items) == 2
        for item in items:
            assert set(item) == {"s", "l", "t"}
            assert len(item["t"]) == 16

    def test_receipt_verifies(self):
        result = simple_round()
        verify_receipt(result.receipt, aggregation_guest.image_id)

    def test_commitment_mismatch_aborts(self):
        records = {"r1": [make_record()]}
        inputs = window_inputs(records)
        forged = [RouterWindowInput(
            router_id=i.router_id, window_index=i.window_index,
            commitment=sha256(b"wrong"), blobs=i.blobs) for i in inputs]
        with pytest.raises(GuestAbort, match="commitment mismatch"):
            Aggregator().aggregate(CLogState(), forged, None)

    def test_nonempty_genesis_state_aborts(self):
        """Round 0 must start from the empty CLog."""
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": 0,
            "policy": DEFAULT_POLICY.to_wire(),
            "prev_root": sha256(b"not empty"),
            "prev_size": 3,
            "prev_depth": 2,
            "num_routers": 0,
            "num_ops": 0,
        })
        with pytest.raises(GuestAbort, match="genesis"):
            Prover().prove(aggregation_guest, builder.build())

    def test_witness_record_mismatch_aborts(self):
        """Ops must line up one-to-one with committed records."""
        records = {"r1": [make_record()]}
        inputs = window_inputs(records)
        witness = build_witness(CLogState(),
                                [make_record()], DEFAULT_POLICY)
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": 0,
            "policy": DEFAULT_POLICY.to_wire(),
            "prev_root": witness.prev_root,
            "prev_size": 0,
            "prev_depth": 0,
            "num_routers": 1,
            "num_ops": 0,  # no ops supplied
        })
        builder.write({
            "router_id": "r1", "window_index": 0,
            "commitment": inputs[0].commitment,
            "blobs": list(inputs[0].blobs),
        })
        with pytest.raises(GuestAbort, match="witness exhausted"):
            Prover().prove(aggregation_guest, builder.build())

    def test_chained_round_requires_prev_receipt(self):
        result = simple_round()
        state = result.new_state
        follow_up = {"r1": [make_record(sport=3000)]}
        with pytest.raises(ChainError):
            Aggregator().aggregate(state, window_inputs(follow_up), None)

    def test_chained_round_resolves(self):
        first = simple_round()
        follow_up = window_inputs(
            {"r1": [make_record(router_id="r1", sport=3000)]})
        # Reuse different window index to be realistic.
        second = Aggregator().aggregate(first.new_state, follow_up,
                                        first.receipt)
        assert second.round == 1
        assert second.journal_header["prev_root"] == first.new_root
        assert not second.receipt.claim.assumptions
        verify_receipt(second.receipt, aggregation_guest.image_id)


class TestQueryGuest:
    def make_query_input(self, result, sql, entries=None, num=None):
        state = result.new_state
        entries = entries if entries is not None \
            else state.entries_in_slot_order()
        builder = ExecutorEnvBuilder()
        builder.write({"query": sql,
                       "num_entries": num if num is not None
                       else len(entries)})
        builder.write(make_receipt_binding(result.receipt))
        for entry in entries:
            builder.write({"key": entry.key.pack(),
                           "payload": entry.to_payload()})
        return builder.build()

    def test_query_journal(self):
        result = simple_round()
        sql = "SELECT COUNT(*) FROM clogs"
        info = Prover().prove(query_guest,
                              self.make_query_input(result, sql))
        journal = info.receipt.journal.decode_one()
        assert journal["query"] == sql
        assert journal["root"] == result.new_root
        assert journal["values"] == [2]
        assert journal["scanned"] == 2

    def test_entry_substitution_aborts(self):
        """Swapping an entry's payload breaks the root recomputation."""
        result = simple_round()
        entries = result.new_state.entries_in_slot_order()
        from repro.core.clog import CLogEntry
        forged = [CLogEntry.fresh(make_record(sport=1, lost_packets=0))]\
            + entries[1:]
        env_input = self.make_query_input(
            result, "SELECT COUNT(*) FROM clogs", entries=forged)
        with pytest.raises(GuestAbort, match="root"):
            Prover().prove(query_guest, env_input)

    def test_entry_omission_aborts(self):
        result = simple_round()
        entries = result.new_state.entries_in_slot_order()
        env_input = self.make_query_input(
            result, "SELECT COUNT(*) FROM clogs", entries=entries[:1],
            num=1)
        with pytest.raises(GuestAbort, match="entries"):
            Prover().prove(query_guest, env_input)

    def test_query_over_empty_state(self):
        result = Aggregator().aggregate(CLogState(), window_inputs(
            {"r1": [make_record()]}), None)
        # Single entry state still works.
        info = Prover().prove(query_guest, self.make_query_input(
            result, "SELECT SUM(lost_packets) FROM clogs"))
        journal = info.receipt.journal.decode_one()
        assert journal["values"] == [1]
