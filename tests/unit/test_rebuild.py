"""Unit tests for the full-rebuild aggregation strategy."""

import pytest

from repro.commitments import Commitment, window_digest
from repro.core.aggregation import Aggregator, RouterWindowInput
from repro.core.clog import CLogState
from repro.core.prover_service import ProverService
from repro.core.rebuild import RebuildAggregator, \
    rebuild_aggregation_guest
from repro.core.verifier_client import VerifierClient
from repro.errors import GuestAbort, ProofError
from repro.hashing import sha256
from repro.storage import MemoryLogStore
from repro.commitments import BulletinBoard
from repro.zkvm import verify_receipt

from ..conftest import make_record


def window_inputs(records_by_router, window_index=0):
    inputs = []
    for router_id, records in sorted(records_by_router.items()):
        blobs = tuple(r.to_bytes() for r in records)
        inputs.append(RouterWindowInput(
            router_id=router_id, window_index=window_index,
            commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


SIMPLE = {
    "r1": [make_record(router_id="r1"),
           make_record(router_id="r1", sport=2000)],
    "r2": [make_record(router_id="r2")],
}


class TestRebuildRound:
    def test_round_zero(self):
        result = RebuildAggregator().aggregate(
            CLogState(), window_inputs(SIMPLE), None)
        assert result.round == 0
        assert len(result.new_state) == 2
        verify_receipt(result.receipt,
                       rebuild_aggregation_guest.image_id)

    def test_matches_update_strategy_exactly(self):
        """Both strategies must produce identical state AND identical
        Merkle roots — the strategies are proof-time tradeoffs only."""
        update = Aggregator().aggregate(CLogState(),
                                        window_inputs(SIMPLE), None)
        rebuild = RebuildAggregator().aggregate(
            CLogState(), window_inputs(SIMPLE), None)
        assert update.new_root == rebuild.new_root
        assert update.journal_header["new_root"] == \
            rebuild.journal_header["new_root"]
        assert [e.to_payload() for e in
                update.new_state.entries_in_slot_order()] == \
            [e.to_payload() for e in
             rebuild.new_state.entries_in_slot_order()]

    def test_journal_layout_compatible(self):
        result = RebuildAggregator().aggregate(
            CLogState(), window_inputs(SIMPLE), None)
        header = result.journal_header
        assert set(header) == {"round", "prev_root", "new_root", "size",
                               "depth", "windows", "policy", "entries"}
        items = result.receipt.journal.decode()[1:]
        assert all(set(item) == {"s", "l", "t"} for item in items)

    def test_commitment_mismatch_aborts(self):
        inputs = window_inputs(SIMPLE)
        forged = [RouterWindowInput(
            router_id=i.router_id, window_index=i.window_index,
            commitment=sha256(b"wrong"), blobs=i.blobs)
            for i in inputs]
        with pytest.raises(GuestAbort, match="commitment mismatch"):
            RebuildAggregator().aggregate(CLogState(), forged, None)

    def test_chained_round(self):
        first = RebuildAggregator().aggregate(
            CLogState(), window_inputs(SIMPLE), None)
        follow = window_inputs(
            {"r1": [make_record(router_id="r1", sport=3000)]},
            window_index=1)
        second = RebuildAggregator().aggregate(
            first.new_state, follow, first.receipt)
        assert second.round == 1
        assert second.journal_header["prev_root"] == first.new_root
        verify_receipt(second.receipt,
                       rebuild_aggregation_guest.image_id)


class TestStrategyInterop:
    def make_service(self, strategy):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        for window in range(2):
            records = [make_record(router_id="r1",
                                   sport=1000 + window)]
            store.append_records("r1", window, records)
            bulletin.publish(Commitment(
                "r1", window,
                window_digest([r.to_bytes() for r in records]),
                len(records), window * 5000))
        return ProverService(store, bulletin, strategy=strategy)

    @pytest.mark.parametrize("strategy", ["update", "rebuild"])
    def test_service_with_strategy(self, strategy):
        service = self.make_service(strategy)
        service.aggregate_window(0)
        service.aggregate_window(1)
        verifier = VerifierClient(service.bulletin)
        chain = verifier.verify_chain(service.chain.receipts())
        assert [c.round for c in chain] == [0, 1]

    def test_mixed_strategy_chain(self):
        """An update round can extend a rebuild round and vice versa."""
        service = self.make_service("rebuild")
        first = service.aggregate_window(0)
        # Manually run round 1 with the *other* strategy.
        inputs = service.gather_window(1)
        second = Aggregator().aggregate(service.state, inputs,
                                        first.receipt)
        verifier = VerifierClient(service.bulletin)
        verified = verifier.verify_chain([first.receipt,
                                          second.receipt])
        assert verified[1].prev_root == verified[0].new_root

    def test_unknown_strategy_rejected(self):
        store = MemoryLogStore()
        with pytest.raises(ProofError, match="strategy"):
            ProverService(store, BulletinBoard(), strategy="magic")

    def test_untrusted_image_rejected_by_client(self):
        """A receipt from a non-aggregation guest never enters a
        chain, even if internally valid."""
        from repro.zkvm import ExecutorEnvBuilder, Prover, guest_program

        @guest_program("rogue-aggregator")
        def rogue(env):
            env.commit({"round": 0, "prev_root": sha256(b"x"),
                        "new_root": sha256(b"y"), "size": 0,
                        "depth": 0, "windows": [], "policy": sha256(b"p"),
                        "entries": 0})

        info = Prover().prove(rogue, ExecutorEnvBuilder().build())
        verifier = VerifierClient(BulletinBoard())
        from repro.errors import VerificationError
        with pytest.raises(VerificationError, match="not a trusted"):
            verifier.verify_aggregation(info.receipt, None)


class TestCostProfile:
    def test_rebuild_cheaper_for_large_batches(self):
        """Large batch over small state: rebuild should meter fewer
        cycles than per-record path updates."""
        big_batch = {
            "r1": [make_record(router_id="r1", sport=1000 + i)
                   for i in range(64)],
        }
        update = Aggregator().aggregate(CLogState(),
                                        window_inputs(big_batch), None)
        rebuild = RebuildAggregator().aggregate(
            CLogState(), window_inputs(big_batch), None)
        assert rebuild.info.stats.total_cycles < \
            update.info.stats.total_cycles

    def test_update_cheaper_for_small_batches_over_large_state(self):
        base = {
            "r1": [make_record(router_id="r1", sport=1000 + i)
                   for i in range(128)],
        }
        update_state = Aggregator().aggregate(
            CLogState(), window_inputs(base), None)
        small_batch = window_inputs(
            {"r1": [make_record(router_id="r1", sport=5000)]},
            window_index=1)
        update = Aggregator().aggregate(update_state.new_state,
                                        small_batch,
                                        update_state.receipt)
        rebuild = RebuildAggregator().aggregate(
            update_state.new_state, small_batch, update_state.receipt)
        assert update.info.stats.total_cycles < \
            rebuild.info.stats.total_cycles
