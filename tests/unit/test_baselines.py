"""Unit tests for the TEE and signed-log baselines."""

import pytest

from repro.baselines import (
    EnclaveSpec,
    SignedLogBaseline,
    TEETelemetryModel,
    compare_approaches,
)
from repro.errors import ConfigurationError, IntegrityError

from ..conftest import make_record


class TestEnclaveSpec:
    def test_throughput_cliff_at_epc_limit(self):
        spec = EnclaveSpec()
        limit = spec.working_set_limit_records()
        fast = spec.throughput_rps(limit)
        slow = spec.throughput_rps(limit + 1)
        assert fast / slow == pytest.approx(spec.paging_slowdown)

    def test_invalid_epc(self):
        with pytest.raises(ConfigurationError):
            EnclaveSpec(epc_usable_mb=0)


class TestTEEModel:
    def test_attestation_verifies(self):
        model = TEETelemetryModel()
        model.ingest(make_record())
        report = model.attest()
        report.verify(model.measurement, model.platform_key)

    def test_state_evolves_with_records(self):
        model = TEETelemetryModel()
        model.ingest(make_record())
        first = model.attest()
        model.ingest(make_record(sport=2))
        second = model.attest()
        assert first.report_data != second.report_data
        assert model.record_count == 2

    def test_wrong_measurement_rejected(self):
        from repro.hashing import sha256
        model = TEETelemetryModel()
        report = model.attest()
        with pytest.raises(IntegrityError, match="measurement"):
            report.verify(sha256(b"other enclave"), model.platform_key)

    def test_wrong_platform_key_rejected(self):
        model = TEETelemetryModel()
        report = model.attest()
        with pytest.raises(IntegrityError, match="MAC"):
            report.verify(model.measurement, b"evil key")

    def test_deployment_scales_with_vantage_points(self):
        model = TEETelemetryModel()
        small = model.deployment_requirements(4)
        large = model.deployment_requirements(400)
        assert small["sgx_machines_required"] == 4
        assert large["sgx_machines_required"] == 400
        assert large["attestation_latency_s"] > \
            small["attestation_latency_s"]
        assert large["in_network_hardware"]

    def test_processing_time_grows_past_epc(self):
        model = TEETelemetryModel()
        in_epc = model.processing_seconds(10_000,
                                          resident_records=1_000)
        paging = model.processing_seconds(
            10_000,
            resident_records=model.spec.working_set_limit_records() + 1)
        assert paging > 10 * in_epc


class TestSignedBaseline:
    def test_sign_and_verify(self):
        baseline = SignedLogBaseline()
        records = [make_record(sport=1000 + i) for i in range(3)]
        window = baseline.sign_window("r1", 0, records)
        assert baseline.verify_window(window) == records

    def test_tamper_detected(self):
        baseline = SignedLogBaseline()
        window = baseline.sign_window("r1", 0, [make_record()])
        import dataclasses
        tampered = dataclasses.replace(
            window,
            blobs=(make_record(packets=1).to_bytes(),))
        with pytest.raises(IntegrityError, match="signature"):
            baseline.verify_window(tampered)

    def test_unknown_router(self):
        baseline = SignedLogBaseline()
        window = baseline.sign_window("r1", 0, [make_record()])
        import dataclasses
        foreign = dataclasses.replace(window, router_id="ghost")
        with pytest.raises(IntegrityError, match="unknown"):
            baseline.verify_window(foreign)

    def test_disclosure_cost_is_full_raw_bytes(self):
        baseline = SignedLogBaseline()
        records = [make_record(sport=i) for i in range(10)]
        window = baseline.sign_window("r1", 0, records)
        assert window.disclosed_bytes == \
            sum(len(r.to_bytes()) for r in records)


class TestComparison:
    def test_zkp_needs_no_in_network_hardware(self):
        rows = {r.name: r for r in compare_approaches(
            num_vantage_points=50, raw_bytes_per_window=1_000_000,
            journal_bytes=60_000)}
        assert rows["zkp (this work)"].in_network_hardware_units == 0
        assert rows["tee (TrustSketch-style)"] \
            .in_network_hardware_units == 50
        assert rows["signed logs"].in_network_hardware_units == 0

    def test_confidentiality_column(self):
        rows = {r.name: r for r in compare_approaches(10, 100, 10)}
        assert rows["zkp (this work)"].confidentiality
        assert not rows["signed logs"].confidentiality

    def test_disclosure_column(self):
        rows = {r.name: r for r in compare_approaches(
            10, raw_bytes_per_window=5_000_000, journal_bytes=50_000)}
        assert rows["signed logs"].verifier_bytes_disclosed == 5_000_000
        assert rows["zkp (this work)"].verifier_bytes_disclosed == 50_000

    def test_zkp_verification_constant_in_vantage_points(self):
        few = {r.name: r for r in compare_approaches(4, 100, 10)}
        many = {r.name: r for r in compare_approaches(400, 100, 10)}
        assert few["zkp (this work)"].verify_seconds == \
            many["zkp (this work)"].verify_seconds
        assert many["tee (TrustSketch-style)"].verify_seconds > \
            few["tee (TrustSketch-style)"].verify_seconds
