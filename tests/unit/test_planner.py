"""Unit tests for the query cost planner."""

import pytest

from repro.core.planner import QueryPlanner
from repro.core.prover_service import ProverService
from repro.errors import QuerySyntaxError
from repro.zkvm.costmodel import CostModel, ProverBackend

from ..conftest import make_committed_records

QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    'SELECT SUM(hop_count) FROM clogs '
    'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"',
    "SELECT COUNT(*), AVG(rtt_avg_us), MAX(packets) FROM clogs "
    "WHERE (packets > 100 OR lost_packets > 0) AND hop_count >= 2",
    "SELECT SUM(octets) FROM clogs GROUP BY src_net16",
]


@pytest.fixture(scope="module")
def service():
    store, bulletin, _n = make_committed_records(400, seed=41)
    svc = ProverService(store, bulletin)
    svc.aggregate_window(0)
    return svc


class TestAccuracy:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_prediction_within_five_percent(self, service, sql):
        estimate = service.estimate_query(sql)
        service.answer_query(sql, use_cache=False)
        actual = service.last_prove_info.stats.total_cycles
        assert estimate.predicted_cycles == \
            pytest.approx(actual, rel=0.05)

    def test_segments_predicted(self, service):
        estimate = service.estimate_query(QUERIES[0])
        service.answer_query(QUERIES[0], use_cache=False)
        assert estimate.predicted_segments == \
            service.last_prove_info.stats.segment_count


class TestOrdering:
    def test_complex_queries_cost_more(self, service):
        simple = service.estimate_query("SELECT COUNT(*) FROM clogs")
        complex_ = service.estimate_query(QUERIES[2])
        assert complex_.predicted_cycles > simple.predicted_cycles

    def test_larger_states_cost_more(self):
        def estimate_at(n):
            store, bulletin, _ = make_committed_records(n, seed=43)
            svc = ProverService(store, bulletin)
            svc.aggregate_window(0)
            return svc.estimate_query(QUERIES[0]).predicted_cycles
        assert estimate_at(600) > 2 * estimate_at(100)


class TestBackendsAndUnits:
    def test_seconds_per_backend(self, service):
        estimate = service.estimate_query(QUERIES[0])
        model = CostModel()
        cpu = estimate.seconds(model, ProverBackend.CPU_ZKVM)
        gpu = estimate.seconds(model, ProverBackend.GPU_ZKVM)
        specialized = estimate.seconds(model,
                                       ProverBackend.SPECIALIZED_HASH)
        assert cpu > gpu
        assert specialized < cpu
        assert estimate.minutes(model) == pytest.approx(cpu / 60)

    def test_modeled_seconds_close_to_metered_model(self, service):
        sql = QUERIES[1]
        estimate = service.estimate_query(sql)
        service.answer_query(sql, use_cache=False)
        model = CostModel()
        predicted = estimate.seconds(model)
        metered = model.prove_seconds(service.last_prove_info.stats)
        assert predicted == pytest.approx(metered, rel=0.10)


class TestEdgeCases:
    def test_invalid_sql_rejected_at_planning(self, service):
        with pytest.raises(QuerySyntaxError):
            service.estimate_query("SELECT nothing FROM clogs")

    def test_empty_state(self):
        from repro.core.clog import CLogState
        planner = QueryPlanner(CLogState(), agg_journal_bytes=0)
        estimate = planner.estimate("SELECT COUNT(*) FROM clogs")
        assert estimate.entries == 0
        assert estimate.predicted_cycles > 0  # fixed overheads remain
