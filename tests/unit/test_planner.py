"""Unit tests for the query cost planner."""

import pytest

from repro.core.planner import QueryPlanner
from repro.core.prover_service import ProverService
from repro.errors import QuerySyntaxError
from repro.zkvm.costmodel import CostModel, ProverBackend

from ..conftest import make_committed_records

QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    'SELECT SUM(hop_count) FROM clogs '
    'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"',
    "SELECT COUNT(*), AVG(rtt_avg_us), MAX(packets) FROM clogs "
    "WHERE (packets > 100 OR lost_packets > 0) AND hop_count >= 2",
    "SELECT SUM(octets) FROM clogs GROUP BY src_net16",
    # High-cardinality GROUP BY: the journal grows one row per distinct
    # key, which the planner must price (it used to charge only for the
    # label list and blow the accuracy budget exactly here).
    "SELECT COUNT(*), SUM(octets), AVG(rtt_avg_us) FROM clogs "
    "GROUP BY src_port",
]


@pytest.fixture(scope="module")
def service():
    store, bulletin, _n = make_committed_records(400, seed=41)
    svc = ProverService(store, bulletin)
    svc.aggregate_window(0)
    return svc


class TestAccuracy:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_prediction_within_five_percent(self, service, sql):
        estimate = service.estimate_query(sql)
        service.answer_query(sql, use_cache=False)
        actual = service.last_prove_info.stats.total_cycles
        assert estimate.predicted_cycles == \
            pytest.approx(actual, rel=0.05)

    def test_segments_predicted(self, service):
        estimate = service.estimate_query(QUERIES[0])
        service.answer_query(QUERIES[0], use_cache=False)
        assert estimate.predicted_segments == \
            service.last_prove_info.stats.segment_count


class TestOrdering:
    def test_complex_queries_cost_more(self, service):
        simple = service.estimate_query("SELECT COUNT(*) FROM clogs")
        complex_ = service.estimate_query(QUERIES[2])
        assert complex_.predicted_cycles > simple.predicted_cycles

    def test_larger_states_cost_more(self):
        def estimate_at(n):
            store, bulletin, _ = make_committed_records(n, seed=43)
            svc = ProverService(store, bulletin)
            svc.aggregate_window(0)
            return svc.estimate_query(QUERIES[0]).predicted_cycles
        assert estimate_at(600) > 2 * estimate_at(100)


class TestBackendsAndUnits:
    def test_seconds_per_backend(self, service):
        estimate = service.estimate_query(QUERIES[0])
        model = CostModel()
        cpu = estimate.seconds(model, ProverBackend.CPU_ZKVM)
        gpu = estimate.seconds(model, ProverBackend.GPU_ZKVM)
        specialized = estimate.seconds(model,
                                       ProverBackend.SPECIALIZED_HASH)
        assert cpu > gpu
        assert specialized < cpu
        assert estimate.minutes(model) == pytest.approx(cpu / 60)

    def test_modeled_seconds_close_to_metered_model(self, service):
        sql = QUERIES[1]
        estimate = service.estimate_query(sql)
        service.answer_query(sql, use_cache=False)
        model = CostModel()
        predicted = estimate.seconds(model)
        metered = model.prove_seconds(service.last_prove_info.stats)
        assert predicted == pytest.approx(metered, rel=0.10)


class TestPartitionedEstimates:
    """The partitioned cost model against metered partition/merge runs."""

    def _planner(self, service):
        journal_bytes = len(service.chain.latest.receipt.journal.data)
        return QueryPlanner(service.state, journal_bytes)

    @pytest.mark.parametrize("sql", [QUERIES[0], QUERIES[2],
                                     QUERIES[4]])
    def test_partitioned_prediction_within_ten_percent(self, service,
                                                       sql):
        from repro.core.query_proof import QueryProver
        from repro.engine import ProvingEngine
        from repro.zkvm import ProverOpts
        estimate = self._planner(service).estimate_partitioned(sql, 4)
        with ProvingEngine(prover_opts=ProverOpts.groth16(),
                           backend="thread", max_workers=2) as engine:
            _, info = QueryProver(engine=engine).prove_query_partitioned(
                sql, service.state, service.chain.latest.receipt, 4)
        assert estimate.num_partitions == info.num_partitions
        assert estimate.chunk_po2 == info.chunk_po2
        for predicted, metered in zip(estimate.partition_estimates,
                                      info.partition_infos):
            assert predicted.predicted_cycles == pytest.approx(
                metered.stats.total_cycles, rel=0.10)
        assert estimate.merge_estimate.predicted_cycles == \
            pytest.approx(info.merge_info.stats.total_cycles, rel=0.10)
        assert estimate.predicted_cycles == pytest.approx(
            info.stats.total_cycles, rel=0.10)

    def test_modeled_latency_relations(self, service):
        estimate = self._planner(service).estimate_partitioned(
            QUERIES[0], 4)
        model = CostModel()
        assert estimate.modeled_seconds(model) < \
            estimate.sequential_seconds(model)
        # At 400 records the scan dominates per-proof overhead, so
        # splitting must be modeled faster than the monolith.
        serial = self._planner(service).estimate(QUERIES[0])
        assert estimate.modeled_seconds(model) < serial.seconds(model)

    def test_choose_strategy_crossover(self, service):
        planner = self._planner(service)
        assert planner.choose_strategy(QUERIES[0], 4) == "partitioned"
        assert planner.choose_strategy(QUERIES[0], None) == "full-scan"
        assert planner.choose_strategy(QUERIES[0], 1) == "full-scan"
        # A handful of entries can never amortize an extra merge proof.
        store, bulletin, _ = make_committed_records(10, seed=47)
        small = ProverService(store, bulletin)
        small.aggregate_window(0)
        tiny = QueryPlanner(
            small.state,
            len(small.chain.latest.receipt.journal.data))
        assert tiny.choose_strategy(QUERIES[0], 4) == "full-scan"


class TestEdgeCases:
    def test_invalid_sql_rejected_at_planning(self, service):
        with pytest.raises(QuerySyntaxError):
            service.estimate_query("SELECT nothing FROM clogs")

    def test_empty_state(self):
        from repro.core.clog import CLogState
        planner = QueryPlanner(CLogState(), agg_journal_bytes=0)
        estimate = planner.estimate("SELECT COUNT(*) FROM clogs")
        assert estimate.entries == 0
        assert estimate.predicted_cycles > 0  # fixed overheads remain
