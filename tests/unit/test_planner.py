"""Unit tests for the query and round cost planners."""

import pytest

from repro.core.planner import (QueryPlanner, RoundPlanner,
                                choose_round_strategy)
from repro.core.prover_service import ProverService
from repro.errors import QuerySyntaxError
from repro.zkvm.costmodel import CostModel, ProverBackend

from ..conftest import make_committed_records, make_record

QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    'SELECT SUM(hop_count) FROM clogs '
    'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"',
    "SELECT COUNT(*), AVG(rtt_avg_us), MAX(packets) FROM clogs "
    "WHERE (packets > 100 OR lost_packets > 0) AND hop_count >= 2",
    "SELECT SUM(octets) FROM clogs GROUP BY src_net16",
    # High-cardinality GROUP BY: the journal grows one row per distinct
    # key, which the planner must price (it used to charge only for the
    # label list and blow the accuracy budget exactly here).
    "SELECT COUNT(*), SUM(octets), AVG(rtt_avg_us) FROM clogs "
    "GROUP BY src_port",
]


@pytest.fixture(scope="module")
def service():
    store, bulletin, _n = make_committed_records(400, seed=41)
    svc = ProverService(store, bulletin)
    svc.aggregate_window(0)
    return svc


class TestAccuracy:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_prediction_within_five_percent(self, service, sql):
        estimate = service.estimate_query(sql)
        service.answer_query(sql, use_cache=False)
        actual = service.last_prove_info.stats.total_cycles
        assert estimate.predicted_cycles == \
            pytest.approx(actual, rel=0.05)

    def test_segments_predicted(self, service):
        estimate = service.estimate_query(QUERIES[0])
        service.answer_query(QUERIES[0], use_cache=False)
        assert estimate.predicted_segments == \
            service.last_prove_info.stats.segment_count


class TestOrdering:
    def test_complex_queries_cost_more(self, service):
        simple = service.estimate_query("SELECT COUNT(*) FROM clogs")
        complex_ = service.estimate_query(QUERIES[2])
        assert complex_.predicted_cycles > simple.predicted_cycles

    def test_larger_states_cost_more(self):
        def estimate_at(n):
            store, bulletin, _ = make_committed_records(n, seed=43)
            svc = ProverService(store, bulletin)
            svc.aggregate_window(0)
            return svc.estimate_query(QUERIES[0]).predicted_cycles
        assert estimate_at(600) > 2 * estimate_at(100)


class TestBackendsAndUnits:
    def test_seconds_per_backend(self, service):
        estimate = service.estimate_query(QUERIES[0])
        model = CostModel()
        cpu = estimate.seconds(model, ProverBackend.CPU_ZKVM)
        gpu = estimate.seconds(model, ProverBackend.GPU_ZKVM)
        specialized = estimate.seconds(model,
                                       ProverBackend.SPECIALIZED_HASH)
        assert cpu > gpu
        assert specialized < cpu
        assert estimate.minutes(model) == pytest.approx(cpu / 60)

    def test_modeled_seconds_close_to_metered_model(self, service):
        sql = QUERIES[1]
        estimate = service.estimate_query(sql)
        service.answer_query(sql, use_cache=False)
        model = CostModel()
        predicted = estimate.seconds(model)
        metered = model.prove_seconds(service.last_prove_info.stats)
        assert predicted == pytest.approx(metered, rel=0.10)


class TestPartitionedEstimates:
    """The partitioned cost model against metered partition/merge runs."""

    def _planner(self, service):
        journal_bytes = len(service.chain.latest.receipt.journal.data)
        return QueryPlanner(service.state, journal_bytes)

    @pytest.mark.parametrize("sql", [QUERIES[0], QUERIES[2],
                                     QUERIES[4]])
    def test_partitioned_prediction_within_ten_percent(self, service,
                                                       sql):
        from repro.core.query_proof import QueryProver
        from repro.engine import ProvingEngine
        from repro.zkvm import ProverOpts
        estimate = self._planner(service).estimate_partitioned(sql, 4)
        with ProvingEngine(prover_opts=ProverOpts.groth16(),
                           backend="thread", max_workers=2) as engine:
            _, info = QueryProver(engine=engine).prove_query_partitioned(
                sql, service.state, service.chain.latest.receipt, 4)
        assert estimate.num_partitions == info.num_partitions
        assert estimate.chunk_po2 == info.chunk_po2
        for predicted, metered in zip(estimate.partition_estimates,
                                      info.partition_infos):
            assert predicted.predicted_cycles == pytest.approx(
                metered.stats.total_cycles, rel=0.10)
        assert estimate.merge_estimate.predicted_cycles == \
            pytest.approx(info.merge_info.stats.total_cycles, rel=0.10)
        assert estimate.predicted_cycles == pytest.approx(
            info.stats.total_cycles, rel=0.10)

    def test_modeled_latency_relations(self, service):
        estimate = self._planner(service).estimate_partitioned(
            QUERIES[0], 4)
        model = CostModel()
        assert estimate.modeled_seconds(model) < \
            estimate.sequential_seconds(model)
        # At 400 records the scan dominates per-proof overhead, so
        # splitting must be modeled faster than the monolith.
        serial = self._planner(service).estimate(QUERIES[0])
        assert estimate.modeled_seconds(model) < serial.seconds(model)

    def test_choose_strategy_crossover(self, service):
        planner = self._planner(service)
        assert planner.choose_strategy(QUERIES[0], 4) == "partitioned"
        assert planner.choose_strategy(QUERIES[0], None) == "full-scan"
        assert planner.choose_strategy(QUERIES[0], 1) == "full-scan"
        # A handful of entries can never amortize an extra merge proof.
        store, bulletin, _ = make_committed_records(10, seed=47)
        small = ProverService(store, bulletin)
        small.aggregate_window(0)
        tiny = QueryPlanner(
            small.state,
            len(small.chain.latest.receipt.journal.data))
        assert tiny.choose_strategy(QUERIES[0], 4) == "full-scan"


class TestEdgeCases:
    def test_invalid_sql_rejected_at_planning(self, service):
        with pytest.raises(QuerySyntaxError):
            service.estimate_query("SELECT nothing FROM clogs")

    def test_empty_state(self):
        from repro.core.clog import CLogState
        planner = QueryPlanner(CLogState(), agg_journal_bytes=0)
        estimate = planner.estimate("SELECT COUNT(*) FROM clogs")
        assert estimate.entries == 0
        assert estimate.predicted_cycles > 0  # fixed overheads remain


def _round_inputs(start, count, window):
    from repro.commitments import window_digest
    from repro.core.aggregation import RouterWindowInput
    blobs = tuple(
        make_record(src=f"10.{(start + i) >> 8 & 255}.{(start + i) & 255}.7",
                    sport=1000 + (start + i) % 5000).to_bytes()
        for i in range(count))
    return [RouterWindowInput("r1", window, window_digest(list(blobs)),
                              blobs)]


class TestRoundPlanner:
    """The round planner's executor-metered estimates against real
    rounds — the ±10% contract `docs/PERFORMANCE.md` advertises."""

    @pytest.fixture(scope="class")
    def round_state(self):
        from repro.core.aggregation import Aggregator
        from repro.core.clog import CLogState
        genesis = Aggregator().aggregate(
            CLogState(), _round_inputs(0, 200, 0), None)
        return genesis.new_state, genesis.receipt

    def _batches(self, n, per_batch=20):
        return [_round_inputs(200 + b * per_batch, per_batch, 1 + b)
                for b in range(n)]

    def test_monolithic_estimate_within_ten_percent(self, round_state):
        from repro.core.aggregation import Aggregator
        state, prev = round_state
        windows = [w for batch in self._batches(3) for w in batch]
        estimate = RoundPlanner().estimate_monolithic(state, windows,
                                                      prev)
        result = Aggregator().aggregate(state.clone(), windows, prev)
        actual = result.info.stats
        assert estimate.records == 60
        assert estimate.predicted_cycles == \
            pytest.approx(actual.total_cycles, rel=0.10)
        assert estimate.predicted_segments == actual.segment_count

    def test_streamed_estimate_within_ten_percent(self, round_state):
        from repro.core.policy import DEFAULT_POLICY
        from repro.engine import ProvingEngine, ReceiptCache
        from repro.stream import StreamingAggregator
        from repro.zkvm import ProverOpts
        state, prev = round_state
        batches = self._batches(3)
        estimate = RoundPlanner().estimate_streamed(state, batches, prev)
        with ProvingEngine(backend="serial",
                           cache=ReceiptCache()) as engine:
            streamer = StreamingAggregator(DEFAULT_POLICY,
                                           ProverOpts.groth16(),
                                           engine=engine)
            for batch in batches:
                streamer.ingest(state, batch, prev)
            result = streamer.close()
        jobs = list(result.info.delta_results) \
            + list(result.info.fold_results)
        assert len(estimate.delta_estimates) == \
            len(result.info.delta_results)
        assert len(estimate.fold_estimates) == \
            len(result.info.fold_results)
        assert estimate.records == 60
        assert estimate.predicted_cycles == pytest.approx(
            sum(job.stats.total_cycles for job in jobs), rel=0.10)

    def test_close_path_is_cheaper_than_total(self, round_state):
        state, prev = round_state
        estimate = RoundPlanner().estimate_streamed(
            state, self._batches(3), prev)
        model = CostModel()
        assert estimate.close_path_seconds(model) < \
            estimate.total_seconds(model)

    def test_crossover(self, round_state):
        state, prev = round_state
        # One batch never amortizes the fold overhead.
        assert choose_round_strategy(
            state, [_round_inputs(200, 32, 1)],
            prev_receipt=prev) == "monolithic"
        # Many batches: the close path (last delta + final folds) beats
        # re-proving the whole round at the boundary.
        many = [_round_inputs(200 + b * 32, 32, 1 + b) for b in range(8)]
        assert choose_round_strategy(
            state, many, prev_receipt=prev) == "streamed"
