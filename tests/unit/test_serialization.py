"""Unit tests for the canonical serialization format."""

import pytest

from repro.errors import SerializationError
from repro.hashing import Digest, sha256
from repro.serialization import decode, decode_stream, encode


class TestRoundTrip:
    @pytest.mark.parametrize("value", [
        None,
        True,
        False,
        0,
        1,
        -1,
        2**70,
        -(2**70),
        b"",
        b"\x00\xff" * 10,
        "",
        "héllo wörld",
        0.0,
        -2.5,
        1e300,
        [],
        [1, "two", b"three", None],
        {"a": 1, "nested": {"b": [True, 2.0]}},
    ])
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_digest_roundtrip(self):
        digest = sha256(b"payload")
        decoded = decode(encode(digest))
        assert isinstance(decoded, Digest)
        assert decoded == digest

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]


class TestDeterminism:
    def test_dict_key_order_irrelevant(self):
        a = {"x": 1, "y": 2, "z": 3}
        b = {"z": 3, "x": 1, "y": 2}
        assert encode(a) == encode(b)

    def test_int_vs_float_distinct(self):
        assert encode(1) != encode(1.0)

    def test_bytes_vs_str_distinct(self):
        assert encode(b"ab") != encode("ab")

    def test_bool_vs_int_distinct(self):
        assert encode(True) != encode(1)
        assert decode(encode(True)) is True


class TestRejections:
    def test_non_string_dict_keys(self):
        with pytest.raises(SerializationError):
            encode({1: "x"})

    def test_unsupported_type(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_trailing_garbage(self):
        with pytest.raises(SerializationError):
            decode(encode(1) + b"\x00")

    def test_truncated_input(self):
        data = encode([1, 2, 3])
        with pytest.raises(SerializationError):
            decode(data[:-1])

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode(b"\xfe")

    def test_noncanonical_dict_order_rejected(self):
        # Hand-craft a dict encoding with keys out of order.
        good = encode({"a": 1, "b": 2})
        a_entry = encode("a") + encode(1)
        b_entry = encode("b") + encode(2)
        swapped = good[:2] + b_entry + a_entry
        with pytest.raises(SerializationError):
            decode(swapped)

    def test_duplicate_dict_keys_rejected(self):
        good = encode({"a": 1})
        a_entry = encode("a") + encode(1)
        duplicated = good[0:1] + bytes([2]) + a_entry + a_entry
        with pytest.raises(SerializationError):
            decode(duplicated)

    def test_invalid_utf8_rejected(self):
        bad = bytes([0x05, 0x01, 0xff])  # str, len 1, invalid byte
        with pytest.raises(SerializationError):
            decode(bad)


class TestStream:
    def test_decode_stream(self):
        data = encode(1) + encode("two") + encode([3])
        assert list(decode_stream(data)) == [1, "two", [3]]

    def test_empty_stream(self):
        assert list(decode_stream(b"")) == []
