"""Unit tests for the exporter/collector pair."""

import pytest

from repro.errors import ConfigurationError
from repro.netflow import NetFlowCollector, NetFlowExporter
from repro.netflow.packet import decode_packet

from ..conftest import make_record


def records(n: int):
    return [make_record(sport=1000 + i, packets=10 + i)
            for i in range(n)]


class TestExporter:
    def test_template_announced_on_first_packet(self):
        exporter = NetFlowExporter(source_id=1)
        packets = exporter.export(records(2))
        _, flowsets = decode_packet(packets[0])
        assert flowsets[0].is_template
        assert flowsets[1].is_data

    def test_template_refresh_cycle(self):
        exporter = NetFlowExporter(source_id=1, template_refresh=3)
        template_counts = 0
        for _ in range(7):
            for packet in exporter.export(records(1)):
                _, flowsets = decode_packet(packet)
                template_counts += sum(f.is_template for f in flowsets)
        assert template_counts == 3  # packets 1, 4, 7

    def test_batching_respects_max_records(self):
        exporter = NetFlowExporter(source_id=1, max_records_per_packet=5)
        packets = exporter.export(records(12))
        assert len(packets) == 3

    def test_sequence_increments_per_packet(self):
        exporter = NetFlowExporter(source_id=1, max_records_per_packet=2)
        exporter.export(records(6))
        assert exporter.sequence == 3

    def test_empty_batch_still_emits_packet(self):
        exporter = NetFlowExporter(source_id=1)
        packets = exporter.export([])
        assert len(packets) == 1  # template-only packet

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            NetFlowExporter(source_id=1, template_refresh=0)
        with pytest.raises(ConfigurationError):
            NetFlowExporter(source_id=1, max_records_per_packet=0)


class TestCollector:
    def test_end_to_end_roundtrip(self):
        original = records(25)
        exporter = NetFlowExporter(source_id=9,
                                   max_records_per_packet=10)
        collector = NetFlowCollector()
        received = []
        for packet in exporter.export(original):
            received.extend(collector.ingest(packet, router_id="r1"))
        assert len(received) == len(original)
        for sent, got in zip(original, received):
            assert got.key == sent.key
            assert got.packets == sent.packets
            assert got.router_id == "r1"

    def test_data_before_template_is_buffered(self):
        exporter = NetFlowExporter(source_id=9)
        packets = exporter.export(records(3))
        # Split the template+data packet: feed a data-only replay first.
        from repro.netflow.packet import (FlowSet, PacketHeader,
                                          encode_packet)
        _, flowsets = decode_packet(packets[0])
        data_only = encode_packet(
            PacketHeader(count=3, sys_uptime_ms=0, unix_secs=0,
                         sequence=0, source_id=9),
            [f for f in flowsets if f.is_data])
        template_only = encode_packet(
            PacketHeader(count=1, sys_uptime_ms=0, unix_secs=0,
                         sequence=1, source_id=9),
            [f for f in flowsets if f.is_template])
        collector = NetFlowCollector()
        assert collector.ingest(data_only) == []
        assert collector.stats.buffered_flowsets == 1
        drained = collector.ingest(template_only)
        assert len(drained) == 3

    def test_sequence_gap_detection(self):
        exporter = NetFlowExporter(source_id=9,
                                   max_records_per_packet=1)
        packets = exporter.export(records(4))
        collector = NetFlowCollector()
        collector.ingest(packets[0])
        collector.ingest(packets[1])
        collector.ingest(packets[3])  # skip one
        assert collector.stats.sequence_gaps == 1

    def test_sources_have_independent_templates(self):
        exporter_a = NetFlowExporter(source_id=1)
        exporter_b = NetFlowExporter(source_id=2)
        collector = NetFlowCollector()
        got_a = []
        for packet in exporter_a.export(records(2)):
            got_a.extend(collector.ingest(packet, router_id="a"))
        assert len(got_a) == 2
        # Source 2's data can't parse with source 1's template.
        from repro.netflow.packet import (FlowSet, PacketHeader,
                                          encode_packet)
        _, flowsets = decode_packet(exporter_b.export(records(2))[0])
        data_only = encode_packet(
            PacketHeader(count=2, sys_uptime_ms=0, unix_secs=0,
                         sequence=0, source_id=2),
            [f for f in flowsets if f.is_data])
        fresh = NetFlowCollector()
        assert fresh.ingest(data_only) == []

    def test_stats_counters(self):
        exporter = NetFlowExporter(source_id=9)
        collector = NetFlowCollector()
        for packet in exporter.export(records(5)):
            collector.ingest(packet)
        assert collector.stats.packets >= 1
        assert collector.stats.records == 5
        assert collector.stats.templates_learned == 1
