"""Unit tests for the client-side verifier."""

import dataclasses

import pytest

from repro.errors import (
    ChainError,
    MissingCommitment,
    VerificationError,
)
from repro.zkvm.receipt import Journal, Receipt


class TestAggregationVerification:
    def test_chain_verifies(self, aggregated_system):
        system = aggregated_system
        receipts = system.prover.chain.receipts()
        verified = system.verifier.verify_chain(receipts)
        assert len(verified) == len(receipts)
        assert verified[0].round == 0
        for prev, current in zip(verified, verified[1:]):
            assert current.prev_root == prev.new_root

    def test_empty_chain_rejected(self, aggregated_system):
        with pytest.raises(ChainError, match="empty"):
            aggregated_system.verifier.verify_chain([])

    def test_round_zero_needed_first(self, aggregated_system):
        receipts = aggregated_system.prover.chain.receipts()
        if len(receipts) < 2:
            pytest.skip("need two rounds")
        with pytest.raises(ChainError):
            aggregated_system.verifier.verify_chain(receipts[1:])

    def test_unpublished_commitment_rejected(self, aggregated_system):
        """A prover claiming a window no router published is caught."""
        from repro.commitments import BulletinBoard
        from repro.core.verifier_client import VerifierClient
        isolated = VerifierClient(BulletinBoard())  # empty board
        receipts = aggregated_system.prover.chain.receipts()
        with pytest.raises(MissingCommitment):
            isolated.verify_chain(receipts)

    def test_journal_window_mismatch_rejected(self, aggregated_system):
        """Journal claiming different commitments than published."""
        system = aggregated_system
        receipt = system.prover.chain.receipts()[0]
        values = receipt.journal.decode()
        from repro.hashing import sha256
        values[0] = dict(values[0])
        values[0]["windows"] = [
            {**w, "c": sha256(b"forged")} for w in values[0]["windows"]]
        from repro.serialization import encode
        forged_journal = Journal(b"".join(encode(v) for v in values))
        forged = Receipt(inner=receipt.inner, journal=forged_journal,
                         claim=receipt.claim)
        # Seal breaks first (journal digest no longer matches claim).
        with pytest.raises(VerificationError):
            system.verifier.verify_aggregation(forged, None)

    def test_replayed_window_rejected_across_chain(self,
                                                   aggregated_system):
        """Aggregating the same committed window twice (double
        counting) is rejected by chain verification."""
        system = aggregated_system
        receipts = system.prover.chain.receipts()
        # Forge a chain where round 1 is replaced by a replay of the
        # same windows — simplest check: duplicate detection logic.
        verified = system.verifier.verify_chain(receipts)
        seen = set()
        for v in verified:
            assert not (seen & set(v.windows))
            seen.update(v.windows)


class TestQueryVerification:
    def test_query_verifies(self, aggregated_system):
        system = aggregated_system
        response = system.prover.answer_query(
            "SELECT COUNT(*) FROM clogs")
        chain = system.verifier.verify_chain(
            system.prover.chain.receipts())
        verified = system.verifier.verify_query(response, chain[-1])
        assert verified.values == response.values
        assert verified.root == chain[-1].new_root

    def test_stale_aggregation_round_rejected(self, aggregated_system):
        system = aggregated_system
        chain = system.verifier.verify_chain(
            system.prover.chain.receipts())
        if len(chain) < 2:
            pytest.skip("need two rounds")
        response = system.prover.answer_query(
            "SELECT COUNT(*) FROM clogs")
        with pytest.raises(VerificationError, match="root|round"):
            system.verifier.verify_query(response, chain[0])

    def test_response_value_mismatch_rejected(self, aggregated_system):
        system = aggregated_system
        response = system.prover.answer_query(
            "SELECT SUM(lost_packets) FROM clogs")
        chain = system.verifier.verify_chain(
            system.prover.chain.receipts())
        lying = dataclasses.replace(
            response, values=(999_999,))
        with pytest.raises(VerificationError, match="values"):
            system.verifier.verify_query(lying, chain[-1])

    def test_sql_mismatch_rejected(self, aggregated_system):
        system = aggregated_system
        response = system.prover.answer_query(
            "SELECT COUNT(*) FROM clogs")
        chain = system.verifier.verify_chain(
            system.prover.chain.receipts())
        lying = dataclasses.replace(
            response, sql="SELECT SUM(lost_packets) FROM clogs")
        with pytest.raises(VerificationError, match="query text"):
            system.verifier.verify_query(lying, chain[-1])
