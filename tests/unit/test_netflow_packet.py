"""Unit tests for the NetFlow v9 packet format."""

import pytest

from repro.errors import SerializationError
from repro.netflow.packet import (
    FlowSet,
    HEADER_LEN,
    PacketHeader,
    decode_packet,
    encode_packet,
)


def header(**overrides) -> PacketHeader:
    defaults = dict(count=1, sys_uptime_ms=1000, unix_secs=1234,
                    sequence=7, source_id=42)
    defaults.update(overrides)
    return PacketHeader(**defaults)


class TestHeader:
    def test_roundtrip(self):
        h = header()
        assert PacketHeader.decode(h.encode()) == h

    def test_length(self):
        assert len(header().encode()) == HEADER_LEN == 20

    def test_version_enforced(self):
        data = bytearray(header().encode())
        data[0:2] = (5).to_bytes(2, "big")  # NetFlow v5
        with pytest.raises(SerializationError, match="version 5"):
            PacketHeader.decode(bytes(data))

    def test_short_packet_rejected(self):
        with pytest.raises(SerializationError):
            PacketHeader.decode(b"\x00" * 10)

    def test_field_wraparound(self):
        h = header(sequence=2**33)
        assert PacketHeader.decode(h.encode()).sequence == 2**33 % 2**32


class TestFlowSets:
    def test_roundtrip_multiple_flowsets(self):
        flowsets = [FlowSet(flowset_id=0, body=b"template-ish"),
                    FlowSet(flowset_id=300, body=b"data" * 5)]
        packet = encode_packet(header(), flowsets)
        decoded_header, decoded = decode_packet(packet)
        assert decoded_header == header()
        assert len(decoded) == 2
        assert decoded[0].flowset_id == 0
        assert decoded[0].is_template
        assert decoded[1].flowset_id == 300
        assert decoded[1].is_data
        # Bodies survive modulo alignment padding.
        assert decoded[0].body.rstrip(b"\x00") == b"template-ish"
        assert decoded[1].body == b"data" * 5

    def test_four_byte_alignment(self):
        packet = encode_packet(header(), [FlowSet(0, b"abc")])
        assert (len(packet) - HEADER_LEN) % 4 == 0

    def test_empty_flowset_list(self):
        packet = encode_packet(header(count=0), [])
        _, flowsets = decode_packet(packet)
        assert flowsets == []

    def test_truncated_flowset_rejected(self):
        packet = encode_packet(header(), [FlowSet(300, b"data" * 4)])
        with pytest.raises(SerializationError):
            decode_packet(packet[:-4])

    def test_bad_flowset_length_rejected(self):
        import struct
        bad = header().encode() + struct.pack(">HH", 300, 2)
        with pytest.raises(SerializationError, match="too small"):
            decode_packet(bad)

    def test_length_past_end_rejected(self):
        import struct
        bad = header().encode() + struct.pack(">HH", 300, 100) + b"x" * 8
        with pytest.raises(SerializationError, match="past packet end"):
            decode_packet(bad)
