"""Unit tests for receipt verification — every tamper surface."""

import dataclasses

import pytest

from repro.errors import (
    ImageIdMismatch,
    JournalMismatch,
    SealError,
    VerificationError,
)
from repro.zkvm import (
    ExecutorEnvBuilder,
    Prover,
    ProverOpts,
    Receipt,
    ReceiptKind,
    Verifier,
    guest_program,
    verify_receipt,
)
from repro.zkvm.receipt import Journal
from repro.zkvm.verifier import MODELED_VERIFY_SECONDS


@guest_program("honest")
def honest_guest(env):
    env.commit(env.read() * 2)


@guest_program("other")
def other_guest(env):
    env.commit(0)


def make_receipt(kind=ReceiptKind.GROTH16, value=21) -> Receipt:
    return Prover(ProverOpts(kind=kind)).prove(
        honest_guest, ExecutorEnvBuilder().write(value).build()).receipt


class TestHappyPath:
    @pytest.mark.parametrize("kind", list(ReceiptKind))
    def test_all_kinds_verify(self, kind):
        receipt = make_receipt(kind)
        verified = verify_receipt(receipt, honest_guest.image_id)
        assert verified.journal.decode_one() == 42
        assert verified.image_id == honest_guest.image_id

    def test_modeled_verify_time_constant(self):
        small = verify_receipt(make_receipt(value=1),
                               honest_guest.image_id)
        large = verify_receipt(make_receipt(value=10**50),
                               honest_guest.image_id)
        assert small.modeled_seconds == large.modeled_seconds == \
            MODELED_VERIFY_SECONDS


class TestRejections:
    def test_wrong_image_id(self):
        receipt = make_receipt()
        with pytest.raises(ImageIdMismatch):
            verify_receipt(receipt, other_guest.image_id)

    def test_tampered_journal(self):
        receipt = make_receipt()
        from repro.serialization import encode
        forged = Receipt(inner=receipt.inner,
                         journal=Journal(encode(999)),
                         claim=receipt.claim)
        with pytest.raises(JournalMismatch):
            verify_receipt(forged, honest_guest.image_id)

    def test_tampered_claim_breaks_seal(self):
        receipt = make_receipt()
        # Claim a different cycle count; journal digest still matches,
        # but the seal was derived for the original claim.
        forged_claim = dataclasses.replace(receipt.claim,
                                           total_cycles=1)
        forged = Receipt(inner=receipt.inner, journal=receipt.journal,
                         claim=forged_claim)
        with pytest.raises(SealError):
            verify_receipt(forged, honest_guest.image_id)

    def test_seal_swap_between_receipts(self):
        a = make_receipt(value=1)
        b = make_receipt(value=2)
        forged = Receipt(inner=b.inner, journal=a.journal, claim=a.claim)
        with pytest.raises(SealError):
            verify_receipt(forged, honest_guest.image_id)

    @pytest.mark.parametrize("kind", [ReceiptKind.SUCCINCT,
                                      ReceiptKind.GROTH16])
    def test_bitflipped_seal(self, kind):
        receipt = make_receipt(kind)
        seal = bytearray(receipt.inner.seal)
        seal[10] ^= 0x01
        forged_inner = type(receipt.inner)(seal=bytes(seal))
        forged = Receipt(inner=forged_inner, journal=receipt.journal,
                         claim=receipt.claim)
        with pytest.raises(SealError):
            verify_receipt(forged, honest_guest.image_id)


class TestComposite:
    def test_segment_tamper_detected(self):
        receipt = make_receipt(ReceiptKind.COMPOSITE)
        inner = receipt.inner
        bad_segment = dataclasses.replace(inner.segments[0],
                                          cycle_count=123)
        forged_inner = dataclasses.replace(
            inner, segments=(bad_segment, *inner.segments[1:]))
        forged = Receipt(inner=forged_inner, journal=receipt.journal,
                         claim=receipt.claim)
        with pytest.raises(SealError):
            verify_receipt(forged, honest_guest.image_id)

    def test_trace_root_tamper_detected(self):
        from repro.hashing import sha256
        receipt = make_receipt(ReceiptKind.COMPOSITE)
        forged_inner = dataclasses.replace(receipt.inner,
                                           trace_root=sha256(b"evil"))
        forged = Receipt(inner=forged_inner, journal=receipt.journal,
                         claim=receipt.claim)
        with pytest.raises(SealError):
            verify_receipt(forged, honest_guest.image_id)

    def test_modeled_time_scales_with_segments(self):
        receipt = make_receipt(ReceiptKind.COMPOSITE)
        verified = Verifier().verify(receipt, honest_guest.image_id)
        assert verified.modeled_seconds == \
            MODELED_VERIFY_SECONDS * receipt.claim.segment_count


class TestConditional:
    def test_unresolved_assumptions_rejected(self):
        @guest_program("assumer")
        def assumer_guest(env):
            from repro.hashing import sha256
            env.verify(sha256(b"img"), sha256(b"claim"))
            env.commit("ok")

        info = Prover(ProverOpts.succinct()).prove(
            assumer_guest, ExecutorEnvBuilder().build())
        with pytest.raises(VerificationError, match="conditional"):
            verify_receipt(info.receipt, assumer_guest.image_id)
        # verify_conditional allows it.
        verified = Verifier().verify_conditional(
            info.receipt, assumer_guest.image_id)
        assert verified.claim.assumptions
