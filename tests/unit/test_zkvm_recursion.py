"""Unit tests for compression and assumption resolution."""

import pytest

from repro.errors import ChainError, ProofError
from repro.hashing import sha256
from repro.zkvm import (
    ExecutorEnvBuilder,
    Prover,
    ProverOpts,
    ReceiptKind,
    guest_program,
    verify_receipt,
)
from repro.zkvm.recursion import compress, resolve, resolve_all


@guest_program("base-program")
def base_guest(env):
    env.commit(env.read())


@guest_program("chained-program")
def chained_guest(env):
    image_id = env.read()
    claim_digest = env.read()
    env.verify(image_id, claim_digest)
    env.commit("depends")


def prove_base(value=7, kind=ReceiptKind.GROTH16):
    return Prover(ProverOpts(kind=kind)).prove(
        base_guest, ExecutorEnvBuilder().write(value).build()).receipt


def prove_chained(base_receipt, kind=ReceiptKind.SUCCINCT):
    env_input = (ExecutorEnvBuilder()
                 .write(base_receipt.claim.image_id)
                 .write(base_receipt.claim.digest())
                 .build())
    return Prover(ProverOpts(kind=kind)).prove(
        chained_guest, env_input).receipt


class TestCompress:
    def test_composite_to_succinct_to_groth16(self):
        composite = prove_base(kind=ReceiptKind.COMPOSITE)
        succinct = compress(composite, ReceiptKind.SUCCINCT)
        groth16 = compress(succinct, ReceiptKind.GROTH16)
        assert succinct.kind is ReceiptKind.SUCCINCT
        assert groth16.kind is ReceiptKind.GROTH16
        assert groth16.claim_digest == composite.claim_digest
        verify_receipt(groth16, base_guest.image_id)

    def test_compress_is_idempotent_at_same_kind(self):
        receipt = prove_base(kind=ReceiptKind.SUCCINCT)
        assert compress(receipt, ReceiptKind.SUCCINCT) is receipt

    def test_cannot_decompress(self):
        groth16 = prove_base(kind=ReceiptKind.GROTH16)
        with pytest.raises(ProofError):
            compress(groth16, ReceiptKind.COMPOSITE)
        with pytest.raises(ProofError):
            compress(groth16, ReceiptKind.SUCCINCT)


class TestResolve:
    def test_resolution_yields_unconditional_receipt(self):
        base = prove_base()
        conditional = prove_chained(base)
        assert conditional.claim.assumptions
        resolved = resolve(conditional, base)
        assert not resolved.claim.assumptions
        verify_receipt(resolved, chained_guest.image_id)
        assert resolved.journal == conditional.journal

    def test_wrong_receipt_breaks_chain(self):
        base = prove_base(value=7)
        unrelated = prove_base(value=8)
        conditional = prove_chained(base)
        with pytest.raises(ChainError, match="chain is broken"):
            resolve(conditional, unrelated)

    def test_resolving_unconditional_fails(self):
        base = prove_base()
        with pytest.raises(ChainError, match="no assumptions"):
            resolve(base, base)

    def test_composite_must_compress_first(self):
        base = prove_base()
        conditional = prove_chained(base, kind=ReceiptKind.COMPOSITE)
        with pytest.raises(ProofError, match="compress"):
            resolve(conditional, base)

    def test_assumption_receipt_must_itself_verify(self):
        import dataclasses
        base = prove_base()
        conditional = prove_chained(base)
        forged_claim = dataclasses.replace(base.claim, total_cycles=1)
        from repro.zkvm.receipt import Receipt
        forged = Receipt(inner=base.inner, journal=base.journal,
                         claim=forged_claim)
        with pytest.raises(Exception):
            resolve(conditional, forged)


class TestResolveAll:
    def test_multiple_assumptions(self):
        @guest_program("double-chained")
        def double_guest(env):
            for _ in range(2):
                env.verify(env.read(), env.read())
            env.commit("ok")

        a = prove_base(value=1)
        b = prove_base(value=2)
        env_input = (ExecutorEnvBuilder()
                     .write(a.claim.image_id).write(a.claim.digest())
                     .write(b.claim.image_id).write(b.claim.digest())
                     .build())
        conditional = Prover(ProverOpts.succinct()).prove(
            double_guest, env_input).receipt
        resolved = resolve_all(conditional, [b, a])  # any order
        assert not resolved.claim.assumptions
        verify_receipt(resolved, double_guest.image_id)

    def test_incomplete_resolution_raises(self):
        base = prove_base()
        conditional = prove_chained(base)
        with pytest.raises(ChainError):
            resolve_all(conditional, [])


class TestAssumptionBinding:
    def test_forged_claim_digest_never_resolves(self):
        """A guest assuming a made-up claim can never get an
        unconditional receipt — the chain enforcement of §4.1."""
        conditional_input = (ExecutorEnvBuilder()
                             .write(sha256(b"fake image"))
                             .write(sha256(b"fake claim"))
                             .build())
        conditional = Prover(ProverOpts.succinct()).prove(
            chained_guest, conditional_input).receipt
        real = prove_base()
        with pytest.raises(ChainError):
            resolve(conditional, real)
