"""Wire-level fault injection: the ``net.frame`` site (repro.faults.wire).

Frame faults are *behaviours*, not exceptions: the injector schedules
an action (drop/delay/corrupt/disconnect), the transport performs it
for real, and the code under test sees only organic consequences —
timeouts, resets, decode failures.  These tests pin the helper
contract, the deterministic replay guarantee under REPRO_FAULT_SEED,
and the corrupt-frame handling on both halves of the worker protocol
(client corrupts → server rejects; server corrupts → client rejects).
"""

import socket
import time

import pytest

from repro.cluster import WorkerClient, WorkerServer
from repro.core.guest_programs import register_guest
from repro.engine import ProofJob
from repro.errors import (
    ConfigurationError,
    ConnectionFailed,
    FrameFault,
    NetworkError,
    ProtocolError,
    ReproError,
    RequestTimeout,
    SerializationError,
)
from repro.faults import (
    FRAME_ACTIONS,
    NET_FRAME,
    FaultInjector,
    FaultPlan,
    corrupt_payload,
    frame_action,
)
from repro.net.framing import HEADER_SIZE, encode_frame
from repro.net.messages import Envelope, request
from repro.zkvm import ExecutorEnvBuilder, GuestProgram


def _echo_fn(env):
    env.commit({"echo": env.read()})


echo_guest = register_guest(GuestProgram(_echo_fn, name="wire/echo"))


def echo_job(value="x"):
    builder = ExecutorEnvBuilder()
    builder.write(value)
    return ProofJob.from_parts(echo_guest, builder.build())


def injector(plan_text, seed=0):
    return FaultInjector(FaultPlan.parse(plan_text, seed=seed))


# -- the helper contract -----------------------------------------------------


class TestFrameActionHelper:
    def test_none_injector_is_inert(self):
        assert frame_action(None) is None

    def test_no_scheduled_fault_returns_none(self):
        assert frame_action(FaultInjector(None)) is None

    @pytest.mark.parametrize("action", sorted(FRAME_ACTIONS))
    def test_each_action_translates(self, action):
        inj = injector(f"net.frame:{action}:count=1")
        assert frame_action(inj) == action
        assert frame_action(inj) is None  # count exhausted

    def test_unknown_action_is_a_config_error(self):
        class Bogus:
            def fire(self, site):
                raise FrameFault("teleport")

        with pytest.raises(ConfigurationError):
            frame_action(Bogus())

    def test_non_frame_faults_propagate(self):
        inj = injector("net.frame:storage:count=1")
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            frame_action(inj)

    def test_frame_fault_is_a_network_error(self):
        assert issubclass(FrameFault, NetworkError)
        assert FrameFault("drop").action == "drop"


class TestCorruptPayload:
    def test_flips_the_leading_byte_only(self):
        payload = b"\x01rest-of-envelope"
        mangled = corrupt_payload(payload)
        assert mangled != payload
        assert len(mangled) == len(payload)
        assert mangled[0] == payload[0] ^ 0xFF
        assert mangled[1:] == payload[1:]

    def test_empty_payload_still_corrupts(self):
        assert corrupt_payload(b"") == b"\xff"

    def test_corrupted_envelope_fails_decode(self):
        data = request(1, "work-health").to_bytes()
        with pytest.raises(ReproError):
            Envelope.from_bytes(corrupt_payload(data))


# -- determinism under REPRO_FAULT_SEED --------------------------------------


class TestDeterminism:
    def schedule(self, seed, n=64):
        inj = FaultInjector.from_env({
            "REPRO_FAULTS": "net.frame:drop:p=0.5",
            "REPRO_FAULT_SEED": str(seed)})
        return tuple(frame_action(inj) for _ in range(n))

    def test_same_seed_replays_bit_for_bit(self):
        assert self.schedule(1) == self.schedule(1)

    def test_different_seeds_differ(self):
        assert self.schedule(0) != self.schedule(1)

    def test_reset_replays_the_same_schedule(self):
        inj = injector("net.frame:corrupt:p=0.5", seed=3)
        first = tuple(frame_action(inj) for _ in range(64))
        inj.reset()
        assert tuple(frame_action(inj) for _ in range(64)) == first


# -- client-side faults against a live worker --------------------------------


class TestClientSideFaults:
    @pytest.fixture
    def worker(self):
        with WorkerServer() as server:
            yield server

    def client(self, server, plan=None, timeout=5.0, seed=0):
        inj = injector(plan, seed=seed) if plan else None
        return WorkerClient(server.endpoint, timeout=timeout,
                            fault_injector=inj)

    def test_corrupt_request_rejected_by_server(self, worker):
        """Client corrupts its own request; the worker must answer with
        a typed error envelope (and the next request must succeed)."""
        with self.client(worker, "net.frame:corrupt:count=1") as client:
            with pytest.raises(ReproError) as err:
                client.probe()
            assert not isinstance(err.value, ProtocolError) or \
                "accepted a corrupted frame" not in str(err.value)
            assert client.probe()["status"] == "ok"

    def test_dropped_request_times_out(self, worker):
        with self.client(worker, "net.frame:drop:count=1",
                         timeout=0.3) as client:
            with pytest.raises(RequestTimeout):
                client.probe()
            assert client.probe()["status"] == "ok"

    def test_delayed_request_still_succeeds(self, worker):
        from repro.faults.wire import DELAY_SECONDS
        with self.client(worker, "net.frame:delay:count=1") as client:
            start = time.monotonic()
            assert client.probe()["status"] == "ok"
            assert time.monotonic() - start >= DELAY_SECONDS

    def test_disconnect_surfaces_connection_failed(self, worker):
        with self.client(worker, "net.frame:disconnect:count=1") as client:
            with pytest.raises(ConnectionFailed):
                client.probe()
            assert client.probe()["status"] == "ok"

    def test_raw_garbage_header_gets_error_then_hangup(self, worker):
        """The server half of the corrupt-frame contract: unframeable
        bytes earn one typed error envelope, then the connection dies
        (no frame boundary is left to resynchronize on)."""
        host, port = worker.host, worker.port
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"XX\x01\x00\x00\x00\x00")  # bad magic
            from repro.net.framing import read_frame_from
            reply = Envelope.from_bytes(
                read_frame_from(sock.recv))
            assert reply.type == "err"
            assert sock.recv(1) == b""  # hangup after the report

    def test_well_framed_garbage_payload_reports_and_hangs_up(self,
                                                              worker):
        host, port = worker.host, worker.port
        envelope = request(7, "work-health").to_bytes()
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(encode_frame(corrupt_payload(envelope)))
            from repro.net.framing import read_frame_from
            reply = Envelope.from_bytes(read_frame_from(sock.recv))
            assert reply.type == "err"


# -- server-side faults ------------------------------------------------------


class TestServerSideFaults:
    def test_corrupt_response_rejected_by_client(self):
        with WorkerServer(
                injector=injector("net.frame:corrupt:count=1")) as server:
            with WorkerClient(server.endpoint, timeout=5.0) as client:
                with pytest.raises(ReproError):
                    client.probe()
                assert client.probe()["status"] == "ok"

    def test_dropped_response_times_out(self):
        with WorkerServer(
                injector=injector("net.frame:drop:count=1")) as server:
            with WorkerClient(server.endpoint, timeout=0.3) as client:
                with pytest.raises(RequestTimeout):
                    client.probe()
            with WorkerClient(server.endpoint, timeout=5.0) as client:
                assert client.probe()["status"] == "ok"

    def test_disconnect_drops_the_connection(self):
        with WorkerServer(
                injector=injector(
                    "net.frame:disconnect:count=1")) as server:
            with WorkerClient(server.endpoint, timeout=0.5) as client:
                with pytest.raises((ConnectionFailed, RequestTimeout,
                                    ReproError)):
                    client.probe()
            with WorkerClient(server.endpoint, timeout=5.0) as client:
                assert client.probe()["status"] == "ok"

    def test_faults_do_not_poison_proving(self):
        """A worker under a transient frame-fault storm still proves
        correctly once frames flow again."""
        from repro.engine import JobResult, execute_job
        with WorkerServer(
                injector=injector("net.frame:corrupt:count=2")) as server:
            client = WorkerClient(server.endpoint, timeout=5.0)
            try:
                for attempt in range(8):
                    try:
                        client.submit_job(echo_job("storm"),
                                          "lease-storm", 60_000)
                        break
                    except ReproError:
                        continue
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    try:
                        reply = client.poll_result("lease-storm")
                    except ReproError:
                        continue
                    if reply["state"] == "done":
                        break
                    time.sleep(0.01)
                else:
                    raise AssertionError("never finished")
                result = JobResult.from_wire(reply["result"])
            finally:
                client.close()
        assert result.receipt.to_json_bytes() == \
            execute_job(echo_job("storm")).receipt.to_json_bytes()
