"""Unit tests for the proving engine: jobs, cache, pool, scheduler.

The engine's core promise is that *where* a proof runs (serial, thread
pool, process pool, or cache replay) never changes *what* it proves:
receipts must be byte-identical across every execution path.  Most
tests here pin that promise down; the rest cover the operational
machinery — LRU + persistent cache tiers, pool lifecycle, worker-crash
recovery, and the multi-round work-queue scheduler.
"""

import os

import pytest

from repro.commitments import window_digest
from repro.core.aggregation import RouterWindowInput
from repro.core.guest_programs import (
    aggregation_guest,
    query_guest,
    register_guest,
    resolve_guest,
)
from repro.engine import (
    BACKENDS,
    JobResult,
    PooledProver,
    ProofJob,
    ProverPool,
    ProvingEngine,
    ReceiptCache,
    execute_job,
    partition_windows,
    resolve_pool_config,
    run_job_wire,
)
from repro.engine.jobs import encode_job
from repro.errors import (
    ConfigurationError,
    ProofError,
    SerializationError,
    StorageError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.hashing import sha256
from repro.obs.metrics import MetricsRegistry
from repro.serialization import decode, encode
from repro.storage import MemoryLogStore
from repro.zkvm import ExecutorEnvBuilder, GuestProgram, Prover, ProverOpts

from ..conftest import make_record


# -- a tiny deterministic guest for pool-level tests ------------------------

def _echo_guest_fn(env):
    value = env.read()
    env.tick(100)
    env.commit({"echo": value})


echo_guest = register_guest(GuestProgram(_echo_guest_fn,
                                         name="test/echo"))


def _crash_guest_fn(env):
    import os as _os
    _os._exit(13)  # simulates a worker process dying mid-proof


crash_guest = register_guest(GuestProgram(_crash_guest_fn,
                                          name="test/crash"))


def echo_job(value="hello", **opts):
    builder = ExecutorEnvBuilder()
    builder.write(value)
    return ProofJob.from_parts(echo_guest, builder.build(),
                               ProverOpts(**opts) if opts else None)


def router_inputs(n_routers=2, rows=2):
    inputs = []
    for i in range(1, n_routers + 1):
        records = [make_record(router_id=f"r{i}", sport=2000 + j)
                   for j in range(rows)]
        blobs = tuple(r.to_bytes() for r in records)
        inputs.append(RouterWindowInput(
            router_id=f"r{i}", window_index=0,
            commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


class TestProofJob:
    def test_from_parts_captures_frames_and_opts(self):
        builder = ExecutorEnvBuilder()
        builder.write({"a": 1})
        env = builder.build()
        from repro.zkvm.receipt import ReceiptKind
        job = ProofJob.from_parts(
            echo_guest, env,
            ProverOpts(kind=ReceiptKind.SUCCINCT, num_queries=32))
        assert job.guest_id == "test/echo"
        assert job.frames == tuple(env.frames)
        assert job.kind == "succinct"
        assert job.num_queries == 32
        assert job.env_commitment == env.digest

    def test_wire_round_trip(self):
        job = echo_job("payload")
        restored = ProofJob.from_wire(decode(encode(job.to_wire())))
        assert restored == job

    def test_malformed_wire_raises(self):
        with pytest.raises(SerializationError):
            ProofJob.from_wire({"guest_id": "x"})

    def test_opts_digest_ignores_pool_knobs(self):
        """pool_backend / prove_workers shape *scheduling*, not the
        statement — two jobs differing only in those knobs must share a
        cache identity."""
        builder = ExecutorEnvBuilder()
        builder.write("v")
        env = builder.build()
        plain = ProofJob.from_parts(echo_guest, env, ProverOpts())
        pooled = ProofJob.from_parts(
            echo_guest, env,
            ProverOpts(pool_backend="process", prove_workers=8))
        assert plain.opts_digest == pooled.opts_digest
        assert plain.cache_key(echo_guest.image_id) == \
            pooled.cache_key(echo_guest.image_id)

    def test_opts_digest_varies_with_statement_shape(self):
        assert echo_job().opts_digest != \
            echo_job(kind=echo_job().prover_opts().kind,
                     num_queries=64).opts_digest

    def test_cache_key_varies_with_guest_code(self):
        """Same env, different image id → different address: a guest
        code change can never replay a stale receipt."""
        job = echo_job()
        other_image = sha256(b"different guest code")
        assert job.cache_key(echo_guest.image_id) != \
            job.cache_key(other_image)

    def test_cache_key_varies_with_env(self):
        assert echo_job("a").cache_key(echo_guest.image_id) != \
            echo_job("b").cache_key(echo_guest.image_id)


class TestJobResult:
    def test_wire_round_trip(self):
        result = execute_job(echo_job("wire"))
        restored = JobResult.from_wire(decode(encode(result.to_wire())))
        assert restored.receipt.to_wire() == result.receipt.to_wire()
        assert restored.stats == result.stats
        assert restored.cached is False

    def test_replace_cached(self):
        result = execute_job(echo_job())
        warm = result.replace_cached(True)
        assert warm.cached is True
        assert warm.receipt is result.receipt

    def test_malformed_wire_raises(self):
        with pytest.raises(SerializationError):
            JobResult.from_wire({"receipt": {}})

    def test_run_job_wire_round_trip(self):
        """The process-pool entry point is a pure bytes → bytes function
        equivalent to executing the job in this process."""
        job = echo_job("cross-process")
        local = execute_job(job)
        shipped = JobResult.from_wire(decode(run_job_wire(
            encode_job(job, capture_obs=False))))
        assert shipped.receipt.to_wire() == local.receipt.to_wire()


class TestGuestRegistry:
    def test_resolve_registered(self):
        assert resolve_guest("test/echo") is echo_guest
        assert resolve_guest(aggregation_guest.name) is aggregation_guest
        assert resolve_guest(query_guest.name) is query_guest

    def test_reregister_same_program_idempotent(self):
        assert register_guest(echo_guest) is echo_guest

    def test_name_collision_rejected(self):
        impostor = GuestProgram(lambda env: env.commit(1),
                                name="test/echo")
        with pytest.raises(ConfigurationError):
            register_guest(impostor)

    def test_unknown_guest(self):
        with pytest.raises(ConfigurationError):
            resolve_guest("no/such/guest")


class TestReceiptCache:
    def test_miss_then_hit(self):
        cache = ReceiptCache()
        job = echo_job()
        key = job.cache_key(echo_guest.image_id)
        assert cache.get(key) is None
        cache.put(key, execute_job(job))
        hit = cache.get(key)
        assert hit is not None and hit.cached is True
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction(self):
        cache = ReceiptCache(memory_entries=2)
        results = {}
        for value in ("a", "b", "c"):
            job = echo_job(value)
            key = job.cache_key(echo_guest.image_id)
            results[value] = key
            cache.put(key, execute_job(job))
        # "a" is the least recently used of three entries in a 2-slot
        # cache — evicted; "b" and "c" survive.
        assert cache.get(results["a"]) is None
        assert cache.get(results["b"]) is not None
        assert cache.get(results["c"]) is not None

    def test_persistent_tier_survives_new_cache(self):
        store = MemoryLogStore()
        job = echo_job("durable")
        key = job.cache_key(echo_guest.image_id)
        ReceiptCache(store=store).put(key, execute_job(job))
        fresh = ReceiptCache(store=store)
        hit = fresh.get(key)
        assert hit is not None and hit.cached is True
        assert fresh.stats()["hits"] == 1

    def test_persistent_hit_promoted_to_memory(self):
        store = MemoryLogStore()
        job = echo_job("promote")
        key = job.cache_key(echo_guest.image_id)
        ReceiptCache(store=store).put(key, execute_job(job))
        fresh = ReceiptCache(store=store)
        fresh.get(key)
        assert fresh.stats()["memory_entries"] == 1

    def test_corrupt_persistent_entry_is_a_miss(self):
        store = MemoryLogStore()
        cache = ReceiptCache(store=store)
        job = echo_job("corrupt")
        key = job.cache_key(echo_guest.image_id)
        store.put_checkpoint(f"receipt-cache/{key.hex()}",
                             b"not a receipt")
        assert cache.get(key) is None

    def test_degrades_to_memory_only_on_storage_error(self):
        class ExplodingStore(MemoryLogStore):
            def put_checkpoint(self, name, data):
                raise StorageError("disk on fire")

        cache = ReceiptCache(store=ExplodingStore())
        job = echo_job("degrade")
        key = job.cache_key(echo_guest.image_id)
        cache.put(key, execute_job(job))  # must not raise
        assert cache.get(key) is not None  # memory tier still serves
        assert cache.stats()["persistent"] is False

    def test_obs_snapshot_stripped_from_persistent_tier(self):
        store = MemoryLogStore()
        cache = ReceiptCache(store=store)
        job = echo_job("snap")
        key = job.cache_key(echo_guest.image_id)
        result = execute_job(job)
        cache.put(key, JobResult(receipt=result.receipt,
                                 stats=result.stats,
                                 obs_snapshot={"counters": {}}))
        fresh = ReceiptCache(store=store)
        assert fresh.get(key).obs_snapshot is None


class TestPoolConfig:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROVE_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_PROVE_BACKEND", raising=False)
        assert resolve_pool_config() == ("thread", None)

    def test_explicit_args_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROVE_WORKERS", "7")
        monkeypatch.setenv("REPRO_PROVE_BACKEND", "thread")
        assert resolve_pool_config(backend="serial", max_workers=2) == \
            ("serial", 2)

    def test_opts_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROVE_WORKERS", "7")
        opts = ProverOpts(pool_backend="thread", prove_workers=3)
        assert resolve_pool_config(opts) == ("thread", 3)

    def test_env_workers_selects_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROVE_WORKERS", "2")
        assert resolve_pool_config() == ("process", 2)

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_pool_config(backend="gpu")

    def test_env_nodes_selects_remote_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROVE_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_PROVE_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_PROVE_NODES",
                           "127.0.0.1:7601,127.0.0.1:7602")
        assert resolve_pool_config() == ("remote", None)

    def test_explicit_backend_beats_env_nodes(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROVE_NODES", "127.0.0.1:7601")
        assert resolve_pool_config(backend="serial") == ("serial", None)

    def test_env_nodes_parsed_and_validated(self, monkeypatch):
        from repro.engine import env_nodes
        monkeypatch.setenv("REPRO_PROVE_NODES",
                           " 127.0.0.1:7601 , 127.0.0.1:7602 ")
        assert env_nodes() == ("127.0.0.1:7601", "127.0.0.1:7602")
        monkeypatch.setenv("REPRO_PROVE_NODES", "no-port")
        with pytest.raises(ConfigurationError):
            env_nodes()

    def test_remote_backend_needs_nodes(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROVE_NODES", raising=False)
        with pytest.raises(ConfigurationError):
            ProverPool(backend="remote")

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ProverPool(backend="thread", max_workers=0)


class TestProverPool:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_receipt_identical_to_direct_prover(self, backend):
        job = echo_job(f"via-{backend}")
        direct = Prover(job.prover_opts()).prove(
            echo_guest, job.env_input())
        with ProverPool(backend=backend, max_workers=2) as pool:
            result = pool.submit(job).result(timeout=30)
        assert result.receipt.to_wire() == direct.receipt.to_wire()
        assert result.cached is False

    def test_process_backend_receipt_identical(self):
        job = echo_job("via-process")
        direct = Prover(job.prover_opts()).prove(
            echo_guest, job.env_input())
        with ProverPool(backend="process", max_workers=2) as pool:
            result = pool.submit(job).result(timeout=120)
        assert result.receipt.to_wire() == direct.receipt.to_wire()

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_second_submit_is_cached(self, backend):
        job = echo_job("cache-me")
        with ProverPool(backend=backend, max_workers=2,
                        cache=ReceiptCache()) as pool:
            cold = pool.submit(job).result(timeout=30)
            warm = pool.submit(job).result(timeout=30)
            snap = pool.snapshot()
        assert cold.cached is False
        assert warm.cached is True
        assert warm.receipt.to_wire() == cold.receipt.to_wire()
        assert snap["jobs_cached"] == 1

    def test_shared_cache_across_pools(self):
        cache = ReceiptCache()
        job = echo_job("shared")
        with ProverPool(backend="serial", cache=cache) as pool:
            pool.submit(job).result(timeout=30)
        with ProverPool(backend="thread", cache=cache) as pool:
            assert pool.submit(job).result(timeout=30).cached is True

    def test_guest_abort_propagates(self):
        from repro.errors import GuestAbort

        def aborting(env):
            env.abort("bad input")

        program = register_guest(GuestProgram(aborting,
                                              name="test/abort"))
        builder = ExecutorEnvBuilder()
        job = ProofJob.from_parts(program, builder.build())
        with ProverPool(backend="thread") as pool:
            with pytest.raises(GuestAbort):
                pool.submit(job).result(timeout=30)
            assert pool.snapshot()["jobs_failed"] == 1

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_submit_after_shutdown_raises_typed(self, backend):
        """Submitting to a shut-down pool must raise the typed
        PoolShutdown (a ProofError subclass), never an opaque
        executor-internal RuntimeError — callers race shutdown in the
        daemon and cluster paths and need to catch it precisely."""
        from repro.errors import PoolShutdown
        pool = ProverPool(backend=backend, max_workers=1)
        if backend != "process":
            # warm the inner executor so shutdown exercises a live one
            pool.submit(echo_job("warm")).result(timeout=30)
        pool.shutdown()
        with pytest.raises(PoolShutdown):
            pool.submit(echo_job())
        # idempotent: a second shutdown and submit behave the same
        pool.shutdown()
        with pytest.raises(ProofError):
            pool.submit(echo_job())

    def test_injected_fault_fails_job_not_pool(self):
        injector = FaultInjector(
            FaultPlan.parse("engine.worker:proof:count=1", seed=0))
        with ProverPool(backend="serial", injector=injector) as pool:
            with pytest.raises(ProofError):
                pool.submit(echo_job("faulted")).result(timeout=30)
            # The pool survives the injected failure.
            ok = pool.submit(echo_job("after")).result(timeout=30)
        assert ok.receipt is not None
        assert injector.stats()["injected"]["engine.worker"] == 1

    def test_worker_process_crash_recovers(self):
        """A worker calling os._exit kills the whole executor
        (BrokenProcessPool).  The pool must surface a ProofError —
        not the raw concurrent.futures internals — and rebuild the
        executor so the next job proves."""
        builder = ExecutorEnvBuilder()
        crash_job = ProofJob.from_parts(crash_guest, builder.build())
        with ProverPool(backend="process", max_workers=1) as pool:
            with pytest.raises(ProofError, match="worker process"):
                pool.submit(crash_job).result(timeout=120)
            recovered = pool.submit(
                echo_job("phoenix")).result(timeout=120)
        assert recovered.receipt is not None

    def test_pooled_prover_adapts_prove_interface(self):
        builder = ExecutorEnvBuilder()
        builder.write("adapted")
        env = builder.build()
        with ProverPool(backend="serial") as pool:
            prover = PooledProver(pool, ProverOpts())
            info = prover.prove(echo_guest, env)
        direct = Prover(ProverOpts()).prove(echo_guest, env)
        assert info.receipt.to_wire() == direct.receipt.to_wire()


class TestMergeSnapshot:
    def test_counters_add_and_gauges_overwrite(self):
        a = MetricsRegistry()
        a.counter("repro_engine_jobs_total",
                  ("guest", "outcome")).inc(2, guest="g",
                                            outcome="proved")
        a.gauge("repro_engine_queue_depth").set(5)
        b = MetricsRegistry()
        b.counter("repro_engine_jobs_total",
                  ("guest", "outcome")).inc(3, guest="g",
                                            outcome="proved")
        b.gauge("repro_engine_queue_depth").set(1)
        a.merge_snapshot(b.snapshot())
        assert a.counter("repro_engine_jobs_total",
                         ("guest", "outcome")).value(
                             guest="g", outcome="proved") == 5
        assert a.gauge("repro_engine_queue_depth").value() == 1

    def test_histograms_merge(self):
        a = MetricsRegistry()
        a.histogram("repro_engine_job_seconds",
                    ("guest",)).observe(0.5, guest="g")
        b = MetricsRegistry()
        b.histogram("repro_engine_job_seconds",
                    ("guest",)).observe(1.5, guest="g")
        a.merge_snapshot(b.snapshot())
        (series,) = a.snapshot()["histograms"][0]["series"]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(2.0)

    def test_mismatched_buckets_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", (), buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (), buckets=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge_snapshot(b.snapshot())


class TestPartitionWindows:
    def test_round_robin_by_router(self):
        inputs = router_inputs(n_routers=4)
        parts = partition_windows(inputs, 2)
        assert len(parts) == 2
        assert sum(len(p) for p in parts) == 4

    def test_clamps_to_router_count(self):
        assert len(partition_windows(router_inputs(2), 100)) == 2

    def test_rejects_bad_partition_count(self):
        with pytest.raises(ConfigurationError):
            partition_windows(router_inputs(2), 0)

    def test_rejects_empty_windows(self):
        with pytest.raises(ConfigurationError):
            partition_windows([], 2)


class TestProvingEngine:
    def test_round_matches_parallel_aggregator(self):
        """The engine's scheduler is the machinery under
        ParallelAggregator — both must land on the same root."""
        from repro.core.parallel import ParallelAggregator
        inputs = router_inputs(n_routers=3)
        via_agg = ParallelAggregator().aggregate(inputs)
        with ProvingEngine(backend="thread", max_workers=2) as engine:
            via_engine = engine.prove_round(inputs)
        assert via_engine.new_root == via_agg.new_root
        assert via_engine.receipt.to_wire() == \
            via_agg.receipt.to_wire()

    def test_prove_rounds_work_queue(self):
        """Multiple rounds flow through one pool; each produces its
        own verifiable merge proof."""
        rounds = [router_inputs(n_routers=2, rows=2),
                  router_inputs(n_routers=3, rows=1)]
        with ProvingEngine(backend="thread", max_workers=2) as engine:
            outcomes = engine.prove_rounds(rounds)
        assert [o.ok for o in outcomes] == [True, True]
        assert outcomes[0].result.new_root != \
            outcomes[1].result.new_root

    def test_failed_round_isolated(self):
        """A fault that sinks round 0's partitions must not stall or
        poison round 1 riding the same pool."""
        injector = FaultInjector(
            FaultPlan.parse("engine.worker:proof:count=2", seed=0))
        rounds = [router_inputs(n_routers=2, rows=2),
                  router_inputs(n_routers=2, rows=1)]
        with ProvingEngine(backend="serial",
                           injector=injector) as engine:
            outcomes = engine.prove_rounds(rounds, num_partitions=2)
        assert outcomes[0].ok is False
        assert isinstance(outcomes[0].error, ProofError)
        assert outcomes[1].ok is True

    def test_merge_submission_failure_surfaces(self, monkeypatch):
        """An exception thrown while *building* the merge job (after
        every partition proved) runs on a future callback — it must
        come back as the round's error, not vanish into the callback
        thread leaving _collect to crash on a None merge future."""
        boom = SerializationError("receipt binding exploded")

        def broken_submit(schedule, partition_results):
            raise boom

        with ProvingEngine(backend="serial") as engine:
            monkeypatch.setattr(engine, "_submit_merge", broken_submit)
            outcomes = engine.prove_rounds([router_inputs(2)],
                                           num_partitions=2)
        assert outcomes[0].ok is False
        assert outcomes[0].error is boom

    def test_warm_round_replays_from_cache(self):
        """Re-proving an identical round must hit the cache for every
        partition and the merge."""
        inputs = router_inputs(n_routers=2)
        with ProvingEngine(backend="serial") as engine:
            cold = engine.prove_round(inputs)
            warm = engine.prove_round(inputs)
            snap = engine.snapshot()
        assert warm.receipt.to_wire() == cold.receipt.to_wire()
        assert all(info.cached for info in warm.partition_infos)
        assert warm.merge_info.cached is True
        assert snap["jobs_cached"] == 3  # 2 partitions + 1 merge

    def test_snapshot_shape(self):
        with ProvingEngine(backend="serial") as engine:
            engine.prove_round(router_inputs(2))
            snap = engine.snapshot()
        assert snap["backend"] == "serial"
        assert snap["jobs_done"] >= 3
        assert set(snap["cache"]) >= {"hits", "misses", "hit_rate"}

    def test_all_backends_exported(self):
        assert BACKENDS == ("serial", "thread", "process", "remote")
