"""Unit tests for the background aggregation daemon."""

import threading

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.daemon import AggregationDaemon, DaemonPolicy
from repro.core.prover_service import ProverService
from repro.errors import ConfigurationError
from repro.netflow.clock import SimClock
from repro.storage import MemoryLogStore

from ..conftest import make_record


def commit(store, bulletin, window, n=2):
    records = [make_record(sport=1000 + window * 10 + i)
               for i in range(n)]
    store.append_records("r1", window, records)
    bulletin.publish(Commitment(
        "r1", window, window_digest([r.to_bytes() for r in records]),
        n, window * 5_000))


@pytest.fixture
def setup():
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    service = ProverService(store, bulletin)
    clock = SimClock()
    return store, bulletin, service, clock


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DaemonPolicy(batch_limit=0)
        with pytest.raises(ConfigurationError):
            DaemonPolicy(max_lag_ms=-1)

    def test_no_pending_no_run(self, setup):
        _store, _bulletin, service, clock = setup
        daemon = AggregationDaemon(service, clock)
        assert not daemon.should_run()
        assert daemon.step() is None

    def test_batch_limit_triggers(self, setup):
        store, bulletin, service, clock = setup
        daemon = AggregationDaemon(
            service, clock, DaemonPolicy(batch_limit=2,
                                         max_lag_ms=60_000))
        commit(store, bulletin, 0)
        assert not daemon.should_run()  # 1 < batch_limit, no lag yet
        commit(store, bulletin, 1)
        assert daemon.should_run()
        result = daemon.step()
        assert result is not None
        windows = {w["w"] for w in result.journal_header["windows"]}
        assert windows == {0, 1}

    def test_lag_triggers_single_window(self, setup):
        store, bulletin, service, clock = setup
        daemon = AggregationDaemon(
            service, clock, DaemonPolicy(batch_limit=10,
                                         max_lag_ms=5_000))
        commit(store, bulletin, 0)
        assert not daemon.should_run()
        clock.advance_ms(4_999)
        assert not daemon.should_run()
        clock.advance_ms(1)
        assert daemon.should_run()
        assert daemon.step() is not None

    def test_batch_limit_caps_round_size(self, setup):
        store, bulletin, service, clock = setup
        daemon = AggregationDaemon(
            service, clock, DaemonPolicy(batch_limit=2))
        for window in range(5):
            commit(store, bulletin, window)
        daemon.step()
        assert daemon.stats.windows_consumed == 2
        assert sorted(daemon.pending_windows()) == [2, 3, 4]


class TestDrain:
    def test_drain_consumes_everything(self, setup):
        store, bulletin, service, clock = setup
        daemon = AggregationDaemon(
            service, clock, DaemonPolicy(batch_limit=2))
        for window in range(5):
            commit(store, bulletin, window)
        rounds = daemon.drain()
        assert rounds == 3  # 2 + 2 + 1
        assert daemon.pending_windows() == []
        assert daemon.stats.windows_consumed == 5
        assert len(service.chain) == 3

    def test_drain_idempotent(self, setup):
        store, bulletin, service, clock = setup
        daemon = AggregationDaemon(service, clock)
        commit(store, bulletin, 0)
        assert daemon.drain() == 1
        assert daemon.drain() == 0


class TestStats:
    def test_records_counted(self, setup):
        store, bulletin, service, clock = setup
        daemon = AggregationDaemon(service, clock)
        commit(store, bulletin, 0, n=3)
        commit(store, bulletin, 1, n=2)
        daemon.drain()
        assert daemon.stats.records_aggregated == 5
        assert len(daemon.stats.results) == daemon.stats.rounds


class TestThreaded:
    def test_threaded_daemon_with_simulator(self):
        """Daemon thread aggregating while a simulator generates —
        the full background-aggregation deployment."""
        from repro.netflow import (NetFlowSimulator, SimulatorConfig,
                                   WallClock)
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        clock = WallClock()
        simulator = NetFlowSimulator(
            store, bulletin, clock,
            SimulatorConfig(flows_per_tick=4, tick_ms=20,
                            commit_interval_ms=80))
        service = ProverService(store, bulletin)
        daemon = AggregationDaemon(
            service, clock, DaemonPolicy(batch_limit=2,
                                         max_lag_ms=50))
        stop = threading.Event()
        thread = daemon.run_threaded(stop, poll_ms=20)
        try:
            simulator.run_threaded(duration_ms=400)
        finally:
            stop.set()
            thread.join(timeout=30)
        daemon.drain()
        assert len(service.chain) >= 1
        from repro.core.verifier_client import VerifierClient
        VerifierClient(bulletin).verify_chain(service.chain.receipts())
