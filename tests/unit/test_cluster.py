"""Unit tests for repro.cluster: nodes, the worker daemon, dispatch.

The cluster's promise mirrors the engine's: *where* a proof runs —
this process, a healthy remote node, a flaky node that needed a
re-dispatch, or the local fallback after every node died — never
changes *what* it proves.  Receipts must come back byte-identical to
local execution, Byzantine results must never be adopted, and no task
may ever resolve twice.
"""

import socket
import time

import pytest

from repro.cluster import (
    DETERMINISTIC_CODES,
    HEALTHY,
    QUARANTINED,
    ClusterDispatcher,
    ClusterOpts,
    NodeState,
    WorkerClient,
    WorkerServer,
    parse_nodes,
)
from repro.core.guest_programs import register_guest
from repro.engine import ProofJob, ProverPool, execute_job
from repro.errors import (
    ClusterUnavailable,
    ConfigurationError,
    GuestAbort,
    PoolShutdown,
    ReproError,
)
from repro.storage import MemoryLogStore
from repro.zkvm import ExecutorEnvBuilder, GuestProgram

# -- guests ------------------------------------------------------------------


def _echo_fn(env):
    value = env.read()
    env.tick(100)
    env.commit({"echo": value})


echo_guest = register_guest(GuestProgram(_echo_fn, name="cluster/echo"))


def _abort_fn(env):
    env.abort("cluster abort probe")


abort_guest = register_guest(GuestProgram(_abort_fn,
                                          name="cluster/abort"))


def echo_job(value="hello"):
    builder = ExecutorEnvBuilder()
    builder.write(value)
    return ProofJob.from_parts(echo_guest, builder.build())


def abort_job():
    return ProofJob.from_parts(abort_guest, ExecutorEnvBuilder().build())


# Snappy dispatcher timings for tests; semantics identical to defaults.
FAST = dict(poll_interval=0.02, request_timeout=2.0, probe_timeout=0.5,
            backoff_base=0.05, backoff_max=0.2, lease_timeout=10.0)


def free_endpoint() -> str:
    """A localhost endpoint that refuses connections."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return f"127.0.0.1:{probe.getsockname()[1]}"


def poll_done(client, lease_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        reply = client.poll_result(lease_id)
        if reply["state"] != "running":
            return reply
        time.sleep(0.01)
    raise AssertionError(f"lease {lease_id} never settled")


# -- parse_nodes -------------------------------------------------------------


class TestParseNodes:
    def test_splits_and_strips(self):
        assert parse_nodes(" 127.0.0.1:1 , 127.0.0.1:2 ") == \
            ("127.0.0.1:1", "127.0.0.1:2")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_nodes(" , ")

    def test_bad_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_nodes("127.0.0.1:1,nonsense")


# -- NodeState ---------------------------------------------------------------


class TestNodeState:
    def make(self, **kw):
        kw.setdefault("quarantine_after", 2)
        kw.setdefault("backoff_base", 0.5)
        return NodeState("127.0.0.1:1", client=None, **kw)

    def test_quarantines_after_consecutive_failures(self):
        node = self.make()
        assert node.record_failure("one") is False
        assert node.state == HEALTHY
        assert node.record_failure("two") is True
        assert node.state == QUARANTINED
        assert node.quarantined_until > time.monotonic() - 1

    def test_success_resets_the_streak(self):
        node = self.make()
        node.record_failure("blip")
        node.record_success()
        assert node.consecutive_failures == 0
        node.record_failure("blip again")
        assert node.state == HEALTHY  # streak restarted

    def test_backoff_grows_per_probe_failure(self):
        node = self.make(backoff_base=0.5, backoff_multiplier=2.0,
                         backoff_max=30.0)
        node.record_failure("a")
        node.record_failure("b")  # quarantined, level bumped
        first = node.backoff()
        node.probe_failed("still down")
        assert node.backoff() > first

    def test_backoff_is_capped(self):
        node = self.make(backoff_base=0.5, backoff_max=2.0)
        for _ in range(20):
            node.probe_failed("down")
        assert node.backoff() == 2.0

    def test_rejection_quarantines_at_max_backoff(self):
        node = self.make()
        assert node.record_rejection("bad receipt") is True
        assert node.state == QUARANTINED
        assert node.backoff() == node.backoff_max
        assert node.rejected == 1

    def test_reinstate_restores_health(self):
        node = self.make()
        node.record_rejection("bad receipt")
        node.reinstate()
        assert node.state == HEALTHY
        assert node.consecutive_failures == 0

    def test_probe_due_respects_backoff(self):
        node = self.make()
        node.record_failure("a")
        node.record_failure("b")
        assert not node.probe_due(now=time.monotonic())
        assert node.probe_due(now=node.quarantined_until + 0.001)

    def test_snapshot_shape(self):
        snap = self.make().snapshot()
        assert snap["state"] == HEALTHY
        assert {"endpoint", "jobs_ok", "jobs_failed", "rejected",
                "leases", "backoff_seconds"} <= set(snap)


# -- worker daemon protocol --------------------------------------------------


class TestWorkerProtocol:
    @pytest.fixture
    def worker(self):
        with WorkerServer(backend="thread", max_workers=2) as server:
            client = WorkerClient(server.endpoint, timeout=5.0)
            yield server, client
            client.close()

    def test_pull_then_poll_round_trip(self, worker):
        server, client = worker
        job = echo_job("round-trip")
        ack = client.submit_job(job, "lease-1", 60_000)
        assert ack == {"accepted": True, "lease": "lease-1",
                       "duplicate": False}
        reply = poll_done(client, "lease-1")
        assert reply["state"] == "done"
        from repro.engine import JobResult
        result = JobResult.from_wire(reply["result"])
        local = execute_job(echo_job("round-trip"))
        assert result.receipt.to_json_bytes() == \
            local.receipt.to_json_bytes()

    def test_duplicate_pull_is_idempotent(self, worker):
        server, client = worker
        job = echo_job("idempotent")
        client.submit_job(job, "lease-dup", 60_000)
        again = client.submit_job(job, "lease-dup", 60_000)
        assert again["duplicate"] is True
        poll_done(client, "lease-dup")
        # The lease ran exactly once despite two pulls.
        assert server.pool.snapshot()["jobs_done"] == 1

    def test_unknown_lease_reports_unknown(self, worker):
        _, client = worker
        assert client.poll_result("never-issued")["state"] == "unknown"

    def test_deterministic_failure_reports_wire_code(self, worker):
        _, client = worker
        client.submit_job(abort_job(), "lease-abort", 60_000)
        reply = poll_done(client, "lease-abort")
        assert reply["state"] == "failed"
        assert reply["code"] == "guest-abort"
        assert reply["code"] in DETERMINISTIC_CODES

    def test_health_probe_shape(self, worker):
        server, client = worker
        health = client.probe()
        assert health["status"] == "ok"
        assert health["endpoint"] == server.endpoint
        assert {"leases", "running", "uptime_seconds",
                "requests_served", "backend"} <= set(health)

    def test_bad_lease_rejected(self, worker):
        _, client = worker
        with pytest.raises(ReproError):
            client.submit_job(echo_job(), "", 60_000)

    def test_unknown_kind_rejected(self, worker):
        _, client = worker
        with pytest.raises(ReproError):
            client._request("status", {})

    def test_shared_persistent_cache_tier(self):
        """Two workers over one store: the second serves the first's
        proof from the checkpoint-KV receipt-cache tier."""
        store = MemoryLogStore()
        job = echo_job("cache-across-nodes")
        with WorkerServer(store=store) as first:
            with WorkerClient(first.endpoint, timeout=5.0) as client:
                client.submit_job(job, "lease-a", 60_000)
                poll_done(client, "lease-a")
        with WorkerServer(store=store) as second:
            with WorkerClient(second.endpoint, timeout=5.0) as client:
                client.submit_job(job, "lease-b", 60_000)
                poll_done(client, "lease-b")
            assert second.pool.snapshot()["jobs_cached"] == 1


# -- the dispatcher ----------------------------------------------------------


class LyingWorker(WorkerServer):
    """Reports someone else's (verifiable but wrong-input) result."""

    def _handle_result(self, body):
        reply = super()._handle_result(body)
        if reply.get("state") == "done":
            forged = execute_job(echo_job("forged-payload"))
            reply["result"] = forged.to_wire()
        return reply


class TestClusterDispatcher:
    def test_fans_out_and_matches_local(self):
        with WorkerServer() as w1, WorkerServer() as w2:
            dispatcher = ClusterDispatcher(
                [w1.endpoint, w2.endpoint], opts=ClusterOpts(**FAST))
            try:
                futures = [dispatcher.dispatch(echo_job(f"fan-{i}"))
                           for i in range(6)]
                results = [f.result(timeout=60) for f in futures]
            finally:
                dispatcher.shutdown()
        for i, result in enumerate(results):
            local = execute_job(echo_job(f"fan-{i}"))
            assert result.receipt.to_json_bytes() == \
                local.receipt.to_json_bytes()

    def test_dead_node_is_quarantined_and_work_rerouted(self):
        with WorkerServer() as alive:
            dispatcher = ClusterDispatcher(
                [free_endpoint(), alive.endpoint],
                opts=ClusterOpts(quarantine_after=1, **FAST))
            try:
                results = [
                    dispatcher.dispatch(echo_job(f"reroute-{i}"))
                    .result(timeout=60) for i in range(4)]
                snap = dispatcher.snapshot()
            finally:
                dispatcher.shutdown()
        assert all(r.receipt is not None for r in results)
        states = {n["endpoint"]: n["state"] for n in snap["nodes"]}
        assert states[alive.endpoint] == HEALTHY
        assert QUARANTINED in states.values()
        assert not snap["degraded"]

    def test_all_nodes_down_degrades_to_local_fallback(self):
        dispatcher = ClusterDispatcher(
            [free_endpoint(), free_endpoint()],
            opts=ClusterOpts(quarantine_after=1, backoff_base=5.0,
                             backoff_max=5.0, **{
                                 k: v for k, v in FAST.items()
                                 if not k.startswith("backoff")}))
        try:
            result = dispatcher.dispatch(
                echo_job("degraded")).result(timeout=60)
            assert dispatcher.degraded is True
            snap = dispatcher.snapshot()
        finally:
            dispatcher.shutdown()
        local = execute_job(echo_job("degraded"))
        assert result.receipt.to_json_bytes() == \
            local.receipt.to_json_bytes()
        assert snap["degraded"] is True
        assert snap["fallback_jobs"] >= 1

    def test_no_fallback_raises_cluster_unavailable(self):
        dispatcher = ClusterDispatcher(
            [free_endpoint()],
            opts=ClusterOpts(quarantine_after=1, local_fallback=False,
                             retry_budget=1, backoff_base=5.0,
                             backoff_max=5.0, **{
                                 k: v for k, v in FAST.items()
                                 if not k.startswith("backoff")}))
        try:
            future = dispatcher.dispatch(echo_job("unavailable"))
            with pytest.raises(ClusterUnavailable):
                future.result(timeout=60)
        finally:
            dispatcher.shutdown()

    def test_deterministic_abort_propagates_without_blame(self):
        with WorkerServer() as worker:
            dispatcher = ClusterDispatcher(
                [worker.endpoint], opts=ClusterOpts(**FAST))
            try:
                future = dispatcher.dispatch(abort_job())
                with pytest.raises(GuestAbort):
                    future.result(timeout=60)
                snap = dispatcher.snapshot()
            finally:
                dispatcher.shutdown()
        # The node told the truth about a bad job: still healthy.
        assert snap["nodes"][0]["state"] == HEALTHY
        assert snap["nodes"][0]["jobs_failed"] == 0

    def test_byzantine_result_rejected_node_quarantined(self):
        """A forged (wrong input commitment) result is never adopted:
        the lying node is quarantined at max backoff and the job
        re-proves on the ground-truth local fallback."""
        with LyingWorker() as liar:
            dispatcher = ClusterDispatcher(
                [liar.endpoint],
                opts=ClusterOpts(retry_budget=1, backoff_base=5.0,
                                 backoff_max=5.0, **{
                                     k: v for k, v in FAST.items()
                                     if not k.startswith("backoff")}))
            try:
                result = dispatcher.dispatch(
                    echo_job("the-truth")).result(timeout=60)
                snap = dispatcher.snapshot()
            finally:
                dispatcher.shutdown()
        local = execute_job(echo_job("the-truth"))
        assert result.receipt.to_json_bytes() == \
            local.receipt.to_json_bytes()
        assert snap["rejections"] >= 1
        assert snap["nodes"][0]["state"] == QUARANTINED
        assert snap["nodes"][0]["rejected"] >= 1

    def test_dispatch_after_shutdown_raises(self):
        with WorkerServer() as worker:
            dispatcher = ClusterDispatcher(
                [worker.endpoint], opts=ClusterOpts(**FAST))
            dispatcher.shutdown()
            with pytest.raises(PoolShutdown):
                dispatcher.dispatch(echo_job())

    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigurationError):
            ClusterDispatcher([])


# -- the engine's remote backend ---------------------------------------------


class TestRemotePoolBackend:
    def test_remote_pool_matches_direct_execution(self):
        with WorkerServer() as w1, WorkerServer() as w2:
            with ProverPool(backend="remote",
                            nodes=[w1.endpoint, w2.endpoint],
                            cluster_opts=ClusterOpts(**FAST)) as pool:
                result = pool.submit(
                    echo_job("via-remote")).result(timeout=60)
                snap = pool.snapshot()
        local = execute_job(echo_job("via-remote"))
        assert result.receipt.to_json_bytes() == \
            local.receipt.to_json_bytes()
        assert snap["backend"] == "remote"
        assert snap["cluster"]["degraded"] is False
        assert len(snap["cluster"]["nodes"]) == 2

    def test_cache_consulted_before_dispatch(self):
        from repro.engine import ReceiptCache
        with WorkerServer() as worker:
            with ProverPool(backend="remote", nodes=[worker.endpoint],
                            cache=ReceiptCache(),
                            cluster_opts=ClusterOpts(**FAST)) as pool:
                cold = pool.submit(echo_job("warm-me")).result(timeout=60)
                warm = pool.submit(echo_job("warm-me")).result(timeout=60)
        assert cold.cached is False
        assert warm.cached is True
        assert warm.receipt.to_wire() == cold.receipt.to_wire()

    def test_env_nodes_configure_the_pool(self, monkeypatch):
        with WorkerServer() as worker:
            monkeypatch.setenv("REPRO_PROVE_NODES", worker.endpoint)
            with ProverPool(backend="remote",
                            cluster_opts=ClusterOpts(**FAST)) as pool:
                assert pool.nodes == (worker.endpoint,)
                result = pool.submit(
                    echo_job("via-env")).result(timeout=60)
        assert result.receipt is not None

    def test_submit_after_shutdown_raises_typed(self):
        with WorkerServer() as worker:
            pool = ProverPool(backend="remote", nodes=[worker.endpoint])
            pool.shutdown()
            with pytest.raises(PoolShutdown):
                pool.submit(echo_job())
