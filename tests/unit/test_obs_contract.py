"""The instrumentation contract: exact span/metric names and labels.

Every name below is hard-coded **on purpose** (not imported from
``repro.obs.names``): the emitted telemetry namespace is public API
that dashboards, bench trajectories, and the wire ``metrics`` endpoint
depend on.  Renaming a span or metric, or changing a label set, must
fail this suite — that is the point.
"""

from __future__ import annotations

import pytest

from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.obs import runtime as obs

from ..conftest import make_committed_records

# -- the contract ------------------------------------------------------------

E2E_SPANS = {
    "zkvm.execute",
    "zkvm.prove",
    "zkvm.verify",
    "agg.round",
    "agg.witness",
    "query.prove",
}

E2E_METRIC_LABELS = {
    "repro_executor_sessions_total": ("program", "exit_code"),
    "repro_executor_cycles_total": ("program",),
    "repro_prover_proofs_total": ("program", "kind"),
    "repro_prover_cycles_total": ("program",),
    "repro_prover_segments_total": ("program",),
    "repro_prover_prove_seconds": ("program",),
    "repro_verifier_receipts_total": ("kind", "outcome"),
    "repro_verifier_verify_seconds": (),
    "repro_agg_rounds_total": ("strategy",),
    "repro_agg_records_total": ("strategy",),
    "repro_agg_round_seconds": ("strategy",),
    "repro_service_flows": (),
    "repro_service_rounds": (),
    "repro_service_query_cache_total": ("result",),
    "repro_query_proofs_total": (),
    "repro_query_prove_seconds": (),
}

WIRE_SERVER_METRIC_LABELS = {
    "repro_net_server_requests_total": ("kind", "status"),
    "repro_net_server_request_seconds": ("kind",),
    "repro_net_server_bytes_total": ("direction",),
    "repro_net_server_errors_total": ("kind", "code"),
    "repro_net_server_connections": (),
}

WIRE_CLIENT_METRIC_LABELS = {
    "repro_net_client_requests_total": ("kind", "status"),
    "repro_net_client_attempts_total": ("kind",),
    "repro_net_client_request_seconds": ("kind",),
    "repro_net_client_bytes_total": ("direction",),
}

WIRE_SPANS = {"net.server.request", "net.client.request"}

PARALLEL_SPANS = {
    "agg.parallel.round",
    "agg.parallel.partition",
    "agg.parallel.merge",
}


@pytest.fixture(autouse=True)
def _obs_disabled():
    """These tests assert the disabled default; run them from a clean
    no-op state even when the process exported REPRO_OBS=1."""
    was_enabled = obs.is_enabled()
    obs.disable()
    yield
    obs.disable()
    if was_enabled:
        obs.enable()


@pytest.fixture
def service_round():
    """One aggregated round over 30 committed records."""
    store, bulletin, _ = make_committed_records(30)
    service = ProverService(store, bulletin)
    return service, bulletin


class TestEndToEndContract:
    def test_aggregate_query_verify_emits_exact_names(self,
                                                      service_round):
        service, bulletin = service_round
        with obs.capture() as cap:
            service.aggregate_all_committed()
            response = service.answer_query(
                "SELECT COUNT(*) FROM clogs")
            verifier = VerifierClient(bulletin)
            chain = verifier.verify_chain(service.chain.receipts())
            verifier.verify_query(response, chain[-1])

            assert set(cap.exporter.names()) == E2E_SPANS
            assert set(cap.registry.names()) == \
                set(E2E_METRIC_LABELS)
            for name, labels in E2E_METRIC_LABELS.items():
                assert cap.registry.label_names(name) == labels, name

    def test_snapshot_carries_prover_accounting(self, service_round):
        """The numbers the paper's asymmetry argument needs: cycles,
        segments, prove/verify latency — all in one snapshot."""
        service, bulletin = service_round
        with obs.capture() as cap:
            result = service.aggregate_all_committed()[-1]
            reg = cap.registry
            program = "telemetry-aggregation-v1"
            assert reg.get("repro_prover_cycles_total").value(
                program=program) == result.info.stats.total_cycles
            assert reg.get("repro_prover_segments_total").value(
                program=program) == result.info.stats.segment_count
            prove_hist = reg.get("repro_prover_prove_seconds")
            assert prove_hist.series_data(
                program=program)["count"] == 1
            # The span carries the same cycle delta.
            (prove_span,) = cap.exporter.by_name("zkvm.prove")
            assert prove_span.attributes["cycles"] == \
                result.info.stats.total_cycles
            assert prove_span.attributes["segments"] == \
                result.info.stats.segment_count

    def test_span_nesting_is_deterministic(self, service_round):
        service, _ = service_round
        with obs.capture() as cap:
            service.aggregate_all_committed()
            (round_span,) = cap.exporter.by_name("agg.round")
            assert round_span.parent is None
            (witness_span,) = cap.exporter.by_name("agg.witness")
            assert witness_span.parent == "agg.round"
            (prove_span,) = cap.exporter.by_name("zkvm.prove")
            assert prove_span.parent == "agg.round"
            assert prove_span.depth == 1

    def test_query_cache_hit_and_miss_series(self, service_round):
        service, _ = service_round
        with obs.capture() as cap:
            service.aggregate_all_committed()
            sql = "SELECT COUNT(*) FROM clogs"
            service.answer_query(sql)
            service.answer_query(sql)
            cache = cap.registry.get("repro_service_query_cache_total")
            assert cache.value(result="miss") == 1
            assert cache.value(result="hit") == 1

    def test_disabled_by_default_emits_nothing(self, service_round):
        service, _ = service_round
        assert not obs.is_enabled()
        service.aggregate_all_committed()
        assert obs.registry().names() == []
        assert obs.snapshot() == {"enabled": False,
                                  "metrics": {"counters": [],
                                              "gauges": [],
                                              "histograms": []},
                                  "spans": []}


class TestParallelContract:
    def test_parallel_round_spans(self):
        from repro.commitments import window_digest
        from repro.core.aggregation import RouterWindowInput
        from repro.core.parallel import ParallelAggregator
        from ..conftest import make_record
        inputs = []
        for i in (1, 2):
            blobs = tuple(
                make_record(router_id=f"r{i}", sport=1000 + j).to_bytes()
                for j in range(2))
            inputs.append(RouterWindowInput(
                router_id=f"r{i}", window_index=0,
                commitment=window_digest(list(blobs)), blobs=blobs))
        with obs.capture() as cap:
            ParallelAggregator().aggregate(inputs)
            names = set(cap.exporter.names())
            assert PARALLEL_SPANS <= names
            assert len(cap.exporter.by_name(
                "agg.parallel.partition")) == 2
            assert cap.registry.get(
                "repro_parallel_partitions_total").value() == 2


QUERY_PARALLEL_SPANS = {
    "query.parallel.round",
    "query.parallel.partition",
    "query.parallel.merge",
}


class TestQueryParallelContract:
    """Partitioned query telemetry, pinned like the aggregation set.

    These names appear only on the opt-in partitioned path — a default
    service's query flow emits exactly the sequential contract above.
    """

    def test_partitioned_query_spans_and_metrics(self):
        store, bulletin, _ = make_committed_records(200, seed=11)
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2, query_partitions=4)
        try:
            service.aggregate_all_committed()
            with obs.capture() as cap:
                service.answer_query("SELECT COUNT(*) FROM clogs")
                assert QUERY_PARALLEL_SPANS <= set(cap.exporter.names())
                partitions = cap.exporter.by_name(
                    "query.parallel.partition")
                count = service.last_prove_info.num_partitions
                assert len(partitions) == count
                assert all("cycles" in s.attributes
                           for s in partitions)
                assert cap.registry.get(
                    "repro_query_partitions_total").value() == count
                assert cap.registry.get(
                    "repro_query_proofs_total").value() == 1
                (outer,) = cap.exporter.by_name("query.prove")
                assert outer.attributes["partitions"] == count
                (round_span,) = cap.exporter.by_name(
                    "query.parallel.round")
                assert round_span.parent == "query.prove"
                (merge_span,) = cap.exporter.by_name(
                    "query.parallel.merge")
                assert merge_span.parent == "query.parallel.round"
        finally:
            service.close()


class TestWireContract:
    def test_wire_round_trip_emits_exact_names(self, service_round):
        from repro.net import ProverServer, QueryClient
        service, _ = service_round
        with obs.capture() as cap:
            service.aggregate_all_committed()
            server = ProverServer(service)
            with server:
                with QueryClient(server.host, server.port) as client:
                    client.health()
                    client.query("SELECT COUNT(*) FROM clogs")
                    # One failing request → an error series by wire code.
                    with pytest.raises(Exception):
                        client.query("SELECT NOT VALID SQL")
                    snapshot = client.fetch_metrics()

            names = set(cap.registry.names())
            for name, labels in {**WIRE_SERVER_METRIC_LABELS,
                                 **WIRE_CLIENT_METRIC_LABELS}.items():
                assert name in names, name
                assert cap.registry.label_names(name) == labels, name
            assert WIRE_SPANS <= set(cap.exporter.names())

            requests = cap.registry.get(
                "repro_net_server_requests_total")
            assert requests.value(kind="health", status="ok") == 1
            assert requests.value(kind="query", status="ok") == 1
            assert requests.value(kind="query", status="err") == 1
            assert requests.value(kind="metrics", status="ok") == 1
            errors = cap.registry.get("repro_net_server_errors_total")
            assert errors.value(kind="query",
                                code="query-syntax") == 1
            bytes_total = cap.registry.get(
                "repro_net_server_bytes_total")
            assert bytes_total.value(direction="in") > 0
            assert bytes_total.value(direction="out") > 0

            # The wire snapshot reports the same metric families.
            assert snapshot["enabled"] is True
            wire_names = {entry["name"] for bucket in
                          ("counters", "gauges", "histograms")
                          for entry in snapshot["metrics"][bucket]}
            # Everything known at fetch time is in the wire snapshot
            # (client-side series for the fetch itself land later).
            assert set(E2E_METRIC_LABELS) <= wire_names
            assert set(WIRE_SERVER_METRIC_LABELS) <= wire_names

    def test_client_retry_and_error_series(self):
        from repro.errors import RetryExhausted
        from repro.net import QueryClient, RetryPolicy
        import socket
        # A port nothing listens on: bind-then-close.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with obs.capture() as cap:
            with QueryClient("127.0.0.1", port,
                             retry=RetryPolicy(max_attempts=3,
                                               base_delay=0.001,
                                               jitter=0.0)) as client:
                with pytest.raises(RetryExhausted):
                    client.health()
            assert cap.registry.get(
                "repro_net_client_attempts_total").value(
                kind="health") == 3
            assert cap.registry.get(
                "repro_net_client_retries_total").value(
                kind="health") == 2
            assert cap.registry.get(
                "repro_net_client_errors_total").value(
                kind="health", error="RetryExhausted") == 1
            assert cap.registry.get(
                "repro_net_client_requests_total").value(
                kind="health", status="err") == 1


ENGINE_METRIC_LABELS = {
    "repro_engine_jobs_total": ("guest", "outcome"),
    "repro_engine_job_seconds": ("guest",),
    "repro_engine_queue_depth": (),
    "repro_engine_workers": (),
    "repro_engine_workers_busy": (),
    "repro_engine_cache_total": ("tier", "result"),
    "repro_engine_round_real_seconds": (),
    "repro_engine_round_modeled_seconds": (),
}

ENGINE_SPAN = "engine.job"


class TestEngineContract:
    """The engine's telemetry namespace, pinned like the e2e set.

    The engine is explicit opt-in on :class:`ProverService`, so the
    sequential contract above stays byte-for-byte unchanged; these
    names appear only when a pool is configured (or a
    ``ParallelAggregator`` round runs, which always routes through the
    engine).
    """

    def test_parallel_round_emits_engine_metrics(self):
        from repro.core.parallel import ParallelAggregator
        from repro.commitments import window_digest
        from repro.core.aggregation import RouterWindowInput
        from ..conftest import make_record
        inputs = []
        for i in (1, 2):
            blobs = tuple(
                make_record(router_id=f"r{i}", sport=1000 + j).to_bytes()
                for j in range(2))
            inputs.append(RouterWindowInput(
                router_id=f"r{i}", window_index=0,
                commitment=window_digest(list(blobs)), blobs=blobs))
        aggregator = ParallelAggregator(backend="serial")
        with obs.capture() as cap:
            aggregator.aggregate(inputs)
            for name, labels in ENGINE_METRIC_LABELS.items():
                assert cap.registry.label_names(name) == labels, name
            jobs = cap.registry.get("repro_engine_jobs_total")
            assert jobs.value(guest="telemetry-partition-v1",
                              outcome="ok") == 2
            assert jobs.value(guest="telemetry-merge-v1",
                              outcome="ok") == 1
            # Warm round: every proof replays from the cache.
            aggregator.aggregate(inputs)
            assert jobs.value(guest="telemetry-partition-v1",
                              outcome="cached") == 2
            cache = cap.registry.get("repro_engine_cache_total")
            assert cache.value(tier="memory", result="hit") == 3

    def test_pooled_service_emits_engine_job_spans(self):
        store, bulletin, _ = make_committed_records(20)
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        try:
            with obs.capture() as cap:
                service.aggregate_all_committed()
                spans = cap.exporter.by_name(ENGINE_SPAN)
                assert len(spans) >= 1
                assert all("cached" in s.attributes for s in spans)
        finally:
            service.close()


STREAM_METRIC_LABELS = {
    "repro_stream_deltas_total": ("cached",),
    "repro_stream_folds_total": ("cached", "kind"),
    "repro_stream_rounds_total": ("strategy",),
    "repro_stream_frontier_nodes": (),
}

STREAM_SPANS = {"stream.delta", "stream.fold"}


class TestStreamContract:
    """The streaming-composition namespace, pinned like the others.

    Stream mode is explicit opt-in (``stream=True`` or ``REPRO_STREAM``
    on an engine-backed service), so these names never appear for a
    default service — the sequential contract above stays intact.
    """

    def test_streamed_round_emits_exact_names(self):
        store, bulletin, _ = make_committed_records(20)
        service = ProverService(store, bulletin, stream=True)
        try:
            with obs.capture() as cap:
                service.aggregate_all_committed()
                for name in STREAM_SPANS:
                    assert len(cap.exporter.by_name(name)) >= 1, name
                for name, labels in STREAM_METRIC_LABELS.items():
                    assert cap.registry.label_names(name) == labels, name
                deltas = cap.registry.get("repro_stream_deltas_total")
                assert deltas.value(cached="false") == 1
                folds = cap.registry.get("repro_stream_folds_total")
                assert folds.value(cached="false", kind="final") == 1
                rounds = cap.registry.get("repro_stream_rounds_total")
                assert rounds.value(strategy="streamed") == 1
                frontier = cap.registry.get("repro_stream_frontier_nodes")
                assert frontier.value() == 0  # emptied by close()
                # The streamed round also lands in the shared
                # aggregation series under its own strategy label.
                agg = cap.registry.get("repro_agg_rounds_total")
                assert agg.value(strategy="streamed") == 1
        finally:
            service.close()

    def test_default_service_emits_no_stream_names(self):
        store, bulletin, _ = make_committed_records(20)
        service = ProverService(store, bulletin)
        with obs.capture() as cap:
            service.aggregate_all_committed()
            for name in STREAM_SPANS:
                assert cap.exporter.by_name(name) == []
            for name in STREAM_METRIC_LABELS:
                assert cap.registry.get(name) is None, name


QSERVE_METRIC_LABELS = {
    "repro_qserve_admitted_total": ("tenant",),
    "repro_qserve_rejected_total": ("tenant", "reason"),
    "repro_qserve_batched_total": ("outcome",),
    "repro_qserve_cache_total": ("tier", "result"),
    "repro_qserve_inflight": (),
}

QSERVE_SPANS = {"qserve.admit", "qserve.batch"}


class TestQServeContract:
    """The multi-tenant serving namespace, pinned like the others.

    The query service is explicit opt-in (a ``QueryService`` in front
    of the prover service), so these names never appear for a default
    service — the sequential contract above stays intact.  The cache
    counters ride the same gate: ``repro_qserve_cache_total`` is
    emitted only once a query service enables observation on the
    shared result cache.
    """

    def _serve_queries(self, qserve, plan):
        """Run (sql, tenant) submits sequentially on a fresh loop;
        returns outcomes (responses or the raised exception)."""
        import asyncio

        async def scenario():
            await qserve.start()
            outcomes = []
            try:
                for sql, tenant in plan:
                    try:
                        outcomes.append(await qserve.submit(
                            sql, tenant=tenant))
                    except Exception as exc:
                        outcomes.append(exc)
            finally:
                await qserve.stop()
            return outcomes

        return asyncio.run(scenario())

    def test_qserve_emits_exact_names(self):
        import asyncio

        from repro.errors import AdmissionRejected
        from repro.qserve import QueryService

        store, bulletin, _ = make_committed_records(40, seed=21)
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        try:
            service.aggregate_all_committed()
            qserve = QueryService(service, tenant_rate=2.0,
                                  tenant_burst=2.0, batch=True,
                                  batch_window=0.05)
            with obs.capture() as cap:
                # Two distinct queries land in one batch...
                async def batch_two():
                    await qserve.start()
                    try:
                        return await asyncio.gather(
                            qserve.submit("SELECT COUNT(*) FROM clogs",
                                          tenant="alpha"),
                            qserve.submit("SELECT SUM(octets) "
                                          "FROM clogs",
                                          tenant="alpha"))
                    finally:
                        await qserve.stop()

                first, second = asyncio.run(batch_two())
                assert first.value() is not None
                # ...then a hot tenant burns its burst on a cached
                # query and gets a typed rate rejection.
                outcomes = self._serve_queries(qserve, [
                    ("SELECT COUNT(*) FROM clogs", "hot"),
                    ("SELECT COUNT(*) FROM clogs", "hot"),
                    ("SELECT COUNT(*) FROM clogs", "hot"),
                ])
                assert isinstance(outcomes[-1], AdmissionRejected)

                for name, labels in QSERVE_METRIC_LABELS.items():
                    assert cap.registry.label_names(name) == \
                        labels, name
                assert QSERVE_SPANS <= set(cap.exporter.names())

                admitted = cap.registry.get(
                    "repro_qserve_admitted_total")
                assert admitted.value(tenant="alpha") == 2
                assert admitted.value(tenant="hot") == 2
                rejected = cap.registry.get(
                    "repro_qserve_rejected_total")
                assert rejected.value(tenant="hot", reason="rate") == 1
                batched = cap.registry.get("repro_qserve_batched_total")
                assert batched.value(outcome="proven") == 2
                cache = cap.registry.get("repro_qserve_cache_total")
                assert cache.value(tier="memory", result="hit") >= 2
                assert cache.value(tier="memory", result="miss") >= 2
                assert cap.registry.get(
                    "repro_qserve_inflight").value() == 0

                # Span shape: every submit opens qserve.admit; the
                # batch span carries its strategy.
                admits = cap.exporter.by_name("qserve.admit")
                assert len(admits) == 5
                assert {s.attributes["outcome"] for s in admits} >= \
                    {"queued", "cached", "rejected:rate"}
                (batch_span,) = cap.exporter.by_name("qserve.batch")
                assert batch_span.attributes["strategy"] == "batched"
                assert batch_span.attributes["size"] == 2
        finally:
            service.close()

    def test_metrics_wire_message_exposes_qserve_names(self):
        from repro.net import ProverServer, QueryClient
        from repro.qserve import QueryService

        from concurrent.futures import ThreadPoolExecutor

        store, bulletin, _ = make_committed_records(30, seed=22)
        service = ProverService(store, bulletin, pool_backend="thread",
                                prove_workers=2)
        service.aggregate_all_committed()
        qserve = QueryService(service, tenant_rate=2.0,
                              tenant_burst=2.0, batch=True,
                              batch_window=0.2)
        with obs.capture():
            server = ProverServer(service, qserve=qserve)
            try:
                with server:
                    # Two concurrent wire queries land in one batch
                    # window and prove through the shared scan.
                    def ask(sql):
                        with QueryClient(server.host,
                                         server.port) as client:
                            return client.query(sql, tenant="alpha")

                    with ThreadPoolExecutor(2) as pool:
                        answers = list(pool.map(ask, [
                            "SELECT COUNT(*) FROM clogs",
                            "SELECT SUM(octets) FROM clogs"]))
                    assert len(answers) == 2
                    with QueryClient(server.host,
                                     server.port) as client:
                        client.query("SELECT COUNT(*) FROM clogs",
                                     tenant="hot")
                        client.query("SELECT COUNT(*) FROM clogs",
                                     tenant="hot")
                        with pytest.raises(Exception):
                            client.query("SELECT COUNT(*) FROM clogs",
                                         tenant="hot")
                        snapshot = client.fetch_metrics()
                        status = client.fetch_status()
            finally:
                service.close()

            wire_names = {entry["name"] for bucket in
                          ("counters", "gauges", "histograms")
                          for entry in snapshot["metrics"][bucket]}
            assert set(QSERVE_METRIC_LABELS) <= wire_names
            # STATUS carries the serving stats next to the service's.
            qstats = status["qserve"]
            assert qstats["max_inflight"] == 64
            assert qstats["inflight"] == 0
            assert qstats["cache"]["persistent"] is True


CLUSTER_METRIC_LABELS = {
    "repro_cluster_jobs_total": ("node", "outcome"),
    "repro_cluster_steals_total": (),
    "repro_cluster_duplicates_total": (),
    "repro_cluster_fallback_total": (),
    "repro_cluster_nodes": ("state",),
    "repro_cluster_degraded": (),
    "repro_cluster_worker_jobs_total": ("outcome",),
}

CLUSTER_SPAN = "cluster.dispatch"


class TestClusterContract:
    """The remote-proving namespace, pinned like the others.

    The cluster is explicit opt-in (``backend="remote"`` /
    ``REPRO_PROVE_NODES``), so these names never appear for local
    backends; when a dispatcher runs, the names and label sets below
    are the wire-visible health contract STATUS and dashboards read.
    """

    def test_remote_round_emits_exact_names(self):
        from repro.cluster import ClusterOpts, WorkerServer
        from repro.core.guest_programs import register_guest
        from repro.engine import ProofJob, ProverPool
        from repro.zkvm import ExecutorEnvBuilder, GuestProgram

        def _fn(env):
            env.commit({"echo": env.read()})

        guest = register_guest(GuestProgram(_fn, name="obs/cluster"))
        builder = ExecutorEnvBuilder()
        builder.write("contract")
        job = ProofJob.from_parts(guest, builder.build())
        with obs.capture() as cap:
            with WorkerServer() as worker:
                with ProverPool(
                        backend="remote", nodes=[worker.endpoint],
                        cluster_opts=ClusterOpts(
                            poll_interval=0.02)) as pool:
                    pool.submit(job).result(timeout=60)
            spans = cap.exporter.by_name(CLUSTER_SPAN)
            assert len(spans) >= 1
            jobs = cap.registry.get("repro_cluster_jobs_total")
            assert jobs.value(node=worker.endpoint, outcome="ok") == 1
            worker_jobs = cap.registry.get(
                "repro_cluster_worker_jobs_total")
            assert worker_jobs.value(outcome="ok") == 1
            for name, labels in CLUSTER_METRIC_LABELS.items():
                if name in ("repro_cluster_steals_total",
                            "repro_cluster_duplicates_total",
                            "repro_cluster_fallback_total"):
                    continue  # only emitted by their fault paths
                assert cap.registry.label_names(name) == labels, name
            gauge = cap.registry.get("repro_cluster_nodes")
            assert gauge.value(state="healthy") == 1
            assert gauge.value(state="quarantined") == 0
            assert cap.registry.get(
                "repro_cluster_degraded").value() == 0

    def test_local_backends_emit_no_cluster_names(self, service_round):
        service, _ = service_round
        with obs.capture() as cap:
            service.aggregate_all_committed()
            for name in CLUSTER_METRIC_LABELS:
                assert cap.registry.get(name) is None, name
            assert cap.exporter.by_name(CLUSTER_SPAN) == []


FEDERATION_METRIC_LABELS = {
    "repro_federation_joins_total": ("outcome",),
    "repro_federation_providers": (),
    "repro_federation_join_seconds": (),
    "repro_federation_workloads_total": ("kind",),
}

FEDERATION_SPAN = "federation.join"


class TestFederationContract:
    """The federation namespace: one span, four metrics, pinned."""

    def test_join_emits_exact_names(self):
        from repro.federation import (
            FederationJoinProver,
            build_federation_scenario,
        )
        scenario = build_federation_scenario(num_providers=2,
                                             num_flows=8, seed=3)
        with obs.capture() as cap:
            with FederationJoinProver() as prover:
                prover.prove_join(scenario)
            assert len(cap.exporter.by_name(FEDERATION_SPAN)) == 1
            for name, labels in FEDERATION_METRIC_LABELS.items():
                if name == "repro_federation_workloads_total":
                    continue  # only the sketch workloads emit it
                assert cap.registry.label_names(name) == labels, name
            joins = cap.registry.get("repro_federation_joins_total")
            assert joins.value(outcome="ok") == 1
            assert joins.value(outcome="abort") == 0
            providers = cap.registry.get("repro_federation_providers")
            assert providers.value() == 2

    def test_workloads_counter_labelled_by_kind(self):
        from repro.federation import (
            build_federation_scenario,
            prove_ddos_attestation,
            prove_heavy_hitters,
        )
        scenario = build_federation_scenario(num_providers=2,
                                             num_flows=8, seed=3)
        scenario.aggregate_and_publish()
        with obs.capture() as cap:
            hitters = prove_heavy_hitters(scenario, top_k=3)
            prove_ddos_attestation(scenario, threshold=1,
                                   hitters=hitters)
            counter = cap.registry.get(
                "repro_federation_workloads_total")
            assert counter.value(kind="heavy-hitters") == 1
            assert counter.value(kind="ddos") == 1
            assert cap.registry.label_names(
                "repro_federation_workloads_total") == ("kind",)

    def test_default_service_emits_no_federation_names(self):
        store, bulletin, _ = make_committed_records(20)
        service = ProverService(store, bulletin)
        with obs.capture() as cap:
            service.aggregate_all_committed()
            for name in FEDERATION_METRIC_LABELS:
                assert cap.registry.get(name) is None, name
            assert cap.exporter.by_name(FEDERATION_SPAN) == []
