"""Unit tests for windows, the bulletin board and the committer."""

import pytest

from repro.commitments import (
    BulletinBoard,
    Commitment,
    RouterCommitter,
    WindowConfig,
    window_digest,
)
from repro.errors import (
    ConfigurationError,
    IntegrityError,
    MissingCommitment,
)
from repro.hashing import sha256
from repro.netflow.clock import SimClock
from repro.storage import MemoryLogStore

from ..conftest import make_record


class TestWindowConfig:
    def test_index_for(self):
        window = WindowConfig(interval_ms=5_000)
        assert window.index_for(0) == 0
        assert window.index_for(4_999) == 0
        assert window.index_for(5_000) == 1
        assert window.index_for(12_345) == 2

    def test_bounds(self):
        window = WindowConfig(interval_ms=5_000)
        assert window.start_of(2) == 10_000
        assert window.end_of(2) == 15_000

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            WindowConfig(interval_ms=0)

    def test_window_digest_order_sensitive(self):
        assert window_digest([b"a", b"b"]) != window_digest([b"b", b"a"])


class TestBulletinBoard:
    def make(self, router="r1", window=0, digest=None):
        return Commitment(router_id=router, window_index=window,
                          digest=digest or sha256(b"w"),
                          record_count=3, published_at_ms=5_000)

    def test_publish_and_get(self):
        board = BulletinBoard()
        commitment = self.make()
        board.publish(commitment)
        assert board.get("r1", 0) == commitment
        assert len(board) == 1

    def test_missing_raises(self):
        with pytest.raises(MissingCommitment):
            BulletinBoard().get("r1", 0)
        assert BulletinBoard().try_get("r1", 0) is None

    def test_idempotent_republish(self):
        board = BulletinBoard()
        board.publish(self.make())
        board.publish(self.make())
        assert len(board) == 1

    def test_equivocation_rejected(self):
        board = BulletinBoard()
        board.publish(self.make(digest=sha256(b"original")))
        with pytest.raises(IntegrityError, match="equivocation"):
            board.publish(self.make(digest=sha256(b"rewritten")))

    def test_for_window(self):
        board = BulletinBoard()
        board.publish(self.make(router="r1", window=3))
        board.publish(self.make(router="r2", window=3))
        board.publish(self.make(router="r1", window=4))
        assert set(board.for_window(3)) == {"r1", "r2"}

    def test_windows_sorted(self):
        board = BulletinBoard()
        board.publish(self.make(window=7))
        board.publish(self.make(window=2))
        assert board.windows() == [2, 7]

    def test_iteration_order(self):
        board = BulletinBoard()
        first = self.make(window=7)
        second = self.make(window=2)
        board.publish(first)
        board.publish(second)
        assert list(board) == [first, second]

    def test_commitment_wire_roundtrip(self):
        commitment = self.make()
        assert Commitment.from_wire(commitment.to_wire()) == commitment


class TestRouterCommitter:
    def make_committer(self, interval_ms=5_000):
        store = MemoryLogStore()
        board = BulletinBoard()
        clock = SimClock()
        committer = RouterCommitter("r1", store, board, clock,
                                    WindowConfig(interval_ms))
        return committer, store, board, clock

    def test_records_buffer_until_window_rolls(self):
        committer, store, board, clock = self.make_committer()
        committer.add_record(make_record())
        assert committer.pending_count == 1
        assert len(board) == 0
        clock.advance_ms(5_000)
        commitment = committer.maybe_commit()
        assert commitment is not None
        assert commitment.window_index == 0
        assert committer.pending_count == 0
        assert board.get("r1", 0).digest == \
            window_digest(store.window_blobs("r1", 0))

    def test_maybe_commit_noop_within_window(self):
        committer, *_ = self.make_committer()
        committer.add_record(make_record())
        assert committer.maybe_commit() is None

    def test_add_record_rolls_window_automatically(self):
        committer, store, board, clock = self.make_committer()
        committer.add_record(make_record())
        clock.advance_ms(5_000)
        committer.add_record(make_record(sport=2000))
        assert board.try_get("r1", 0) is not None
        assert committer.pending_count == 1  # the new window's record

    def test_flush(self):
        committer, _store, board, _clock = self.make_committer()
        committer.add_records([make_record(), make_record(sport=2)])
        commitment = committer.flush()
        assert commitment is not None
        assert commitment.record_count == 2
        assert committer.committed_windows == [0]

    def test_flush_empty_is_none(self):
        committer, *_ = self.make_committer()
        assert committer.flush() is None

    def test_empty_window_publishes_nothing(self):
        committer, _store, board, clock = self.make_committer()
        committer.add_record(make_record())
        clock.advance_ms(20_000)
        committer.maybe_commit()
        assert len(board) == 1  # only the non-empty window

    def test_commitment_binds_exact_bytes(self):
        committer, store, board, clock = self.make_committer()
        record = make_record()
        committer.add_record(record)
        clock.advance_ms(5_000)
        committer.maybe_commit()
        # Tamper the store: the published digest no longer matches.
        store.overwrite_raw("r1", 0, 0,
                            record.with_updates(packets=1).to_bytes())
        assert window_digest(store.window_blobs("r1", 0)) != \
            board.get("r1", 0).digest
