"""Unit tests for the guest environment and cycle metering."""

import pytest

from repro.errors import ConfigurationError
from repro.hashing import sha256, tagged_hash
from repro.merkle.hasher import default_hasher
from repro.zkvm import GuestEnv, GuestProgram, guest_program
from repro.zkvm.guest import GuestAbortSignal, compute_image_id
from repro.zkvm import cycles as cy
from repro.serialization import encode


def env_with(*values) -> GuestEnv:
    return GuestEnv(tuple(encode(v) for v in values))


class TestGuestIO:
    def test_read_returns_values_in_order(self):
        env = env_with(1, "two", [3])
        assert env.read() == 1
        assert env.read() == "two"
        assert env.read() == [3]
        assert env.frames_remaining == 0

    def test_read_past_end_aborts(self):
        env = env_with()
        with pytest.raises(GuestAbortSignal):
            env.read()

    def test_commit_builds_journal(self):
        env = env_with()
        env.commit({"x": 1})
        env.commit("done")
        assert env.journal_data == encode({"x": 1}) + encode("done")

    def test_io_charges_cycles(self):
        env = env_with(list(range(100)))
        before = env.meter.total
        env.read()
        assert env.meter.total > before
        assert env.meter.by_category["io"] > 0


class TestGuestHashing:
    def test_sha256_matches_host(self):
        env = env_with()
        assert env.sha256(b"data") == sha256(b"data")

    def test_tagged_hash_matches_host(self):
        env = env_with()
        assert env.tagged_hash("t", b"a", b"b") == tagged_hash("t", b"a",
                                                               b"b")

    def test_hash_charges_per_block(self):
        env = env_with()
        base = env.meter.total
        env.sha256(b"x" * 55)  # one compression
        one = env.meter.total - base
        env.sha256(b"x" * 119)  # two compressions
        two = env.meter.total - base - one
        assert one == cy.SHA256_COMPRESS_CYCLES
        assert two == 2 * cy.SHA256_COMPRESS_CYCLES

    def test_sha_compression_counter(self):
        env = env_with()
        env.sha256(b"x" * 119)
        assert env.meter.sha_compressions == 2

    def test_category_accounting(self):
        env = env_with()
        env.sha256(b"x", category="merkle")
        env.tick(10, category="custom")
        assert env.meter.by_category["merkle"] == \
            cy.SHA256_COMPRESS_CYCLES
        assert env.meter.by_category["custom"] == 10

    def test_metered_merkle_hasher_matches_default(self):
        env = env_with()
        metered = env.merkle_hasher()
        host = default_hasher()
        assert metered.leaf(b"x") == host.leaf(b"x")
        left, right = sha256(b"l"), sha256(b"r")
        assert metered.node(left, right) == host.node(left, right)
        assert metered.empty() == host.empty()
        assert env.meter.by_category["merkle"] > 0

    def test_hash_many_matches_host(self):
        from repro.hashing import hash_many
        env = env_with()
        items = [b"a", b"bb"]
        assert env.hash_many("t", items) == hash_many("t", items)


class TestGuestControl:
    def test_abort_raises_signal(self):
        env = env_with()
        with pytest.raises(GuestAbortSignal, match="boom"):
            env.abort("boom")

    def test_negative_tick_rejected(self):
        env = env_with()
        with pytest.raises(ConfigurationError):
            env.tick(-1)

    def test_verify_records_assumption(self):
        env = env_with()
        claim, image = sha256(b"claim"), sha256(b"image")
        env.verify(image, claim)
        assert len(env.assumptions) == 1
        assert env.assumptions[0].claim_digest == claim
        assert env.assumptions[0].image_id == image
        assert env.meter.by_category["verify"] == cy.ASSUMPTION_CYCLES


class TestGuestProgram:
    def test_image_id_depends_on_source(self):
        def f1(env):
            env.commit(1)

        def f2(env):
            env.commit(2)

        assert compute_image_id(f1, "p") != compute_image_id(f2, "p")

    def test_image_id_depends_on_name(self):
        def fn(env):
            env.commit(1)

        assert compute_image_id(fn, "a") != compute_image_id(fn, "b")

    def test_image_id_stable(self):
        def fn(env):
            env.commit(1)

        assert compute_image_id(fn, "p") == compute_image_id(fn, "p")

    def test_decorator(self):
        @guest_program("named")
        def prog(env):
            env.commit(1)

        assert isinstance(prog, GuestProgram)
        assert prog.name == "named"

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            GuestProgram("not callable")  # type: ignore[arg-type]
