"""Unit tests for the statistics helpers."""

import random

import pytest

from repro.analysis import compare_distributions, percentile, summarize
from repro.errors import ConfigurationError


class TestPercentile:
    def test_basic_points(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 50) == 3
        assert percentile(data, 100) == 5

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_single_sample(self):
        assert percentile([7], 90) == 7

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1], 101)


class TestSummarize:
    def test_summary_fields(self):
        rng = random.Random(0)
        data = [rng.gauss(100, 10) for _ in range(2_000)]
        summary = summarize(data)
        assert summary.count == 2_000
        assert summary.mean == pytest.approx(100, abs=1)
        assert summary.stdev == pytest.approx(10, abs=1)
        assert summary.p50 < summary.p90 < summary.p99

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestKS:
    def test_same_distribution_equivalent(self):
        rng = random.Random(42)
        a = [rng.gauss(0, 1) for _ in range(400)]
        b = [rng.gauss(0, 1) for _ in range(400)]
        verdict = compare_distributions(a, b, alpha=0.01)
        assert verdict.equivalent
        assert verdict.p_value > 0.01

    def test_shifted_distribution_detected(self):
        rng = random.Random(42)
        a = [rng.gauss(0, 1) for _ in range(400)]
        b = [rng.gauss(2, 1) for _ in range(400)]
        verdict = compare_distributions(a, b, alpha=0.01)
        assert not verdict.equivalent
        assert verdict.statistic > 0.5

    def test_mean_ratio(self):
        verdict = compare_distributions([10.0] * 5 + [10.1] * 5,
                                        [5.0] * 5 + [5.1] * 5)
        assert verdict.mean_ratio == pytest.approx(2.0, rel=0.02)

    def test_needs_samples(self):
        with pytest.raises(ConfigurationError):
            compare_distributions([1.0], [1.0, 2.0])
