"""Unit tests for the aggregation chain ledger."""

import pytest

from repro.commitments import window_digest
from repro.core.aggregation import Aggregator, RouterWindowInput
from repro.core.chain import AggregationChain, ChainLink
from repro.core.clog import CLogState
from repro.errors import ChainError

from ..conftest import make_record


def round_result(state=None, prev=None, sport=1000, window=0):
    records = [make_record(sport=sport)]
    blobs = tuple(r.to_bytes() for r in records)
    inputs = [RouterWindowInput(
        router_id="r1", window_index=window,
        commitment=window_digest(list(blobs)), blobs=blobs)]
    return Aggregator().aggregate(state or CLogState(), inputs, prev)


def link_for(result):
    return ChainLink(round=result.round, receipt=result.receipt,
                     new_root=result.new_root,
                     size=len(result.new_state),
                     record_count=result.record_count)


class TestChain:
    def test_append_sequential_rounds(self):
        chain = AggregationChain()
        first = round_result()
        chain.append(link_for(first))
        second = round_result(first.new_state, first.receipt,
                              sport=2000, window=1)
        chain.append(link_for(second))
        assert len(chain) == 2
        assert chain.latest.round == 1
        assert chain[0].new_root == first.new_root
        assert chain.receipts() == [first.receipt, second.receipt]

    def test_round_gap_rejected(self):
        chain = AggregationChain()
        first = round_result()
        second = round_result(first.new_state, first.receipt,
                              sport=2000, window=1)
        with pytest.raises(ChainError, match="expected 0"):
            chain.append(link_for(second))

    def test_wrong_prev_root_rejected(self):
        chain = AggregationChain()
        first = round_result(sport=1000)
        other_genesis = round_result(sport=9999)
        chain.append(link_for(first))
        # Second round built on the *other* genesis does not extend.
        second = round_result(other_genesis.new_state,
                              other_genesis.receipt, sport=2000,
                              window=1)
        with pytest.raises(ChainError, match="prev_root"):
            chain.append(link_for(second))

    def test_latest_on_empty_chain(self):
        with pytest.raises(ChainError, match="empty"):
            AggregationChain().latest

    def test_iteration(self):
        chain = AggregationChain()
        first = round_result()
        chain.append(link_for(first))
        assert [link.round for link in chain] == [0]

    def test_journal_header_access(self):
        first = round_result()
        link = link_for(first)
        assert link.journal_header["new_root"] == first.new_root
