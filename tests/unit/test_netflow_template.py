"""Unit tests for NetFlow v9 templates."""

import pytest

from repro.errors import SerializationError
from repro.netflow.template import (
    FieldType,
    STANDARD_TEMPLATE,
    Template,
    TemplateField,
)

from ..conftest import make_record


class TestTemplateStructure:
    def test_standard_template_id_in_data_range(self):
        assert STANDARD_TEMPLATE.template_id >= 256

    def test_record_length(self):
        assert STANDARD_TEMPLATE.record_length == \
            sum(f.length for f in STANDARD_TEMPLATE.fields)

    def test_template_id_range_enforced(self):
        fields = (TemplateField(FieldType.PROTOCOL, 1),)
        with pytest.raises(SerializationError):
            Template(template_id=255, fields=fields)
        with pytest.raises(SerializationError):
            Template(template_id=70000, fields=fields)

    def test_empty_template_rejected(self):
        with pytest.raises(SerializationError):
            Template(template_id=300, fields=())

    def test_odd_field_length_rejected(self):
        with pytest.raises(SerializationError):
            TemplateField(FieldType.PROTOCOL, 3)

    def test_template_encode_decode(self):
        templates = list(Template.decode_all(STANDARD_TEMPLATE.encode()))
        assert templates == [STANDARD_TEMPLATE]

    def test_multiple_templates_in_one_flowset(self):
        t2 = Template(template_id=400,
                      fields=(TemplateField(FieldType.IN_PKTS, 4),))
        body = STANDARD_TEMPLATE.encode() + t2.encode()
        assert list(Template.decode_all(body)) == [STANDARD_TEMPLATE, t2]

    def test_unknown_field_type_rejected(self):
        import struct
        body = struct.pack(">HHHH", 300, 1, 9999, 4)
        with pytest.raises(SerializationError):
            list(Template.decode_all(body))

    def test_truncated_template_rejected(self):
        body = STANDARD_TEMPLATE.encode()[:-2]
        with pytest.raises(SerializationError):
            list(Template.decode_all(body))


class TestRecordCodec:
    def test_roundtrip_preserves_all_fields(self):
        record = make_record(tcp_flags=0x1B, input_if=4, output_if=9,
                             next_hop="10.0.0.254", hop_count=3,
                             lost_packets=7, rtt_us=12_345,
                             jitter_us=678)
        data = STANDARD_TEMPLATE.encode_record(record)
        assert len(data) == STANDARD_TEMPLATE.record_length
        decoded = STANDARD_TEMPLATE.decode_record(data, router_id="r1")
        assert decoded.key == record.key
        assert decoded.packets == record.packets
        assert decoded.octets == record.octets
        assert decoded.tcp_flags == record.tcp_flags
        assert decoded.input_if == record.input_if
        assert decoded.output_if == record.output_if
        assert decoded.next_hop == record.next_hop
        assert decoded.hop_count == record.hop_count
        assert decoded.lost_packets == record.lost_packets
        assert decoded.rtt_us == record.rtt_us
        assert decoded.jitter_us == record.jitter_us
        assert decoded.router_id == "r1"

    def test_sys_uptime_relative_timestamps(self):
        record = make_record(first_switched_ms=10_000,
                             last_switched_ms=12_000)
        data = STANDARD_TEMPLATE.encode_record(record,
                                               sys_uptime_ms=9_000)
        decoded = STANDARD_TEMPLATE.decode_record(data,
                                                  sys_uptime_ms=9_000)
        assert decoded.first_switched_ms == 10_000
        assert decoded.last_switched_ms == 12_000

    def test_counter_wraparound(self):
        record = make_record(octets=2**40)  # exceeds the 4-byte field
        data = STANDARD_TEMPLATE.encode_record(record)
        decoded = STANDARD_TEMPLATE.decode_record(data)
        assert decoded.octets == 2**40 % 2**32

    def test_wrong_length_rejected(self):
        record = make_record()
        data = STANDARD_TEMPLATE.encode_record(record)
        with pytest.raises(SerializationError):
            STANDARD_TEMPLATE.decode_record(data[:-1])

    def test_partial_template_defaults(self):
        minimal = Template(
            template_id=500,
            fields=(TemplateField(FieldType.IPV4_SRC_ADDR, 4),
                    TemplateField(FieldType.IPV4_DST_ADDR, 4),
                    TemplateField(FieldType.IN_PKTS, 4)),
        )
        record = make_record()
        decoded = minimal.decode_record(minimal.encode_record(record))
        assert decoded.key.src_addr == record.key.src_addr
        assert decoded.packets == record.packets
        assert decoded.hop_count == 1  # default
