"""Unit tests for the cycle-cost helpers."""

import pytest

from repro.zkvm import cycles as cy


class TestShaCycles:
    def test_single_block(self):
        assert cy.sha256_cycles(0) == cy.SHA256_COMPRESS_CYCLES
        assert cy.sha256_cycles(55) == cy.SHA256_COMPRESS_CYCLES

    def test_block_boundary(self):
        assert cy.sha256_cycles(56) == 2 * cy.SHA256_COMPRESS_CYCLES

    def test_midstate_flag(self):
        assert cy.sha256_cycles(10, midstate=False) == \
            cy.sha256_cycles(10) + cy.SHA256_COMPRESS_CYCLES

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cy.sha256_cycles(-1)


class TestIoCycles:
    def test_word_rounding(self):
        assert cy.words_for_bytes(0) == 0
        assert cy.words_for_bytes(1) == 1
        assert cy.words_for_bytes(4) == 1
        assert cy.words_for_bytes(5) == 2

    def test_io_cost(self):
        assert cy.io_cycles(8) == 2 * cy.IO_CYCLES_PER_WORD

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cy.words_for_bytes(-1)


class TestSegments:
    def test_zero_cycles_is_one_segment(self):
        assert cy.segment_count(0) == 1

    def test_exact_boundary(self):
        assert cy.segment_count(cy.SEGMENT_CYCLE_LIMIT) == 1
        assert cy.segment_count(cy.SEGMENT_CYCLE_LIMIT + 1) == 2

    def test_padding_is_power_of_two(self):
        for count in (1, 100, 8_193, 2**19 + 1):
            padded = cy.padded_segment_cycles(count)
            assert padded >= count
            assert padded & (padded - 1) == 0
            assert padded >= 1 << cy.SEGMENT_MIN_PO2

    def test_minimum_po2(self):
        assert cy.padded_segment_cycles(1) == 1 << cy.SEGMENT_MIN_PO2
