"""Unit tests for the sketch family."""

import pytest

from repro.errors import ConfigurationError
from repro.sketch import (
    CountMinSketch,
    CountSketch,
    HyperLogLog,
    SpaceSaving,
)


class TestCountMin:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=4)
        truth = {f"flow{i}": i + 1 for i in range(100)}
        for item, count in truth.items():
            sketch.add(item, count)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(width=4096, depth=4)
        sketch.add("a", 10)
        sketch.add("b", 20)
        assert sketch.estimate("a") == 10
        assert sketch.estimate("b") == 20
        assert sketch.total == 30

    def test_merge_equals_union(self):
        a = CountMinSketch(width=128, depth=3, seed=5)
        b = CountMinSketch(width=128, depth=3, seed=5)
        union = CountMinSketch(width=128, depth=3, seed=5)
        for i in range(50):
            a.add(f"x{i}")
            union.add(f"x{i}")
        for i in range(50):
            b.add(f"y{i}")
            union.add(f"y{i}")
        a.merge(b)
        assert a.to_state() == union.to_state()
        assert a.digest() == union.digest()

    def test_merge_config_mismatch(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=64).merge(CountMinSketch(width=128))

    def test_state_roundtrip_and_digest(self):
        sketch = CountMinSketch(width=32, depth=2)
        sketch.add("flow", 7)
        restored = CountMinSketch.from_state(sketch.to_state())
        assert restored.estimate("flow") == 7
        assert restored.digest() == sketch.digest()

    def test_digest_changes_with_content(self):
        a = CountMinSketch(width=32, depth=2)
        b = CountMinSketch(width=32, depth=2)
        a.add("x")
        assert a.digest() != b.digest()

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch().add("x", -1)


class TestCountSketch:
    def test_roughly_unbiased(self):
        sketch = CountSketch(width=512, depth=5)
        for i in range(200):
            sketch.add(f"bg{i}", 2)
        sketch.add("heavy", 500)
        assert sketch.estimate("heavy") == pytest.approx(500, rel=0.1)

    def test_merge(self):
        a = CountSketch(width=64, depth=3)
        b = CountSketch(width=64, depth=3)
        a.add("x", 5)
        b.add("x", 7)
        a.merge(b)
        assert a.estimate("x") == 12
        assert a.total == 12

    def test_state_roundtrip(self):
        sketch = CountSketch(width=32, depth=3)
        sketch.add("x", 9)
        restored = CountSketch.from_state(sketch.to_state())
        assert restored.digest() == sketch.digest()


class TestHyperLogLog:
    def test_cardinality_within_error(self):
        hll = HyperLogLog(precision=12)
        n = 20_000
        for i in range(n):
            hll.add(i)
        assert hll.estimate() == pytest.approx(n, rel=0.05)

    def test_duplicates_ignored(self):
        hll = HyperLogLog(precision=10)
        for _ in range(1_000):
            hll.add("same")
        assert hll.estimate() == pytest.approx(1, abs=1)

    def test_small_range_correction(self):
        hll = HyperLogLog(precision=10)
        for i in range(10):
            hll.add(i)
        assert hll.estimate() == pytest.approx(10, abs=2)

    def test_merge_equals_union(self):
        a = HyperLogLog(precision=10)
        b = HyperLogLog(precision=10)
        union = HyperLogLog(precision=10)
        for i in range(2_000):
            (a if i % 2 else b).add(i)
            union.add(i)
        a.merge(b)
        assert a.estimate() == union.estimate()

    def test_precision_bounds(self):
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=3)
        with pytest.raises(ConfigurationError):
            HyperLogLog(precision=19)

    def test_state_roundtrip(self):
        hll = HyperLogLog(precision=8)
        hll.add("x")
        assert HyperLogLog.from_state(hll.to_state()).digest() == \
            hll.digest()


class TestSpaceSaving:
    def test_heavy_hitters_found(self):
        sketch = SpaceSaving(capacity=10)
        for i in range(100):
            sketch.add(f"mouse{i}", 1)
        sketch.add("elephant", 500)
        sketch.add("hippo", 300)
        top = [item for item, _count in sketch.top(2)]
        assert top == [b"elephant", b"hippo"]

    def test_estimate_upper_bound(self):
        sketch = SpaceSaving(capacity=2)
        sketch.add("a", 10)
        sketch.add("b", 5)
        sketch.add("c", 1)  # evicts b, inherits count 5
        assert sketch.estimate("c") >= 1
        assert sketch.guaranteed("c") == 1

    def test_total_exact(self):
        sketch = SpaceSaving(capacity=2)
        for i in range(20):
            sketch.add(i, 3)
        assert sketch.total == 60

    def test_deterministic_across_instances(self):
        def build():
            sketch = SpaceSaving(capacity=3)
            for i in range(30):
                sketch.add(f"k{i % 7}", i)
            return sketch
        assert build().digest() == build().digest()

    def test_state_roundtrip(self):
        sketch = SpaceSaving(capacity=3)
        sketch.add("x", 5)
        sketch.add("y", 2)
        restored = SpaceSaving.from_state(sketch.to_state())
        assert restored.digest() == sketch.digest()
        assert restored.estimate("x") == 5
