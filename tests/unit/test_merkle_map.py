"""Unit tests for the keyed Merkle map."""

import pytest

from repro.errors import MerkleError
from repro.merkle import MerkleMap


class TestBasics:
    def test_insert_and_get(self):
        m = MerkleMap()
        m.set("flow-a", b"payload-a")
        assert "flow-a" in m
        assert m.payload("flow-a") == b"payload-a"
        assert len(m) == 1

    def test_update_in_place_keeps_slot(self):
        m = MerkleMap()
        slot_a = m.set("a", b"1")
        m.set("b", b"2")
        slot_a2 = m.set("a", b"1-updated")
        assert slot_a == slot_a2
        assert m.payload("a") == b"1-updated"

    def test_root_changes_on_update(self):
        m = MerkleMap()
        m.set("a", b"1")
        before = m.root
        m.set("a", b"2")
        assert m.root != before

    def test_unknown_key_raises(self):
        m = MerkleMap()
        with pytest.raises(MerkleError):
            m.payload("missing")
        with pytest.raises(MerkleError):
            m.index_of("missing")
        assert m.get("missing") is None

    def test_iteration(self):
        m = MerkleMap()
        m.update_many({"a": b"1", "b": b"2"})
        assert set(m.keys()) == {"a", "b"}
        assert dict(m.items()) == {"a": b"1", "b": b"2"}


class TestAuthentication:
    def test_proofs_bind_key_and_value(self):
        m = MerkleMap()
        m.set("a", b"1")
        m.set("b", b"2")
        proof = m.prove("a")
        proof.verify(m.root)
        # The leaf covers key bytes + payload.
        assert proof.leaf == m.expected_leaf("a", b"1")
        assert proof.leaf != m.expected_leaf("b", b"1")
        assert proof.leaf != m.expected_leaf("a", b"2")

    def test_same_content_same_root(self):
        m1, m2 = MerkleMap(), MerkleMap()
        for m in (m1, m2):
            m.set("a", b"1")
            m.set("b", b"2")
        assert m1.root == m2.root

    def test_insert_order_affects_root(self):
        m1, m2 = MerkleMap(), MerkleMap()
        m1.set("a", b"1")
        m1.set("b", b"2")
        m2.set("b", b"2")
        m2.set("a", b"1")
        assert m1.root != m2.root  # slots are positional

    def test_snapshot(self):
        m = MerkleMap()
        m.set("a", b"1")
        snap = m.snapshot()
        m.set("b", b"2")
        assert snap.root != m.root
        assert snap.size == 1
        assert snap.slot_of("a") == 0
        assert snap.slot_of("b") is None


class TestKeyBytes:
    def test_bytes_str_int_keys(self):
        m = MerkleMap()
        m.set(b"raw", b"1")
        m.set("text", b"2")
        m.set(12345, b"3")
        m.set(-7, b"4")
        assert len(m) == 4
        for key in (b"raw", "text", 12345, -7):
            m.prove(key).verify(m.root)

    def test_object_with_to_bytes_key(self):
        class Keyed:
            def to_bytes_key(self):
                return b"custom"

        m = MerkleMap()
        key = Keyed()
        m.set(key, b"v")
        m.prove(key).verify(m.root)

    def test_unsupported_key_type(self):
        m = MerkleMap()
        with pytest.raises(MerkleError):
            m.set(3.14, b"v")

    def test_custom_key_bytes_fn(self):
        m = MerkleMap(key_bytes=lambda k: str(k).upper().encode())
        m.set("ab", b"1")
        assert m.expected_leaf("ab", b"1") == \
            m._hasher.leaf(b"AB" + b"1")
