"""Unit tests for parallel (partitioned) aggregation."""

import pytest

from repro.commitments import window_digest
from repro.core.aggregation import RouterWindowInput
from repro.core.guest_programs import merge_guest
from repro.core.parallel import ParallelAggregator
from repro.core.policy import AggOp, AggregationPolicy
from repro.errors import ConfigurationError, GuestAbort
from repro.hashing import sha256
from repro.zkvm import verify_receipt
from repro.zkvm.costmodel import CostModel

from ..conftest import make_record


def inputs_for(records_by_router):
    inputs = []
    for router_id, records in sorted(records_by_router.items()):
        blobs = tuple(r.to_bytes() for r in records)
        inputs.append(RouterWindowInput(
            router_id=router_id, window_index=0,
            commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


@pytest.fixture
def four_router_inputs():
    return inputs_for({
        f"r{i}": [make_record(router_id=f"r{i}", sport=1000 + j)
                  for j in range(3)]
        for i in range(1, 5)
    })


class TestParallelAggregation:
    def test_produces_verifiable_receipt(self, four_router_inputs):
        result = ParallelAggregator().aggregate(four_router_inputs)
        verify_receipt(result.receipt, merge_guest.image_id)
        assert result.size == 3  # 3 distinct flows across 4 routers
        assert len(result.partition_infos) == 4

    def test_matches_sequential_aggregation_content(self,
                                                    four_router_inputs):
        """Partitioned merge must combine to the same per-flow values a
        sequential aggregation produces (associative policy)."""
        from repro.core.aggregation import Aggregator
        from repro.core.clog import CLogState
        sequential = Aggregator().aggregate(CLogState(),
                                            four_router_inputs, None)
        parallel = ParallelAggregator().aggregate(four_router_inputs)
        seq_entries = {e.key: e for e in
                       sequential.new_state.entries_in_slot_order()}
        # Decode parallel journal partials indirectly via size check +
        # root determinism across runs.
        again = ParallelAggregator().aggregate(four_router_inputs)
        assert parallel.new_root == again.new_root
        assert parallel.size == len(seq_entries)

    def test_partition_count_clamped(self, four_router_inputs):
        result = ParallelAggregator().aggregate(four_router_inputs,
                                                num_partitions=100)
        assert len(result.partition_infos) == 4  # one per router max

    def test_fewer_partitions_than_routers(self, four_router_inputs):
        result = ParallelAggregator().aggregate(four_router_inputs,
                                                num_partitions=2)
        assert len(result.partition_infos) == 2
        verify_receipt(result.receipt, merge_guest.image_id)

    def test_modeled_speedup(self, four_router_inputs):
        result = ParallelAggregator().aggregate(four_router_inputs)
        model = CostModel()
        assert result.modeled_seconds(model) < \
            result.sequential_seconds(model)

    def test_modeled_seconds_is_critical_path_not_sum(
            self, four_router_inputs):
        """The parallel model is max(partitions) + merge; the sum of
        partition times belongs to sequential_seconds only."""
        result = ParallelAggregator().aggregate(four_router_inputs)
        model = CostModel()
        partition_times = [model.prove_seconds(info.stats)
                           for info in result.partition_infos]
        merge_time = model.prove_seconds(result.merge_info.stats)
        assert result.modeled_seconds(model) == pytest.approx(
            max(partition_times) + merge_time)
        assert result.sequential_seconds(model) == pytest.approx(
            sum(partition_times) + merge_time)

    def test_single_partition_degenerates_to_sequential(
            self, four_router_inputs):
        """With one partition there is no parallelism to exploit:
        modeled and sequential latency coincide."""
        result = ParallelAggregator().aggregate(four_router_inputs,
                                                num_partitions=1)
        assert len(result.partition_infos) == 1
        model = CostModel()
        assert result.modeled_seconds(model) == pytest.approx(
            result.sequential_seconds(model))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelAggregator().aggregate([])

    def test_bad_partition_count(self, four_router_inputs):
        with pytest.raises(ConfigurationError):
            ParallelAggregator().aggregate(four_router_inputs,
                                           num_partitions=0)

    def test_tampered_partition_aborts(self, four_router_inputs):
        forged = [four_router_inputs[0]] + [
            RouterWindowInput(router_id=i.router_id,
                              window_index=i.window_index,
                              commitment=sha256(b"nope"), blobs=i.blobs)
            for i in four_router_inputs[1:2]
        ] + four_router_inputs[2:]
        with pytest.raises(GuestAbort):
            ParallelAggregator().aggregate(forged)

    def test_non_associative_policy_fails(self, four_router_inputs):
        policy = AggregationPolicy(packets=AggOp.LAST)
        with pytest.raises((ConfigurationError, GuestAbort)):
            ParallelAggregator(policy=policy).aggregate(
                four_router_inputs)


class TestConstructorValidation:
    """Bad configuration must fail at construction — before any pool
    or worker is spun up — identically on every backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_zero_partitions_rejected_in_constructor(self, backend):
        with pytest.raises(ConfigurationError):
            ParallelAggregator(num_partitions=0, backend=backend)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_negative_partitions_rejected_in_constructor(self, backend):
        with pytest.raises(ConfigurationError):
            ParallelAggregator(num_partitions=-3, backend=backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelAggregator(backend="quantum")

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_constructor_partitions_used_by_aggregate(
            self, backend, four_router_inputs):
        result = ParallelAggregator(
            num_partitions=2, backend=backend).aggregate(
                four_router_inputs)
        assert len(result.partition_infos) == 2

    def test_receipt_cache_shared_across_aggregate_calls(
            self, four_router_inputs):
        """The aggregator's cache persists across rounds: a repeated
        identical round replays every proof."""
        aggregator = ParallelAggregator(backend="serial")
        cold = aggregator.aggregate(four_router_inputs)
        warm = aggregator.aggregate(four_router_inputs)
        assert warm.receipt.to_wire() == cold.receipt.to_wire()
        assert all(info.cached for info in warm.partition_infos)
        assert warm.merge_info.cached
