"""Unit tests for sampled NetFlow."""

import pytest

from repro.errors import ConfigurationError
from repro.netflow.sampling import (
    SamplingEstimator,
    estimate_record,
    sample_record,
)

from ..conftest import make_record


def population(n=200, packets=1_000):
    return [make_record(sport=1000 + i, packets=packets,
                        octets=packets * 100, lost_packets=packets // 50)
            for i in range(n)]


class TestSampleRecord:
    def test_rate_one_is_identity(self):
        record = make_record()
        assert sample_record(record, 1) is record

    def test_sampling_reduces_counters(self):
        record = make_record(packets=10_000, octets=1_000_000)
        sampled = sample_record(record, 100)
        assert sampled is not None
        assert sampled.packets < record.packets
        assert sampled.octets < record.octets
        assert sampled.key == record.key

    def test_short_flows_can_vanish(self):
        tiny = [make_record(sport=i, packets=1, octets=100,
                            lost_packets=0)
                for i in range(1000, 1200)]
        surviving = [r for r in tiny
                     if sample_record(r, 64) is not None]
        # 1-packet flows survive 1-in-64 sampling ~1.6% of the time.
        assert len(surviving) < len(tiny) * 0.2

    def test_deterministic(self):
        record = make_record(packets=5_000)
        assert sample_record(record, 10) == sample_record(record, 10)

    def test_seed_changes_outcome(self):
        record = make_record(packets=5_000)
        a = sample_record(record, 10, seed=1)
        b = sample_record(record, 10, seed=2)
        assert a != b

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            sample_record(make_record(), 0)


class TestEstimation:
    def test_scale_up(self):
        record = make_record(packets=50, octets=5_000, lost_packets=2)
        estimated = estimate_record(record, 10)
        assert estimated.packets == 500
        assert estimated.octets == 50_000
        assert estimated.lost_packets == 20

    def test_population_estimate_unbiased(self):
        records = population(n=300, packets=2_000)
        error = SamplingEstimator(rate=16, seed=4).evaluate(records)
        assert error.packet_relative_error < 0.05

    def test_higher_rate_more_error_and_less_visibility(self):
        records = population(n=150, packets=50)
        low = SamplingEstimator(rate=4, seed=1).evaluate(records)
        high = SamplingEstimator(rate=256, seed=1).evaluate(records)
        assert high.flow_visibility <= low.flow_visibility
        assert low.flow_visibility > 0.9

    def test_visibility_of_empty_population(self):
        error = SamplingEstimator(rate=8).evaluate([])
        assert error.flow_visibility == 1.0
        assert error.packet_relative_error == 0.0


class TestSampledCommitmentPipeline:
    def test_sampled_records_commit_and_aggregate(self):
        """Sampling happens before commitment: the committed window is
        the sampled one, and the pipeline runs unchanged."""
        from repro.commitments import (BulletinBoard, Commitment,
                                       window_digest)
        from repro.core.prover_service import ProverService
        from repro.storage import MemoryLogStore
        sampler = SamplingEstimator(rate=4, seed=2)
        sampled = sampler.sample_all(population(n=60, packets=400))
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        store.append_records("r1", 0, sampled)
        bulletin.publish(Commitment(
            "r1", 0, window_digest([r.to_bytes() for r in sampled]),
            len(sampled), 5_000))
        service = ProverService(store, bulletin)
        result = service.aggregate_window(0)
        assert len(result.new_state) == len(sampled)
        response = service.answer_query(
            "SELECT SUM(packets) FROM clogs")
        # Scale-up happens at analysis time.
        estimated_total = response.value() * 4
        true_total = 60 * 400
        assert estimated_total == pytest.approx(true_total, rel=0.2)
