"""Unit tests: registry/tracer mechanics (not the emission contract)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import runtime
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.tracing import InMemorySpanExporter, Tracer


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Run from a clean no-op state even under REPRO_OBS=1."""
    was_enabled = runtime.is_enabled()
    runtime.disable()
    yield
    runtime.disable()
    if was_enabled:
        runtime.enable()


class TestRegistry:
    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c", ("kind",))
        with pytest.raises(ConfigurationError):
            counter.inc()
        with pytest.raises(ConfigurationError):
            counter.inc(kind="x", extra="y")

    def test_redeclare_with_other_type_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigurationError):
            registry.gauge("m")

    def test_redeclare_with_other_labels_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", ("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("m", ("b",))

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(ConfigurationError):
            registry.histogram("h2", buckets=[])

    def test_default_buckets_are_finite(self):
        hist = MetricsRegistry().histogram("h")
        assert list(hist.buckets) == list(DEFAULT_SECONDS_BUCKETS)
        assert all(b == b and abs(b) != float("inf")
                   for b in hist.buckets)

    def test_overflow_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0, 2.0])
        hist.observe(99.0)
        assert hist.series_data()["counts"] == [0, 0, 1]

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.5)
        registry.counter("c", ("k",)).inc(k="v")
        json.dumps(registry.snapshot())  # must not raise

    def test_null_registry_is_inert(self):
        metric = NULL_REGISTRY.counter("anything", ("a", "b"))
        metric.inc()
        metric.observe(1.0)
        metric.set(3)
        metric.dec()
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": []}


class TestTracer:
    def test_exception_marks_span_and_propagates(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = exporter.spans
        assert span.attributes["error"] == "RuntimeError"

    def test_exporter_bounded_with_drop_counter(self):
        exporter = InMemorySpanExporter(max_spans=2)
        tracer = Tracer(exporter)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(exporter.spans) == 2
        assert exporter.dropped == 3

    def test_wire_form_round_trips_through_json(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter)
        with tracer.span("outer"):
            with tracer.span("inner", n=1) as span:
                span.add_cycles(10)
                span.add_cycles(5)
        wire = exporter.snapshot()
        assert json.loads(json.dumps(wire)) == wire
        inner = next(s for s in wire if s["name"] == "inner")
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert inner["attributes"]["cycles"] == 15


class TestRuntime:
    def test_capture_is_scoped(self):
        assert not runtime.is_enabled()
        with runtime.capture() as cap:
            assert runtime.is_enabled()
            runtime.registry().counter("c").inc()
            assert cap.registry.get("c").value() == 1
        assert not runtime.is_enabled()
        assert runtime.registry() is not cap.registry

    def test_enable_disable(self):
        try:
            handle = runtime.enable()
            assert runtime.registry() is handle.registry
            with runtime.tracer().span("s"):
                pass
            assert handle.exporter.names() == ["s"]
        finally:
            runtime.disable()
        assert not runtime.is_enabled()
