"""Unit tests for GROUP BY."""

import pytest

from repro.errors import QueryError, QuerySyntaxError
from repro.query import evaluate, parse_query
from repro.query.ast import query_from_wire


def entries():
    return [
        {"protocol": 6, "src_ip": "10.1.0.1", "packets": 100,
         "hop_count": 2},
        {"protocol": 6, "src_ip": "10.1.0.2", "packets": 50,
         "hop_count": 3},
        {"protocol": 17, "src_ip": "10.2.0.1", "packets": 10,
         "hop_count": 1},
    ]


class TestParsing:
    def test_group_by_parses(self):
        query = parse_query(
            "SELECT COUNT(*) FROM clogs GROUP BY protocol")
        assert query.is_grouped
        assert query.group_by.name == "protocol"

    def test_group_by_after_where(self):
        query = parse_query(
            "SELECT SUM(packets) FROM clogs WHERE packets > 5 "
            "GROUP BY protocol;")
        assert query.where is not None
        assert query.is_grouped

    def test_group_by_unknown_column(self):
        with pytest.raises(QuerySyntaxError, match="unknown column"):
            parse_query("SELECT COUNT(*) FROM clogs GROUP BY bogus")

    def test_group_requires_by(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT COUNT(*) FROM clogs GROUP protocol")

    def test_wire_roundtrip(self):
        query = parse_query(
            "SELECT COUNT(*), SUM(packets) FROM clogs "
            "GROUP BY src_ip")
        assert query_from_wire(query.to_wire()) == query

    def test_ungrouped_wire_backward_compatible(self):
        query = parse_query("SELECT COUNT(*) FROM clogs")
        wire = query.to_wire()
        assert wire["group_by"] is None
        assert query_from_wire(wire) == query


class TestEvaluation:
    def test_groups_partition_matches(self):
        result = evaluate(parse_query(
            "SELECT COUNT(*), SUM(packets) FROM clogs "
            "GROUP BY protocol"), entries())
        assert result.group_by == "protocol"
        assert dict(result.groups) == {6: (2, 150), 17: (1, 10)}
        assert result.matched == 3

    def test_where_applies_before_grouping(self):
        result = evaluate(parse_query(
            "SELECT COUNT(*) FROM clogs WHERE packets >= 50 "
            "GROUP BY protocol"), entries())
        assert dict(result.groups) == {6: (2,)}

    def test_group_accessor(self):
        result = evaluate(parse_query(
            "SELECT SUM(hop_count) FROM clogs GROUP BY protocol"),
            entries())
        assert result.group(6) == {"SUM(hop_count)": 5}
        with pytest.raises(QueryError):
            result.group(99)

    def test_groups_sorted_by_key(self):
        result = evaluate(parse_query(
            "SELECT COUNT(*) FROM clogs GROUP BY src_ip"), entries())
        keys = [key for key, _values in result.groups]
        assert keys == sorted(keys)

    def test_values_accessors_refused_when_grouped(self):
        result = evaluate(parse_query(
            "SELECT COUNT(*) FROM clogs GROUP BY protocol"), entries())
        with pytest.raises(QueryError):
            result.value()
        with pytest.raises(QueryError):
            result.as_dict()

    def test_empty_table(self):
        result = evaluate(parse_query(
            "SELECT COUNT(*) FROM clogs GROUP BY protocol"), [])
        assert result.groups == ()
        assert result.matched == 0


class TestProvenGroupBy:
    def test_grouped_query_proof_roundtrip(self, aggregated_system):
        system = aggregated_system
        response = system.prover.answer_query(
            "SELECT COUNT(*), SUM(lost_packets) FROM clogs "
            "GROUP BY protocol")
        chain = system.verifier.verify_chain(
            system.prover.chain.receipts())
        verified = system.verifier.verify_query(response, chain[-1])
        assert verified.group_by == "protocol"
        assert verified.groups == response.groups
        # Groups exhaust the matched set.
        assert sum(values[0] for _k, values in verified.groups) == \
            verified.matched

    def test_lying_about_groups_rejected(self, aggregated_system):
        import dataclasses
        from repro.errors import VerificationError
        system = aggregated_system
        response = system.prover.answer_query(
            "SELECT COUNT(*) FROM clogs GROUP BY protocol")
        chain = system.verifier.verify_chain(
            system.prover.chain.receipts())
        if not response.groups:
            pytest.skip("no groups in workload")
        key, values = response.groups[0]
        lying = dataclasses.replace(
            response,
            groups=((key, (values[0] + 5,)),) + response.groups[1:])
        with pytest.raises(VerificationError, match="groups"):
            system.verifier.verify_query(lying, chain[-1])
