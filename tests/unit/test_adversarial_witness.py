"""Adversarial witnesses: a malicious host cannot steer the aggregation
guest off the committed data.

These tests drive :data:`aggregation_guest` directly with hand-forged
witness ops — wrong slots, stale proofs, swapped payloads, skipped
grows — and require the guest to abort every time.  This is the
soundness surface between the (untrusted) host orchestration and the
(proven) guest execution.
"""

import pytest

from repro.commitments import window_digest
from repro.core.clog import CLogEntry, CLogState
from repro.core.guest_programs import aggregation_guest
from repro.core.policy import DEFAULT_POLICY
from repro.core.witness import build_witness
from repro.errors import GuestAbort
from repro.merkle.tree import EMPTY_ROOTS
from repro.zkvm import ExecutorEnvBuilder, Prover

from ..conftest import make_record


def run_guest(records, ops, prev_state=None, num_ops=None):
    """Assemble and prove an aggregation round with explicit ops."""
    state = prev_state or CLogState()
    blobs = [record.to_bytes() for record in records]
    builder = ExecutorEnvBuilder()
    builder.write({
        "round": 0,
        "policy": DEFAULT_POLICY.to_wire(),
        "prev_root": state.root,
        "prev_size": len(state),
        "prev_depth": state.depth,
        "num_routers": 1,
        "num_ops": num_ops if num_ops is not None else len(ops),
    })
    builder.write({
        "router_id": "r1",
        "window_index": 0,
        "commitment": window_digest(blobs),
        "blobs": blobs,
    })
    for op in ops:
        builder.write(op)
    return Prover().prove(aggregation_guest, builder.build())


def honest_ops(records):
    return [dict(op) for op in
            build_witness(CLogState(), records, DEFAULT_POLICY).ops]


class TestForgedOps:
    def test_honest_witness_accepted(self):
        records = [make_record(sport=1000), make_record(sport=2000)]
        info = run_guest(records, honest_ops(records))
        assert info.receipt is not None

    def test_insert_at_wrong_slot(self):
        records = [make_record(sport=1000)]
        ops = honest_ops(records)
        ops[0]["slot"] = 5
        with pytest.raises(GuestAbort, match="append slot"):
            run_guest(records, ops)

    def test_wrong_path_length(self):
        records = [make_record(sport=1000)]
        ops = honest_ops(records)
        ops[0]["siblings"] = [EMPTY_ROOTS[0]]
        with pytest.raises(GuestAbort, match="path length"):
            run_guest(records, ops)

    def test_skipped_grow(self):
        """Two inserts without the grow step between them."""
        records = [make_record(sport=1000), make_record(sport=2000)]
        ops = [op for op in honest_ops(records) if op["op"] != "grow"]
        with pytest.raises(GuestAbort):
            run_guest(records, ops)

    def test_update_with_forged_old_payload(self):
        """Claiming a different prior value for an existing flow (to
        reset an accumulated loss counter, say) fails the inclusion
        check against the running root."""
        base = make_record(sport=1000, lost_packets=9)
        repeat = make_record(sport=1000, router_id="r2",
                             lost_packets=1)
        records = [base, repeat]
        ops = honest_ops(records)
        assert ops[-1]["op"] == "update"
        zeroed = CLogEntry.fresh(base.with_updates(lost_packets=0))
        ops[-1]["old_payload"] = zeroed.to_payload()
        with pytest.raises(GuestAbort, match="line 17"):
            run_guest(records, ops)

    def test_update_against_stale_siblings(self):
        """Replaying round-start siblings for a later update (instead
        of the evolving intermediate tree) must fail."""
        a = make_record(sport=1000)
        b = make_record(sport=2000)
        a_again = make_record(sport=1000, router_id="r2")
        records = [a, b, a_again]
        ops = honest_ops(records)
        update = next(op for op in ops if op["op"] == "update")
        # Forge siblings: pretend flow b was never inserted.
        from repro.merkle import MerkleMap
        lone = CLogState()
        lone.set_entry(CLogEntry.fresh(a))
        stale = lone.merkle_map.prove(a.key)
        update["siblings"] = list(stale.siblings) \
            + [EMPTY_ROOTS[1]] * (len(update["siblings"])
                                  - len(stale.siblings))
        with pytest.raises(GuestAbort):
            run_guest(records, ops)
        del MerkleMap

    def test_more_ops_than_records(self):
        records = [make_record(sport=1000)]
        ops = honest_ops(records)
        extra = dict(ops[0])
        with pytest.raises(GuestAbort, match="more ops"):
            run_guest(records, ops + [extra])

    def test_fewer_ops_than_records(self):
        records = [make_record(sport=1000), make_record(sport=2000)]
        ops = honest_ops(records)[:1]
        with pytest.raises(GuestAbort, match="exhausted"):
            run_guest(records, ops)

    def test_unknown_op_kind(self):
        records = [make_record(sport=1000)]
        ops = honest_ops(records)
        ops[0]["op"] = "overwrite"
        with pytest.raises(GuestAbort, match="unknown witness op"):
            run_guest(records, ops)

    def test_grow_as_last_op(self):
        records = [make_record(sport=1000)]
        ops = honest_ops(records)
        ops.append({"op": "grow"})
        # The trailing grow leaves ops_remaining positive -> abort.
        with pytest.raises(GuestAbort):
            run_guest(records, ops)


class TestForgedPrevState:
    def test_claimed_prev_root_must_be_empty_at_genesis(self):
        records = [make_record(sport=1000)]
        state = CLogState()
        state.set_entry(CLogEntry.fresh(make_record(sport=9)))
        ops = honest_ops(records)
        with pytest.raises(GuestAbort, match="genesis"):
            run_guest(records, ops, prev_state=state)
