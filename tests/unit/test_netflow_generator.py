"""Unit tests for the traffic generator."""

import ipaddress

import pytest

from repro.errors import ConfigurationError
from repro.netflow.generator import (
    DEFAULT_PROVIDERS,
    ThrottleSpec,
    TrafficConfig,
    TrafficGenerator,
)
from repro.netflow.topology import LinkSpec, NetworkTopology


@pytest.fixture
def topology():
    return NetworkTopology.linear(
        4, LinkSpec(latency_us=2_000, jitter_us=100, loss_rate=0.05))


def generator(topology, **config_overrides):
    return TrafficGenerator(topology,
                            TrafficConfig(seed=3, **config_overrides))


class TestFlowGeneration:
    def test_deterministic_across_instances(self, topology):
        a = generator(topology).generate_flows(20, now_ms=100)
        b = generator(topology).generate_flows(20, now_ms=100)
        assert a == b

    def test_seed_changes_flows(self, topology):
        a = TrafficGenerator(topology, TrafficConfig(seed=1)) \
            .generate_flows(10)
        b = TrafficGenerator(topology, TrafficConfig(seed=2)) \
            .generate_flows(10)
        assert a != b

    def test_server_addr_in_provider_prefix(self, topology):
        for flow in generator(topology).generate_flows(50):
            net = ipaddress.IPv4Network(DEFAULT_PROVIDERS[flow.provider])
            assert ipaddress.IPv4Address(flow.key.src_addr) in net

    def test_client_addr_in_client_prefix(self, topology):
        client_net = ipaddress.IPv4Network("172.16.0.0/12")
        for flow in generator(topology).generate_flows(50):
            assert ipaddress.IPv4Address(flow.key.dst_addr) in client_net

    def test_path_is_valid(self, topology):
        for flow in generator(topology).generate_flows(30):
            assert flow.path[0] in topology.router_ids()
            assert list(flow.path) == topology.path(flow.path[0],
                                                    flow.path[-1])

    def test_positive_sizes(self, topology):
        for flow in generator(topology).generate_flows(50):
            assert flow.packets >= 1
            assert flow.octets >= 40
            assert flow.end_ms > flow.start_ms

    def test_heavy_tail(self, topology):
        sizes = [f.packets for f in generator(topology)
                 .generate_flows(400)]
        mean = sum(sizes) / len(sizes)
        assert max(sizes) > 5 * mean  # heavy-tailed distribution

    def test_requires_providers(self, topology):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(topology, TrafficConfig(providers={}))


class TestObservation:
    def test_every_path_router_observes(self, topology):
        gen = generator(topology)
        for flow in gen.generate_flows(20):
            records = gen.observe(flow)
            observed = [r.router_id for r in records]
            assert observed == list(flow.path)[:len(observed)]

    def test_loss_accumulates_downstream(self, topology):
        gen = generator(topology)
        multi_hop = [f for f in gen.generate_flows(60)
                     if len(f.path) >= 3]
        assert multi_hop, "need multi-hop flows for this test"
        for flow in multi_hop:
            records = gen.observe(flow)
            arriving = [r.packets for r in records]
            assert arriving == sorted(arriving, reverse=True)
            for upstream, downstream in zip(records, records[1:]):
                assert downstream.packets == \
                    upstream.packets - upstream.lost_packets

    def test_hop_count_increments(self, topology):
        gen = generator(topology)
        flow = next(f for f in gen.generate_flows(50)
                    if len(f.path) >= 2)
        records = gen.observe(flow)
        assert [r.hop_count for r in records] == \
            list(range(1, len(records) + 1))

    def test_observation_deterministic(self, topology):
        gen = generator(topology)
        flow = gen.generate_flow(now_ms=0)
        assert gen.observe(flow) == gen.observe(flow)

    def test_egress_router_loses_nothing(self, topology):
        gen = generator(topology)
        for flow in gen.generate_flows(20):
            records = gen.observe(flow)
            if [r.router_id for r in records] == list(flow.path):
                assert records[-1].lost_packets == 0


class TestThrottling:
    def test_throttle_raises_rtt(self, topology):
        provider = sorted(DEFAULT_PROVIDERS)[0]
        plain = generator(topology)
        throttled = generator(
            topology,
            throttle={provider: ThrottleSpec(extra_latency_us=50_000)})
        def mean_rtt(gen):
            total, count = 0, 0
            for flow in gen.generate_flows(120):
                if flow.provider != provider:
                    continue
                for record in gen.observe(flow):
                    total += record.rtt_us
                    count += 1
            return total / count
        assert mean_rtt(throttled) > mean_rtt(plain) + 30_000

    def test_throttle_validation(self):
        with pytest.raises(ConfigurationError):
            ThrottleSpec(extra_loss_rate=1.0)


class TestGenerateRecords:
    def test_partitions_by_router(self, topology):
        per_router = generator(topology).generate_records(30)
        assert set(per_router) == set(topology.router_ids())
        for router_id, records in per_router.items():
            assert all(r.router_id == router_id for r in records)
        total = sum(len(v) for v in per_router.values())
        assert total >= 30
