"""Unit tests: the length-prefixed wire framing codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameTooLarge, ProtocolError, TruncatedFrame
from repro.net.framing import (
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    FrameDecoder,
    decode_frame,
    encode_frame,
    parse_header,
    read_frame_from,
)


class TestRoundTrip:
    @given(st.binary(max_size=4096))
    @settings(max_examples=200)
    def test_decode_inverts_encode(self, payload):
        frame = encode_frame(payload)
        decoded, consumed = decode_frame(frame)
        assert decoded == payload
        assert consumed == len(frame) == HEADER_SIZE + len(payload)

    @given(st.binary(max_size=512), st.binary(max_size=64))
    def test_trailing_data_left_alone(self, payload, trailer):
        decoded, consumed = decode_frame(encode_frame(payload)
                                         + trailer)
        assert decoded == payload
        assert consumed == HEADER_SIZE + len(payload)

    @given(st.lists(st.binary(max_size=256), max_size=8))
    @settings(max_examples=100)
    def test_concatenated_frames_decode_in_order(self, payloads):
        stream = b"".join(encode_frame(p) for p in payloads)
        out = []
        while stream:
            payload, consumed = decode_frame(stream)
            out.append(payload)
            stream = stream[consumed:]
        assert out == payloads

    def test_header_layout(self):
        frame = encode_frame(b"abc")
        assert frame[:2] == MAGIC
        assert frame[2] == WIRE_VERSION
        assert int.from_bytes(frame[3:7], "big") == 3
        assert frame[7:] == b"abc"


class TestRejection:
    @given(st.binary(max_size=256), st.integers(min_value=0))
    @settings(max_examples=200)
    def test_any_prefix_is_truncated_never_garbage(self, payload, cut):
        """Every proper prefix of a valid frame raises TruncatedFrame
        (not an arbitrary exception, and never a bogus success)."""
        frame = encode_frame(payload)
        prefix = frame[:min(cut, len(frame) - 1)]
        with pytest.raises(TruncatedFrame):
            decode_frame(prefix)

    def test_bad_magic(self):
        frame = bytearray(encode_frame(b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(encode_frame(b"x"))
        frame[2] = WIRE_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(frame))

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(b"x" * 101, max_size=100)

    def test_decode_rejects_oversized_declared_length(self):
        frame = encode_frame(b"x" * 200)  # valid at default limit
        with pytest.raises(FrameTooLarge):
            decode_frame(frame, max_size=100)

    def test_oversized_rejected_from_header_alone(self):
        """The limit check must not require buffering the payload."""
        header = encode_frame(b"")[:HEADER_SIZE - 4] \
            + (2 ** 31).to_bytes(4, "big")
        with pytest.raises(FrameTooLarge):
            parse_header(header, max_size=1024)


class TestFrameDecoder:
    @given(st.lists(st.binary(max_size=128), min_size=1, max_size=6),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=100)
    def test_incremental_feed_any_chunking(self, payloads, chunk):
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i:i + chunk]))
        decoder.finish()
        assert out == payloads

    def test_finish_mid_frame_raises(self):
        decoder = FrameDecoder()
        list(decoder.feed(encode_frame(b"abcdef")[:-2]))
        with pytest.raises(TruncatedFrame):
            decoder.finish()

    def test_oversized_rejected_before_payload_arrives(self):
        decoder = FrameDecoder(max_size=16)
        header = encode_frame(b"")[:HEADER_SIZE - 4] \
            + (1 << 20).to_bytes(4, "big")
        with pytest.raises(FrameTooLarge):
            list(decoder.feed(header))


class TestBlockingTransport:
    def test_read_frame_from_chunked_recv(self):
        # recv may return fewer bytes than asked for; the reader must
        # keep asking until the frame is complete.
        buffered = bytearray(encode_frame(b"hello world"))

        def recv(n):
            take = bytes(buffered[:min(n, 2)])
            del buffered[:len(take)]
            return take

        assert read_frame_from(recv) == b"hello world"

    def test_read_frame_from_eof_mid_frame(self):
        data = bytearray(encode_frame(b"hello")[:-2])

        def recv(n):
            take = bytes(data[:n])
            del data[:n]
            return take

        with pytest.raises(TruncatedFrame):
            read_frame_from(recv)
