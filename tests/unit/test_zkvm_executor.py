"""Unit tests for the executor: sessions, segments, abort handling."""

import pytest

from repro.errors import GuestAbort
from repro.zkvm import ExecutorEnvBuilder, Executor, guest_program
from repro.zkvm import cycles as cy
from repro.zkvm.executor import segment_chain
from repro.zkvm.receipt import ExitCode


@guest_program("echo")
def echo_guest(env):
    env.commit(env.read())


@guest_program("spinner")
def spinner_guest(env):
    n = env.read()
    env.tick(n)
    env.commit("spun")


@guest_program("aborting")
def aborting_guest(env):
    env.abort("deliberate")


@guest_program("crashing")
def crashing_guest(env):
    raise RuntimeError("guest bug")


class TestExecution:
    def test_halted_session(self):
        session = Executor().execute(
            echo_guest, ExecutorEnvBuilder().write("hi").build())
        assert session.exit_code is ExitCode.HALTED
        assert session.journal.decode_one() == "hi"
        assert session.abort_reason is None

    def test_aborted_session(self):
        session = Executor().execute(aborting_guest,
                                     ExecutorEnvBuilder().build())
        assert session.exit_code is ExitCode.ABORTED
        assert session.abort_reason == "deliberate"

    def test_execute_expecting_success_raises(self):
        with pytest.raises(GuestAbort, match="deliberate"):
            Executor().execute_expecting_success(
                aborting_guest, ExecutorEnvBuilder().build())

    def test_guest_bug_propagates(self):
        with pytest.raises(RuntimeError, match="guest bug"):
            Executor().execute(crashing_guest,
                               ExecutorEnvBuilder().build())

    def test_deterministic_cycles(self):
        env_input = ExecutorEnvBuilder().write("payload").build()
        a = Executor().execute(echo_guest, env_input)
        b = Executor().execute(echo_guest, env_input)
        assert a.total_cycles == b.total_cycles
        assert a.segments == b.segments
        assert a.journal == b.journal


class TestSegments:
    def test_small_run_is_one_segment(self):
        session = Executor().execute(
            spinner_guest, ExecutorEnvBuilder().write(100).build())
        assert session.segment_count == 1

    def test_long_run_splits(self):
        n = 3 * cy.SEGMENT_CYCLE_LIMIT
        session = Executor().execute(
            spinner_guest, ExecutorEnvBuilder().write(n).build())
        assert session.segment_count >= 3
        assert sum(s.cycle_count for s in session.segments) == \
            session.total_cycles

    def test_segments_chain(self):
        n = 2 * cy.SEGMENT_CYCLE_LIMIT
        session = Executor().execute(
            spinner_guest, ExecutorEnvBuilder().write(n).build())
        chain = segment_chain(spinner_guest.image_id, session.segments)
        assert chain == tuple(s.digest for s in session.segments)

    def test_chain_depends_on_image(self):
        session = Executor().execute(
            spinner_guest, ExecutorEnvBuilder().write(10).build())
        other = segment_chain(echo_guest.image_id, session.segments)
        assert other != tuple(s.digest for s in session.segments)

    def test_padded_cycles_power_of_two(self):
        session = Executor().execute(
            spinner_guest, ExecutorEnvBuilder().write(100).build())
        for segment in session.segments:
            assert segment.padded_cycles == 1 << segment.po2
            assert segment.padded_cycles >= segment.cycle_count


class TestExecutorInput:
    def test_digest_depends_on_values(self):
        a = ExecutorEnvBuilder().write(1).build()
        b = ExecutorEnvBuilder().write(2).build()
        assert a.digest != b.digest

    def test_digest_depends_on_framing(self):
        a = ExecutorEnvBuilder().write([1, 2]).build()
        b = ExecutorEnvBuilder().write(1).write(2).build()
        assert a.digest != b.digest

    def test_write_frame_raw(self):
        from repro.serialization import encode
        a = ExecutorEnvBuilder().write_frame(encode("x")).build()
        b = ExecutorEnvBuilder().write("x").build()
        assert a.digest == b.digest

    def test_total_bytes(self):
        env_input = ExecutorEnvBuilder().write(b"12345").build()
        assert env_input.total_bytes == len(env_input.frames[0])
