"""Unit tests for the system wiring and package surface."""

import pytest

import repro
from repro.core.system import SystemConfig, TelemetrySystem, \
    build_paper_eval_system
from repro.netflow.topology import NetworkTopology


class TestSystemConfig:
    def test_defaults_match_paper(self):
        config = SystemConfig()
        assert config.num_routers == 4
        assert config.commit_interval_ms == 5_000

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TelemetrySystem(SystemConfig(backend="postgres"))

    def test_backends_construct(self):
        for backend in ("memory", "sqlite"):
            system = TelemetrySystem(SystemConfig(backend=backend))
            system.close()


class TestTelemetrySystem:
    def test_custom_topology_flows_through(self):
        system = TelemetrySystem(
            SystemConfig(flows_per_tick=3),
            topology=NetworkTopology.star(2))
        system.generate(30)
        assert set(system.store.router_ids()) <= \
            {"core", "edge1", "edge2"}

    def test_generate_then_aggregate_then_query(self):
        system = build_paper_eval_system(target_records=60,
                                         flows_per_tick=5)
        rounds = system.aggregate_all()
        assert rounds >= 1
        response, verified = system.query(
            "SELECT COUNT(*) FROM clogs")
        assert response.values == verified.values

    def test_seed_determinism(self):
        def root(seed):
            system = build_paper_eval_system(target_records=60,
                                             seed=seed,
                                             flows_per_tick=5)
            system.aggregate_all()
            return system.prover.state.root
        assert root(5) == root(5)
        assert root(5) != root(6)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        import repro.core
        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.commitments
        import repro.merkle
        import repro.netflow
        import repro.query
        import repro.sketch
        import repro.storage
        import repro.zkvm
        for module in (repro.merkle, repro.netflow, repro.query,
                       repro.sketch, repro.storage, repro.zkvm,
                       repro.commitments):
            for name in module.__all__:
                assert getattr(module, name) is not None
