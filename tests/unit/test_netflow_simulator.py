"""Unit tests for the multi-router simulator."""

import pytest

from repro.commitments import BulletinBoard, window_digest
from repro.errors import SimulationError
from repro.netflow import (
    NetFlowSimulator,
    SimClock,
    SimulatorConfig,
    WallClock,
)
from repro.netflow.topology import NetworkTopology
from repro.storage import MemoryLogStore


def make_simulator(**config_overrides):
    config_overrides.setdefault("flows_per_tick", 5)
    config = SimulatorConfig(**config_overrides)
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    clock = SimClock()
    return NetFlowSimulator(store, bulletin, clock, config)


class TestPump:
    def test_generates_and_stores(self):
        sim = make_simulator()
        sim.pump(ticks=3)
        sim.flush()
        assert sim.records_generated > 0
        assert sim.store.router_ids() == ["r1", "r2", "r3", "r4"]

    def test_commit_every_window(self):
        sim = make_simulator(commit_interval_ms=2_000, tick_ms=1_000)
        sim.pump(ticks=6)
        sim.flush()
        for router_id in sim.store.router_ids():
            for window in sim.store.window_indices(router_id):
                commitment = sim.bulletin.get(router_id, window)
                blobs = sim.store.window_blobs(router_id, window)
                assert commitment.digest == window_digest(blobs)
                assert commitment.record_count == len(blobs)

    def test_window_indices_match_interval(self):
        sim = make_simulator(commit_interval_ms=5_000, tick_ms=1_000)
        sim.pump(ticks=12)
        sim.flush()
        windows = set()
        for router_id in sim.store.router_ids():
            windows.update(sim.store.window_indices(router_id))
        assert windows == {0, 1, 2}  # 12s of traffic in 5s windows

    def test_run_until_records(self):
        sim = make_simulator()
        sim.run_until_records(200)
        assert sim.records_generated >= 200

    def test_run_until_records_gives_up(self):
        sim = make_simulator(flows_per_tick=0)
        with pytest.raises(SimulationError):
            sim.run_until_records(10, max_ticks=3)

    def test_deterministic_runs(self):
        a, b = make_simulator(), make_simulator()
        for sim in (a, b):
            sim.pump(ticks=4)
            sim.flush()
        for router_id in a.store.router_ids():
            for window in a.store.window_indices(router_id):
                assert a.store.window_blobs(router_id, window) == \
                    b.store.window_blobs(router_id, window)


class TestTopologyOverride:
    def test_custom_topology(self):
        store = MemoryLogStore()
        sim = NetFlowSimulator(
            store, BulletinBoard(), SimClock(),
            SimulatorConfig(flows_per_tick=5),
            topology=NetworkTopology.star(2))
        sim.pump(ticks=2)
        sim.flush()
        assert set(store.router_ids()) <= {"core", "edge1", "edge2"}
        assert sim.config.num_routers == 3


class TestWireFormatMode:
    def test_wire_mode_commits_decoded_records(self):
        sim = make_simulator(use_wire_format=True)
        sim.pump(ticks=3)
        sim.flush()
        assert sim.records_generated > 0
        # Every stored record decodes and carries its router id.
        for router_id in sim.store.router_ids():
            for window in sim.store.window_indices(router_id):
                for record in sim.store.window_records(router_id,
                                                       window):
                    assert record.router_id == router_id

    def test_wire_mode_preserves_committed_semantics(self):
        """Same traffic, with and without the wire: flow keys and
        packet counts must agree (the transport is lossless for
        in-range counters)."""
        direct = make_simulator()
        wired = make_simulator(use_wire_format=True)
        for sim in (direct, wired):
            sim.pump(ticks=2)
            sim.flush()

        def flow_counts(sim):
            counts = {}
            for router_id in sim.store.router_ids():
                for window in sim.store.window_indices(router_id):
                    for record in sim.store.window_records(router_id,
                                                           window):
                        counts[(router_id, record.key)] = record.packets
            return counts

        assert flow_counts(direct) == flow_counts(wired)

    def test_wire_mode_full_pipeline(self):
        """Wire-decoded records commit, aggregate and verify."""
        from repro.core.prover_service import ProverService
        from repro.core.verifier_client import VerifierClient
        sim = make_simulator(use_wire_format=True)
        sim.pump(ticks=3)
        sim.flush()
        service = ProverService(sim.store, sim.bulletin)
        service.aggregate_all_committed()
        VerifierClient(sim.bulletin).verify_chain(
            service.chain.receipts())


class TestThreaded:
    def test_threaded_run_commits(self):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        sim = NetFlowSimulator(
            store, bulletin, WallClock(),
            SimulatorConfig(flows_per_tick=3, tick_ms=20,
                            commit_interval_ms=100))
        sim.run_threaded(duration_ms=300)
        assert sim.records_generated > 0
        assert len(bulletin) > 0
        # Every published commitment matches the stored window.
        for commitment in bulletin:
            blobs = store.window_blobs(commitment.router_id,
                                       commitment.window_index)
            assert window_digest(blobs) == commitment.digest
