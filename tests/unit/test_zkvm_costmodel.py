"""Unit tests for the prover cost model and its calibration."""

import pytest

from repro.zkvm import ExecutorEnvBuilder, Prover, guest_program
from repro.zkvm.costmodel import (
    CostModel,
    ProverBackend,
    VERIFY_SECONDS,
)


@guest_program("cost-worker")
def cost_guest(env):
    n = env.read()
    for _ in range(n):
        env.sha256(b"x" * 100)
    env.commit(n)


def stats_for(n: int):
    return Prover().prove(
        cost_guest, ExecutorEnvBuilder().write(n).build()).stats


class TestBackends:
    def test_cpu_latency_grows_with_work(self):
        model = CostModel()
        small = model.prove_seconds(stats_for(10))
        large = model.prove_seconds(stats_for(100_000))
        assert large > small

    def test_gpu_is_order_of_magnitude_faster(self):
        model = CostModel()
        stats = stats_for(50_000)
        cpu = model.prove_seconds(stats, ProverBackend.CPU_ZKVM)
        gpu = model.prove_seconds(stats, ProverBackend.GPU_ZKVM)
        assert cpu / gpu == pytest.approx(10.0)

    def test_specialized_charges_per_hash(self):
        model = CostModel(base_overhead=0.0)
        stats = stats_for(60_000)
        specialized = model.prove_seconds(
            stats, ProverBackend.SPECIALIZED_HASH)
        expected = stats.sha_compressions / 600_000.0
        assert specialized == pytest.approx(expected)

    def test_specialized_beats_zkvm_dramatically(self):
        """§7: specialized proof systems are orders of magnitude faster
        than the general-purpose zkVM for hash-dominated work."""
        model = CostModel()
        stats = stats_for(30_000)
        cpu = model.prove_seconds(stats, ProverBackend.CPU_ZKVM)
        specialized = model.prove_seconds(
            stats, ProverBackend.SPECIALIZED_HASH)
        assert cpu / specialized > 50

    def test_estimate_carries_metadata(self):
        model = CostModel()
        estimate = model.estimate(stats_for(100))
        assert estimate.cycles > 0
        assert estimate.sha_compressions >= 100
        assert estimate.minutes == pytest.approx(estimate.seconds / 60)


class TestParallelModel:
    def test_parallel_bounded_by_slowest(self):
        model = CostModel(segment_overhead=0.0, base_overhead=0.0)
        stats = [stats_for(n) for n in (100, 1_000, 10_000)]
        parallel = model.parallel_prove_seconds(stats)
        slowest = max(model.prove_seconds(s) for s in stats)
        assert parallel == pytest.approx(slowest)

    def test_parallel_faster_than_sequential(self):
        model = CostModel()
        stats = [stats_for(10_000) for _ in range(4)]
        parallel = model.parallel_prove_seconds(stats)
        sequential = sum(model.prove_seconds(s) for s in stats)
        assert parallel < sequential / 2

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            CostModel().parallel_prove_seconds([])


class TestVerifyModel:
    def test_succinct_verification_constant(self):
        model = CostModel()
        assert model.verify_seconds() == VERIFY_SECONDS
        assert model.verify_seconds(segment_count=100) == VERIFY_SECONDS

    def test_composite_scales_with_segments(self):
        model = CostModel()
        assert model.verify_seconds(segment_count=5, succinct=False) == \
            pytest.approx(5 * VERIFY_SECONDS)

    def test_paper_verify_latency_is_3ms(self):
        assert VERIFY_SECONDS == pytest.approx(0.003)


class TestConfiguration:
    def test_invalid_throughput_rejected(self):
        with pytest.raises(ValueError):
            CostModel(cpu_cycles_per_second=0)
