"""Unit tests for the Merkle tree."""

import pytest

from repro.errors import MerkleError
from repro.hashing import tagged_hash
from repro.merkle import EMPTY_ROOTS, MerkleTree
from repro.merkle.hasher import default_hasher


def leaf(i: int):
    return tagged_hash("test/leaf", i.to_bytes(4, "big"))


class TestConstruction:
    def test_empty_tree_root_is_empty_leaf(self):
        assert MerkleTree().root == EMPTY_ROOTS[0]

    def test_single_leaf_root_is_leaf(self):
        tree = MerkleTree([leaf(0)])
        assert tree.root == leaf(0)
        assert tree.depth == 0

    def test_two_leaves(self):
        tree = MerkleTree([leaf(0), leaf(1)])
        assert tree.root == default_hasher().node(leaf(0), leaf(1))
        assert tree.depth == 1

    def test_odd_count_pads_with_empty(self):
        tree = MerkleTree([leaf(0), leaf(1), leaf(2)])
        h = default_hasher()
        expected = h.node(h.node(leaf(0), leaf(1)),
                          h.node(leaf(2), EMPTY_ROOTS[0]))
        assert tree.root == expected

    @pytest.mark.parametrize("n,depth", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1000, 10),
    ])
    def test_depth(self, n, depth):
        assert MerkleTree(leaf(i) for i in range(n)).depth == depth

    def test_from_payloads(self):
        tree = MerkleTree.from_payloads([b"a", b"b"])
        h = default_hasher()
        assert tree.root == h.node(h.leaf(b"a"), h.leaf(b"b"))


class TestAppend:
    def test_append_matches_rebuild(self):
        incremental = MerkleTree()
        for i in range(37):
            incremental.append(leaf(i))
            fresh = MerkleTree(leaf(j) for j in range(i + 1))
            assert incremental.root == fresh.root, f"diverged at {i}"

    def test_append_returns_index(self):
        tree = MerkleTree()
        assert tree.append(leaf(0)) == 0
        assert tree.append(leaf(1)) == 1

    def test_extend(self):
        tree = MerkleTree()
        tree.extend(leaf(i) for i in range(5))
        assert tree.size == 5
        assert tree.root == MerkleTree(leaf(i) for i in range(5)).root


class TestUpdate:
    def test_update_matches_rebuild(self):
        leaves = [leaf(i) for i in range(20)]
        tree = MerkleTree(leaves)
        tree.update(7, leaf(100))
        leaves[7] = leaf(100)
        assert tree.root == MerkleTree(leaves).root

    def test_update_every_position(self):
        n = 9
        for position in range(n):
            leaves = [leaf(i) for i in range(n)]
            tree = MerkleTree(leaves)
            tree.update(position, leaf(999))
            leaves[position] = leaf(999)
            assert tree.root == MerkleTree(leaves).root

    def test_update_out_of_range(self):
        tree = MerkleTree([leaf(0)])
        with pytest.raises(MerkleError):
            tree.update(1, leaf(9))
        with pytest.raises(MerkleError):
            tree.update(-1, leaf(9))

    def test_update_then_proofs_still_valid(self):
        tree = MerkleTree(leaf(i) for i in range(10))
        tree.update(3, leaf(42))
        for i in range(10):
            tree.prove(i).verify(tree.root)


class TestProve:
    def test_proofs_verify_at_all_sizes(self):
        for n in (1, 2, 3, 5, 8, 17):
            tree = MerkleTree(leaf(i) for i in range(n))
            for i in range(n):
                proof = tree.prove(i)
                assert proof.leaf == leaf(i)
                proof.verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(leaf(i) for i in range(4))
        proof = tree.prove(2)
        other = MerkleTree(leaf(i) for i in range(5))
        assert not proof.is_valid(other.root)

    def test_prove_out_of_range(self):
        tree = MerkleTree([leaf(0)])
        with pytest.raises(MerkleError):
            tree.prove(1)


class TestProveVacant:
    def test_vacant_proof_verifies_against_current_root(self):
        tree = MerkleTree(leaf(i) for i in range(5))
        proof = tree.prove_vacant(5)
        assert proof.computed_root() == tree.root

    def test_vacant_then_fill_matches_update_path(self):
        tree = MerkleTree(leaf(i) for i in range(5))
        proof = tree.prove_vacant(5)
        tree.append(leaf(5))
        # Recomputing the path with the new leaf over the same siblings
        # must land on the post-append root.
        from repro.merkle.proof import InclusionProof
        recomputed = InclusionProof(
            leaf_index=5, leaf=leaf(5), siblings=proof.siblings,
            tree_size=6).computed_root()
        assert recomputed == tree.root

    def test_only_append_slot_provable(self):
        tree = MerkleTree(leaf(i) for i in range(5))
        with pytest.raises(MerkleError):
            tree.prove_vacant(4)
        with pytest.raises(MerkleError):
            tree.prove_vacant(6)

    def test_full_tree_requires_growth(self):
        tree = MerkleTree(leaf(i) for i in range(4))  # capacity 4
        with pytest.raises(MerkleError):
            tree.prove_vacant(4)

    def test_empty_tree_vacant_slot(self):
        tree = MerkleTree()
        proof = tree.prove_vacant(0)
        assert proof.computed_root() == tree.root


class TestEmptyRoots:
    def test_chain_rule(self):
        h = default_hasher()
        for height in range(5):
            assert EMPTY_ROOTS[height + 1] == \
                h.node(EMPTY_ROOTS[height], EMPTY_ROOTS[height])

    def test_empty_subtree_matches_built_tree(self):
        # A tree with 4 empty leaves has root EMPTY_ROOTS[2].
        tree = MerkleTree([EMPTY_ROOTS[0]] * 4)
        assert tree.root == EMPTY_ROOTS[2]
