"""Unit tests for inclusion proofs and multiproofs."""

import pytest

from repro.errors import MerkleError, MerkleInclusionError
from repro.hashing import tagged_hash
from repro.merkle import InclusionProof, MerkleTree, MultiProof, \
    verify_inclusion


def leaf(i: int):
    return tagged_hash("test/leaf", i.to_bytes(4, "big"))


@pytest.fixture
def tree():
    return MerkleTree(leaf(i) for i in range(8))


class TestInclusionProof:
    def test_verify_raises_on_mismatch(self, tree):
        proof = tree.prove(3)
        bad = InclusionProof(leaf_index=3, leaf=leaf(99),
                             siblings=proof.siblings, tree_size=8)
        with pytest.raises(MerkleInclusionError):
            bad.verify(tree.root)

    def test_wrong_index_fails(self, tree):
        proof = tree.prove(3)
        moved = InclusionProof(leaf_index=4, leaf=proof.leaf,
                               siblings=proof.siblings, tree_size=8)
        assert not moved.is_valid(tree.root)

    def test_tampered_sibling_fails(self, tree):
        proof = tree.prove(0)
        siblings = list(proof.siblings)
        siblings[1] = leaf(1234)
        tampered = InclusionProof(leaf_index=0, leaf=proof.leaf,
                                  siblings=tuple(siblings), tree_size=8)
        assert not tampered.is_valid(tree.root)

    def test_negative_index_rejected(self):
        with pytest.raises(MerkleError):
            InclusionProof(leaf_index=-1, leaf=leaf(0), siblings=(),
                           tree_size=1)

    def test_index_outside_size_rejected(self):
        with pytest.raises(MerkleError):
            InclusionProof(leaf_index=3, leaf=leaf(0), siblings=(),
                           tree_size=3)

    def test_path_length_index_consistency(self):
        # index 5 needs at least 3 siblings.
        with pytest.raises(MerkleError):
            InclusionProof(leaf_index=5, leaf=leaf(0),
                           siblings=(leaf(1),), tree_size=8).computed_root()

    def test_wire_roundtrip(self, tree):
        proof = tree.prove(5)
        restored = InclusionProof.from_wire(proof.to_wire())
        assert restored == proof
        restored.verify(tree.root)

    def test_verify_inclusion_helper(self, tree):
        assert verify_inclusion(tree.root, tree.prove(2))
        assert not verify_inclusion(leaf(0), tree.prove(2))

    def test_depth_property(self, tree):
        assert tree.prove(0).depth == 3


class TestMultiProof:
    def test_batch_verifies(self, tree):
        multi = tree.prove_many([1, 5, 6])
        multi.verify()
        multi.verify(tree.root)

    def test_indices_deduplicated_sorted(self, tree):
        multi = tree.prove_many([6, 1, 6, 5])
        assert multi.indices == (1, 5, 6)

    def test_mismatched_root_rejected(self, tree):
        multi = tree.prove_many([0])
        with pytest.raises(MerkleInclusionError):
            multi.verify(leaf(77))

    def test_one_bad_member_fails_batch(self, tree):
        multi = tree.prove_many([0, 1])
        bad_member = InclusionProof(
            leaf_index=1, leaf=leaf(42),
            siblings=multi.proofs[1].siblings, tree_size=8)
        tampered = MultiProof(proofs=(multi.proofs[0], bad_member),
                              root=tree.root)
        assert not tampered.is_valid()

    def test_wire_roundtrip(self, tree):
        multi = tree.prove_many([2, 3])
        restored = MultiProof.from_wire(multi.to_wire())
        restored.verify(tree.root)
        assert restored.indices == multi.indices
