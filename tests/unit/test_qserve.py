"""Unit tests for the multi-tenant query-serving layer.

Covers the three loop-affine admission pieces (token bucket, fair
queue, admission controller), the tiered result cache, and the typed
error surface of :class:`~repro.qserve.service.QueryService` /
:class:`~repro.qserve.batch.BatchQueryProver`.  Everything here is
deterministic: buckets run on injected clocks, and the only proving is
a couple of tiny real rounds for the service-level tests.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.prover_service import ProverService
from repro.errors import (
    AdmissionRejected,
    ChainError,
    ConfigurationError,
    NetworkError,
    ProofError,
    QuerySyntaxError,
    StorageError,
)
from repro.qserve import (
    AdmissionController,
    FairQueue,
    QueryResultCache,
    QueryService,
    TokenBucket,
    result_cache_key,
)
from repro.qserve.admission import REASON_CAPACITY, REASON_RATE
from repro.storage import MemoryLogStore

from ..conftest import make_committed_records


class FakeClock:
    """A hand-cranked monotonic clock for bucket tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == \
            [True, True, True, False]

    def test_continuous_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        for _ in range(3):
            bucket.try_take()
        clock.advance(0.49)  # 0.98 tokens: not yet a whole one
        assert not bucket.try_take()
        clock.advance(0.02)  # 1.02 tokens
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 2.0

    def test_clock_going_backwards_is_harmless(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        clock.now = -5.0
        assert not bucket.try_take()
        clock.now = 1.0
        assert bucket.try_take()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1, burst=0.5)


class TestFairQueue:
    def test_fifo_within_a_tenant(self):
        queue = FairQueue()
        for i in range(3):
            queue.push("a", f"a{i}")
        assert list(queue.drain(10)) == ["a0", "a1", "a2"]
        assert len(queue) == 0

    def test_round_robin_across_tenants(self):
        queue = FairQueue()
        # A hot tenant floods its queue; a light one lands after.
        for i in range(4):
            queue.push("hot", f"h{i}")
        queue.push("light", "l0")
        drained = list(queue.drain(10))
        # One-per-tenant-per-pass: light is served second, not fifth.
        assert drained[:2] == ["h0", "l0"]
        assert drained[2:] == ["h1", "h2", "h3"]

    def test_rotation_does_not_favour_first_tenant(self):
        queue = FairQueue()
        for tenant in ("a", "b"):
            for i in range(2):
                queue.push(tenant, f"{tenant}{i}")
        # Drain one at a time: service order must alternate.
        order = [list(queue.drain(1))[0] for _ in range(4)]
        assert order == ["a0", "b0", "a1", "b1"]

    def test_drain_respects_limit(self):
        queue = FairQueue()
        for i in range(5):
            queue.push("a", i)
        assert list(queue.drain(2)) == [0, 1]
        assert len(queue) == 3

    def test_clear_returns_everything(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        assert sorted(queue.clear()) == [1, 2]
        assert len(queue) == 0
        assert list(queue.drain(10)) == []


class TestAdmissionController:
    def test_capacity_rejection_is_typed(self):
        admission = AdmissionController(max_inflight=2)
        admission.admit("a")
        admission.admit("b")
        with pytest.raises(AdmissionRejected) as info:
            admission.admit("c")
        assert info.value.reason == REASON_CAPACITY
        admission.release()
        admission.admit("c")  # slot returned

    def test_rate_rejection_is_typed_and_per_tenant(self):
        clock = FakeClock()
        admission = AdmissionController(max_inflight=100,
                                        tenant_rate=1.0,
                                        tenant_burst=2.0,
                                        clock=clock)
        admission.admit("hot")
        admission.admit("hot")
        with pytest.raises(AdmissionRejected) as info:
            admission.admit("hot")
        assert info.value.reason == REASON_RATE
        # Another tenant has its own bucket.
        admission.admit("cold")
        # And the hot tenant recovers at the configured rate.
        clock.advance(1.0)
        admission.admit("hot")

    def test_rate_checked_before_capacity(self):
        """A throttled tenant is told to slow down even when the
        global queue is also full — the actionable reason wins."""
        clock = FakeClock()
        admission = AdmissionController(max_inflight=1,
                                        tenant_rate=1.0,
                                        tenant_burst=1.0,
                                        clock=clock)
        admission.admit("hot")  # consumes the slot AND the token
        with pytest.raises(AdmissionRejected) as info:
            admission.admit("hot")
        assert info.value.reason == REASON_RATE

    def test_rejected_request_costs_no_slot(self):
        admission = AdmissionController(max_inflight=1)
        admission.admit("a")
        for _ in range(3):
            with pytest.raises(AdmissionRejected):
                admission.admit("b")
        assert admission.inflight == 1
        admission.release()
        assert admission.inflight == 0
        admission.release()  # over-release is clamped
        assert admission.inflight == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(tenant_rate=-1.0)


def _responses(n=3):
    """A few real proven responses to feed cache tests."""
    store, bulletin, _ = make_committed_records(20, seed=3)
    service = ProverService(store, bulletin)
    service.aggregate_all_committed()
    sqls = ["SELECT COUNT(*) FROM clogs",
            "SELECT SUM(octets) FROM clogs",
            "SELECT MIN(packets), MAX(packets) FROM clogs"]
    return [service.answer_query(sql) for sql in sqls[:n]]


class BrokenStore(MemoryLogStore):
    """A persistent tier that fails on demand."""

    def __init__(self) -> None:
        super().__init__()
        self.broken = False

    def get_checkpoint(self, name):
        if self.broken:
            raise StorageError("checkpoint tier is down")
        return super().get_checkpoint(name)

    def put_checkpoint(self, name, data):
        if self.broken:
            raise StorageError("checkpoint tier is down")
        super().put_checkpoint(name, data)


class TestQueryResultCache:
    def test_memory_lru_bound_and_eviction(self):
        responses = _responses(3)
        cache = QueryResultCache(memory_entries=2)
        for response in responses:
            cache.put(response)
        first = responses[0]
        assert cache.get(first.sql, first.round, first.root) is None
        for response in responses[1:]:
            assert cache.get(response.sql, response.round,
                             response.root) is response
        stats = cache.stats()
        assert stats["memory_entries"] == 2
        assert stats["evictions"] == 1

    def test_persistent_round_trip_and_promotion(self):
        (response,) = _responses(1)
        store = MemoryLogStore()
        warm = QueryResultCache(store=store)
        warm.put(response)
        # A fresh cache over the same store: persistent hit, promoted.
        cold = QueryResultCache(store=store)
        hit = cold.get(response.sql, response.round, response.root)
        assert hit is not None
        assert hit.receipt.journal.data == response.receipt.journal.data
        # Promotion: the next lookup is a memory hit (same object).
        assert cold.get(response.sql, response.round,
                        response.root) is hit

    def test_corrupt_persistent_entry_is_a_miss(self):
        (response,) = _responses(1)
        store = MemoryLogStore()
        cache = QueryResultCache(store=store)
        key = result_cache_key(response.sql, response.round,
                               response.root)
        store.put_checkpoint(f"query-results/{key.hex()}",
                             b"\x00garbage")
        assert cache.get(response.sql, response.round,
                         response.root) is None
        # The tier is NOT degraded by corruption — a later put works.
        cache.put(response)
        fresh = QueryResultCache(store=store)
        assert fresh.get(response.sql, response.round,
                         response.root) is not None

    def test_mismatched_entry_is_never_served(self):
        """An entry filed under the wrong key (sql/root cross-check)
        decodes fine but must not be returned."""
        from repro.serialization import encode_query_response
        (response,) = _responses(1)
        store = MemoryLogStore()
        cache = QueryResultCache(store=store)
        other_sql = "SELECT SUM(octets) FROM clogs"
        key = result_cache_key(other_sql, response.round, response.root)
        # Sealed correctly, so it passes the integrity check and is
        # rejected by the (sql, root) cross-check alone.
        store.put_checkpoint(
            f"query-results/{key.hex()}",
            QueryResultCache._seal_blob(encode_query_response(response)))
        assert cache.get(other_sql, response.round,
                         response.root) is None

    def test_storage_error_degrades_to_memory_only(self):
        (response,) = _responses(1)
        store = BrokenStore()
        cache = QueryResultCache(store=store)
        store.broken = True
        cache.put(response)  # write fails quietly → degraded
        assert cache.stats()["persistent"] is False
        # Memory tier still serves; the broken store is never retried.
        assert cache.get(response.sql, response.round,
                         response.root) is response

    def test_attach_store_is_late_bind_only(self):
        (response,) = _responses(1)
        store = MemoryLogStore()
        cache = QueryResultCache()  # memory-only
        assert cache.stats()["persistent"] is False
        cache.attach_store(store)
        assert cache.stats()["persistent"] is True
        cache.put(response)
        # Second attach is a no-op: entries stay in the first store.
        cache.attach_store(MemoryLogStore())
        fresh = QueryResultCache(store=store)
        assert fresh.get(response.sql, response.round,
                         response.root) is not None

    def test_clear_drops_memory_keeps_persistent(self):
        (response,) = _responses(1)
        store = MemoryLogStore()
        cache = QueryResultCache(store=store)
        cache.put(response)
        cache.clear()
        assert cache.stats()["memory_entries"] == 0
        # Root-keyed persistent entries survive a restore...
        hit = cache.get(response.sql, response.round, response.root)
        assert hit is not None
        # ...but a diverged root can never be served.
        from repro.hashing import tagged_hash
        other_root = tagged_hash("test/diverged", b"x")
        assert cache.get(response.sql, response.round,
                         other_root) is None

    def test_key_separates_sql_round_and_root(self):
        from repro.hashing import tagged_hash
        root = tagged_hash("test/root", b"r")
        base = result_cache_key("SELECT COUNT(*) FROM clogs", 0, root)
        assert base == result_cache_key(
            "SELECT COUNT(*) FROM clogs", 0, root)
        assert base != result_cache_key(
            "SELECT SUM(octets) FROM clogs", 0, root)
        assert base != result_cache_key(
            "SELECT COUNT(*) FROM clogs", 1, root)
        assert base != result_cache_key(
            "SELECT COUNT(*) FROM clogs", 0,
            tagged_hash("test/root", b"other"))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            QueryResultCache(memory_entries=0)


@pytest.fixture(scope="module")
def served():
    """A small aggregated engine-backed service for QueryService tests."""
    store, bulletin, _ = make_committed_records(30, seed=9)
    service = ProverService(store, bulletin, pool_backend="thread",
                            prove_workers=2)
    service.aggregate_all_committed()
    yield service
    service.close()


def run(coro):
    return asyncio.run(coro)


class TestQueryService:
    def test_submit_requires_running_service(self, served):
        qserve = QueryService(served)

        async def scenario():
            with pytest.raises(NetworkError):
                await qserve.submit("SELECT COUNT(*) FROM clogs")

        run(scenario())

    def test_typed_errors_before_admission(self, served):
        """Bad SQL and bad rounds raise their own types and never cost
        a token or an in-flight slot."""
        qserve = QueryService(served, tenant_rate=1.0, tenant_burst=1.0)

        async def scenario():
            await qserve.start()
            try:
                with pytest.raises(QuerySyntaxError):
                    await qserve.submit("SELECT NOT VALID")
                with pytest.raises(ProofError):
                    await qserve.submit("SELECT COUNT(*) FROM clogs",
                                        round_index=99)
                # The tenant's single token is still available.
                response = await qserve.submit(
                    "SELECT COUNT(*) FROM clogs")
                assert response.value() == len(served.state)
            finally:
                await qserve.stop()

        run(scenario())

    def test_empty_chain_is_a_chain_error(self):
        store, bulletin, _ = make_committed_records(10, seed=4)
        service = ProverService(store, bulletin)  # nothing aggregated
        qserve = QueryService(service)

        async def scenario():
            await qserve.start()
            try:
                with pytest.raises(ChainError):
                    await qserve.submit("SELECT COUNT(*) FROM clogs")
            finally:
                await qserve.stop()

        run(scenario())

    def test_cache_hit_skips_the_queue(self, served):
        qserve = QueryService(served)
        sql = "SELECT COUNT(*) FROM clogs"
        warm = served.answer_query(sql)

        async def scenario():
            await qserve.start()
            try:
                response = await qserve.submit(sql)
                assert response is warm
                assert qserve.stats()["inflight"] == 0
            finally:
                await qserve.stop()

        run(scenario())

    def test_stop_fails_queued_tickets(self, served):
        """Tickets still queued at stop() get a typed failure rather
        than hanging forever."""
        qserve = QueryService(served, batch_window=30.0)
        served.query_cache.clear()

        async def scenario():
            await qserve.start()
            task = asyncio.ensure_future(qserve.submit(
                "SELECT SUM(octets) FROM clogs WHERE packets > 1"))
            # Let the submit reach the queue (the long batch window
            # keeps the dispatcher from proving it yet).
            await asyncio.sleep(0.05)
            await qserve.stop()
            with pytest.raises(NetworkError):
                await task
            assert qserve.stats()["inflight"] == 0

        run(scenario())

    def test_config_validation(self, served):
        with pytest.raises(ConfigurationError):
            QueryService(served, batch_window=-1.0)
        with pytest.raises(ConfigurationError):
            QueryService(served, batch_max=0)

    def test_batch_disabled_without_engine(self):
        store, bulletin, _ = make_committed_records(10, seed=5)
        service = ProverService(store, bulletin)  # no engine
        qserve = QueryService(service, batch=True)
        assert qserve.batch_enabled is False


class TestBatchQueryProver:
    def test_duplicate_sqls_rejected(self, served):
        from repro.qserve import BatchQueryProver
        prover = BatchQueryProver(served.engine)
        sql = "SELECT COUNT(*) FROM clogs"
        with pytest.raises(ConfigurationError):
            prover.prove_batch([sql, sql], served.state,
                               served.chain.latest.receipt, 2)

    def test_empty_batch_and_empty_state_rejected(self, served):
        from repro.core.clog import CLogState
        from repro.qserve import BatchQueryProver
        prover = BatchQueryProver(served.engine)
        with pytest.raises(ConfigurationError):
            prover.prove_batch([], served.state,
                               served.chain.latest.receipt, 2)
        with pytest.raises(ProofError):
            prover.prove_batch(["SELECT COUNT(*) FROM clogs"],
                               CLogState(),
                               served.chain.latest.receipt, 2)
