"""Unit tests for Merkle consistency proofs."""

import pytest

from repro.errors import MerkleError
from repro.hashing import sha256
from repro.merkle import ConsistencyProof, MerkleTree, \
    verify_consistency
from repro.merkle.consistency import aligned_blocks


def leaf(i: int):
    return sha256(i.to_bytes(4, "big"))


def tree_of(n: int) -> MerkleTree:
    return MerkleTree(leaf(i) for i in range(n))


class TestAlignedBlocks:
    @pytest.mark.parametrize("start,end,expected", [
        (0, 1, [(0, 0)]),
        (0, 8, [(3, 0)]),
        (0, 5, [(2, 0), (0, 4)]),
        (0, 7, [(2, 0), (1, 2), (0, 6)]),
        (5, 8, [(0, 5), (1, 3)]),
        (3, 3, []),
    ])
    def test_decomposition(self, start, end, expected):
        assert aligned_blocks(start, end) == expected

    def test_blocks_cover_range_exactly(self):
        for start, end in [(0, 13), (7, 29), (1, 2), (16, 33)]:
            covered = []
            for level, pos in aligned_blocks(start, end):
                covered.extend(range(pos << level,
                                     (pos + 1) << level))
            assert covered == list(range(start, end))

    def test_invalid_range(self):
        with pytest.raises(MerkleError):
            aligned_blocks(5, 3)


class TestConsistency:
    @pytest.mark.parametrize("old,new", [
        (1, 1), (1, 2), (2, 3), (3, 8), (4, 4), (5, 13),
        (8, 9), (7, 32), (16, 17), (1, 33),
    ])
    def test_honest_growth_verifies(self, old, new):
        old_tree = tree_of(old)
        new_tree = tree_of(new)
        proof = new_tree.prove_consistency(old)
        verify_consistency(old_tree.root, new_tree.root, proof)

    def test_every_checkpoint_pair(self):
        n = 20
        roots = {}
        tree = MerkleTree()
        for i in range(1, n + 1):
            tree.append(leaf(i - 1))
            roots[i] = tree.root
        for old in range(1, n + 1):
            proof = tree.prove_consistency(old)
            verify_consistency(roots[old], roots[n], proof)

    def test_rewritten_prefix_rejected(self):
        old_tree = tree_of(5)
        # A "new" tree that rewrote leaf 2 before appending.
        leaves = [leaf(i) for i in range(5)] + [leaf(5), leaf(6)]
        leaves[2] = sha256(b"rewritten")
        forked = MerkleTree(leaves)
        proof = forked.prove_consistency(5)
        with pytest.raises(MerkleError, match="rewritten"):
            verify_consistency(old_tree.root, forked.root, proof)

    def test_wrong_new_root_rejected(self):
        tree = tree_of(9)
        proof = tree.prove_consistency(4)
        with pytest.raises(MerkleError):
            verify_consistency(tree_of(4).root, sha256(b"x"), proof)

    def test_tampered_proof_node_rejected(self):
        old_tree = tree_of(4)
        new_tree = tree_of(9)
        proof = new_tree.prove_consistency(4)
        nodes = list(proof.nodes)
        level, pos, _digest = nodes[0]
        nodes[0] = (level, pos, sha256(b"forged"))
        forged = ConsistencyProof(old_size=4, new_size=9,
                                  nodes=tuple(nodes))
        with pytest.raises(MerkleError):
            verify_consistency(old_tree.root, new_tree.root, forged)

    def test_missing_node_rejected(self):
        old_tree = tree_of(4)
        new_tree = tree_of(9)
        proof = new_tree.prove_consistency(4)
        starved = ConsistencyProof(old_size=4, new_size=9,
                                   nodes=proof.nodes[1:])
        with pytest.raises(MerkleError, match="missing"):
            verify_consistency(old_tree.root, new_tree.root, starved)

    def test_shortcut_node_attack_rejected(self):
        """Soundness regression: a forged high-level node covering the
        whole new tree must not let the prover bypass the prefix
        constraint.

        Attack: keep the honest prefix nodes (so the old root checks
        out) but add a node at the new tree's apex taken from a
        *rewritten* tree; a lax verifier would use the apex node
        directly and never tie the new root to the prefix.
        """
        old_tree = tree_of(4)
        honest_new = tree_of(8)
        # The rewritten history the prover actually holds.
        leaves = [leaf(i) for i in range(8)]
        leaves[1] = sha256(b"rewritten")
        forked = MerkleTree(leaves)
        honest_proof = honest_new.prove_consistency(4)
        forged_nodes = tuple(
            (level, pos, digest)
            for level, pos, digest in honest_proof.nodes
        ) + ((3, 0, forked.root),)  # apex of the forked tree
        forged = ConsistencyProof(old_size=4, new_size=8,
                                  nodes=forged_nodes)
        with pytest.raises(MerkleError):
            verify_consistency(old_tree.root, forked.root, forged)

    def test_extra_noncanonical_nodes_rejected(self):
        tree = tree_of(8)
        proof = tree.prove_consistency(4)
        padded = ConsistencyProof(
            old_size=4, new_size=8,
            nodes=proof.nodes + ((0, 1, leaf(1)),))  # not canonical
        with pytest.raises(MerkleError, match="outside the canonical"):
            verify_consistency(tree_of(4).root, tree.root, padded)

    def test_size_validation(self):
        tree = tree_of(4)
        with pytest.raises(MerkleError):
            tree.prove_consistency(0)
        with pytest.raises(MerkleError):
            tree.prove_consistency(5)

    def test_wire_roundtrip(self):
        tree = tree_of(9)
        proof = tree.prove_consistency(4)
        restored = ConsistencyProof.from_wire(proof.to_wire())
        verify_consistency(tree_of(4).root, tree.root, restored)


class TestNodeAt:
    def test_full_subtrees_accessible(self):
        tree = tree_of(8)
        assert tree.node_at(3, 0) == tree.root
        assert tree.node_at(0, 5) == leaf(5)

    def test_partial_subtree_rejected(self):
        tree = tree_of(5)
        with pytest.raises(MerkleError, match="not fully occupied"):
            tree.node_at(2, 1)  # covers leaves 4..8, only 4 exists

    def test_level_bounds(self):
        tree = tree_of(4)
        with pytest.raises(MerkleError):
            tree.node_at(5, 0)
