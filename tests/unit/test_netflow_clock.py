"""Unit tests for the simulation clocks."""

import threading

import pytest

from repro.netflow.clock import SimClock, WallClock


class TestSimClock:
    def test_starts_at_configured_time(self):
        assert SimClock().now_ms() == 0
        assert SimClock(start_ms=500).now_ms() == 500

    def test_advance(self):
        clock = SimClock()
        assert clock.advance_ms(1_000) == 1_000
        assert clock.now_ms() == 1_000

    def test_sleep_advances(self):
        clock = SimClock()
        clock.sleep_ms(250)
        assert clock.now_ms() == 250

    def test_zero_sleep_is_noop(self):
        clock = SimClock()
        clock.sleep_ms(0)
        assert clock.now_ms() == 0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_ms(-1)

    def test_thread_safety(self):
        clock = SimClock()

        def advance():
            for _ in range(1_000):
                clock.advance_ms(1)

        threads = [threading.Thread(target=advance) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now_ms() == 4_000


class TestWallClock:
    def test_monotonic_progress(self):
        clock = WallClock()
        first = clock.now_ms()
        clock.sleep_ms(15)
        assert clock.now_ms() >= first + 10

    def test_starts_near_zero(self):
        assert WallClock().now_ms() < 1_000
