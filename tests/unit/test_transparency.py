"""Unit tests for the receipt transparency log."""

import pytest

from repro.core.transparency import LogCheckpoint, ReceiptTransparencyLog
from repro.errors import ChainError, IntegrityError
from repro.hashing import sha256


@pytest.fixture
def receipts(aggregated_system):
    return aggregated_system.prover.chain.receipts()


class TestAppend:
    def test_appends_rounds_in_order(self, receipts):
        log = ReceiptTransparencyLog()
        for index, receipt in enumerate(receipts):
            assert log.append(receipt) == index
        assert len(log) == len(receipts)

    def test_rejects_round_skips(self, receipts):
        if len(receipts) < 2:
            pytest.skip("need two rounds")
        log = ReceiptTransparencyLog()
        with pytest.raises(ChainError):
            log.append(receipts[1])  # round 1 before round 0

    def test_rejects_round_rewrites(self, receipts):
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        with pytest.raises(ChainError):
            log.append(receipts[0])  # round 0 again

    def test_root_evolves(self, receipts):
        log = ReceiptTransparencyLog()
        roots = []
        for receipt in receipts:
            log.append(receipt)
            roots.append(log.root)
        assert len(set(roots)) == len(roots)


class TestInclusion:
    def test_inclusion_proofs_verify(self, receipts):
        log = ReceiptTransparencyLog()
        for receipt in receipts:
            log.append(receipt)
        checkpoint = log.checkpoint()
        for index, receipt in enumerate(receipts):
            proof = log.prove_inclusion(index)
            ReceiptTransparencyLog.verify_inclusion(
                checkpoint, receipt.claim.digest(), proof)

    def test_wrong_claim_rejected(self, receipts):
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        proof = log.prove_inclusion(0)
        with pytest.raises(IntegrityError, match="stated claim"):
            ReceiptTransparencyLog.verify_inclusion(
                log.checkpoint(), sha256(b"other claim"), proof)

    def test_proof_beyond_checkpoint_rejected(self, receipts):
        if len(receipts) < 2:
            pytest.skip("need two rounds")
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        old_checkpoint = log.checkpoint()
        log.append(receipts[1])
        proof = log.prove_inclusion(1)
        with pytest.raises(IntegrityError):
            ReceiptTransparencyLog.verify_inclusion(
                old_checkpoint, receipts[1].claim.digest(), proof)


class TestConsistencyProofs:
    def test_explicit_proof_roundtrip(self, receipts):
        if len(receipts) < 2:
            pytest.skip("need two rounds")
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        old_checkpoint = log.checkpoint()
        log.append(receipts[1])
        proof = log.prove_consistency(old_checkpoint)
        ReceiptTransparencyLog.verify_consistency(
            old_checkpoint, log.checkpoint(), proof)

    def test_size_mismatch_rejected(self, receipts):
        if len(receipts) < 2:
            pytest.skip("need two rounds")
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        old_checkpoint = log.checkpoint()
        log.append(receipts[1])
        proof = log.prove_consistency(old_checkpoint)
        wrong = LogCheckpoint(size=old_checkpoint.size + 1,
                              root=old_checkpoint.root)
        with pytest.raises(IntegrityError, match="sizes"):
            ReceiptTransparencyLog.verify_consistency(
                wrong, log.checkpoint(), proof)

    def test_future_proof_refused(self, receipts):
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        future = LogCheckpoint(size=5, root=sha256(b"future"))
        with pytest.raises(ChainError):
            log.prove_consistency(future)


class TestConsistency:
    def test_prefix_consistency(self, receipts):
        log = ReceiptTransparencyLog()
        checkpoints = []
        for receipt in receipts:
            log.append(receipt)
            checkpoints.append(log.checkpoint())
        for checkpoint in checkpoints:
            assert log.consistent_with(checkpoint)

    def test_forked_history_detected(self, receipts):
        if len(receipts) < 2:
            pytest.skip("need two rounds")
        honest = ReceiptTransparencyLog()
        for receipt in receipts:
            honest.append(receipt)
        auditor_view = honest.checkpoint()
        # The provider "re-does" history with a different round 0.
        forked = ReceiptTransparencyLog()
        forked._claims = [sha256(b"rewritten round 0")] \
            + honest._claims[1:]
        from repro.merkle import MerkleTree
        from repro.merkle.hasher import default_hasher
        forked._tree = MerkleTree(
            default_hasher().leaf(c.raw) for c in forked._claims)
        assert not forked.consistent_with(auditor_view)

    def test_future_checkpoint_inconsistent(self, receipts):
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        future = LogCheckpoint(size=99, root=sha256(b"future"))
        assert not log.consistent_with(future)

    def test_checkpoint_wire_roundtrip(self, receipts):
        log = ReceiptTransparencyLog()
        log.append(receipts[0])
        checkpoint = log.checkpoint()
        assert LogCheckpoint.from_wire(checkpoint.to_wire()) == \
            checkpoint
