"""Unit tests for repro.hashing."""

import hashlib

import pytest

from repro.hashing import (
    DIGEST_SIZE,
    Digest,
    IncrementalHasher,
    hash_many,
    sha256,
    sha256_block_count,
    tagged_hash,
)


class TestDigest:
    def test_requires_32_bytes(self):
        with pytest.raises(ValueError):
            Digest(b"short")

    def test_requires_bytes_type(self):
        with pytest.raises(TypeError):
            Digest("00" * 32)

    def test_immutable(self):
        digest = Digest.zero()
        with pytest.raises(AttributeError):
            digest._raw = b"x" * 32

    def test_hex_roundtrip(self):
        digest = sha256(b"hello")
        assert Digest.from_hex(digest.hex()) == digest

    def test_equality_and_hash(self):
        a = sha256(b"x")
        b = sha256(b"x")
        assert a == b
        assert hash(a) == hash(b)
        assert a != sha256(b"y")

    def test_not_equal_to_raw_bytes(self):
        digest = sha256(b"x")
        assert digest != digest.raw

    def test_bytes_conversion(self):
        digest = sha256(b"x")
        assert bytes(digest) == digest.raw
        assert len(bytes(digest)) == DIGEST_SIZE

    def test_zero(self):
        assert Digest.zero().raw == b"\x00" * 32

    def test_short_form(self):
        digest = sha256(b"x")
        assert digest.hex().startswith(digest.short())
        assert len(digest.short()) == 8


class TestTaggedHash:
    def test_matches_construction(self):
        tag_digest = hashlib.sha256(b"mytag").digest()
        expected = hashlib.sha256(
            tag_digest + tag_digest + b"payload").digest()
        assert tagged_hash("mytag", b"payload").raw == expected

    def test_domain_separation(self):
        assert tagged_hash("a", b"data") != tagged_hash("b", b"data")

    def test_multiple_parts_concatenate(self):
        assert tagged_hash("t", b"ab", b"cd") == tagged_hash("t", b"abcd")

    def test_differs_from_plain_sha(self):
        assert tagged_hash("t", b"x") != sha256(b"x")


class TestHashMany:
    def test_framing_prevents_boundary_confusion(self):
        # Same concatenation, different item boundaries.
        assert hash_many("t", [b"ab", b"c"]) != hash_many("t", [b"a", b"bc"])

    def test_empty_list(self):
        assert hash_many("t", []) == hash_many("t", iter([]))

    def test_order_sensitive(self):
        assert hash_many("t", [b"a", b"b"]) != hash_many("t", [b"b", b"a"])


class TestIncrementalHasher:
    def test_matches_hash_many(self):
        items = [b"one", b"two", b"three"]
        hasher = IncrementalHasher("t")
        for item in items:
            hasher.update(item)
        assert hasher.digest() == hash_many("t", items)

    def test_digest_is_non_destructive(self):
        hasher = IncrementalHasher("t")
        hasher.update(b"a")
        first = hasher.digest()
        assert hasher.digest() == first
        hasher.update(b"b")
        assert hasher.digest() == hash_many("t", [b"a", b"b"])

    def test_item_count(self):
        hasher = IncrementalHasher("t")
        assert hasher.item_count == 0
        hasher.update(b"a")
        hasher.update(b"b")
        assert hasher.item_count == 2


class TestBlockCount:
    @pytest.mark.parametrize("num_bytes,expected", [
        (0, 1),        # padding alone needs one block
        (55, 1),       # 55 + 9 = 64 exactly
        (56, 2),       # 56 + 9 = 65 spills
        (64, 2),
        (119, 2),
        (120, 3),
    ])
    def test_padding_rule(self, num_bytes, expected):
        assert sha256_block_count(num_bytes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sha256_block_count(-1)
