"""Unit tests for the prover service."""

import pytest

from repro.core.prover_service import ProverService
from repro.errors import MissingCommitment, ProofError

from ..conftest import make_committed_records


@pytest.fixture
def service():
    store, bulletin, _count = make_committed_records(60)
    return ProverService(store, bulletin)


class TestAggregation:
    def test_aggregate_window_advances_state(self, service):
        result = service.aggregate_window(0)
        assert result.round == 0
        assert len(service.state) > 0
        assert len(service.chain) == 1
        assert service.state.root == result.new_root
        assert service.last_prove_info is not None

    def test_double_aggregation_rejected(self, service):
        service.aggregate_window(0)
        with pytest.raises(ProofError, match="already aggregated"):
            service.aggregate_window(0)

    def test_missing_window_raises(self, service):
        with pytest.raises(MissingCommitment):
            service.aggregate_window(99)

    def test_uncommitted_data_never_aggregated(self, service):
        """Rows present in the store but not on the bulletin must not
        enter a round."""
        service.store.append_records(
            "r1", 7, [])  # no-op window; now add real rows
        from ..conftest import make_record
        service.store.append_records("r1", 7, [make_record()])
        with pytest.raises(MissingCommitment):
            service.aggregate_window(7)

    def test_aggregate_all_committed(self):
        store, bulletin, _ = make_committed_records(40, window_index=0)
        # Add a second committed window.
        from repro.commitments import Commitment, window_digest
        from ..conftest import make_record
        extra = [make_record(router_id="r1", sport=4000 + i)
                 for i in range(3)]
        store.append_records("r1", 1, extra)
        bulletin.publish(Commitment(
            router_id="r1", window_index=1,
            digest=window_digest([r.to_bytes() for r in extra]),
            record_count=3, published_at_ms=10_000))
        service = ProverService(store, bulletin)
        results = service.aggregate_all_committed()
        assert [r.round for r in results] == [0, 1]
        assert len(service.chain) == 2
        # Re-running is a no-op.
        assert service.aggregate_all_committed() == []

    def test_multi_window_single_round(self):
        store, bulletin, _ = make_committed_records(40, window_index=0)
        from repro.commitments import Commitment, window_digest
        from ..conftest import make_record
        extra = [make_record(router_id="r2", sport=5000)]
        store.append_records("r2", 1, extra)
        bulletin.publish(Commitment(
            router_id="r2", window_index=1,
            digest=window_digest([r.to_bytes() for r in extra]),
            record_count=1, published_at_ms=10_000))
        service = ProverService(store, bulletin)
        result = service.aggregate_windows([0, 1])
        assert result.round == 0
        windows = {(w["r"], w["w"])
                   for w in result.journal_header["windows"]}
        assert ("r2", 1) in windows


class TestQueries:
    def test_query_before_aggregation_fails(self, service):
        from repro.errors import ChainError
        with pytest.raises(ChainError):
            service.answer_query("SELECT COUNT(*) FROM clogs")

    def test_query_counts_entries(self, service):
        service.aggregate_window(0)
        response = service.answer_query("SELECT COUNT(*) FROM clogs")
        assert response.value() == len(service.state)
        assert response.scanned == len(service.state)
        assert response.round == 0
        assert response.root == service.state.root

    def test_query_matches_host_evaluation(self, service):
        service.aggregate_window(0)
        sql = "SELECT SUM(lost_packets), MAX(hop_count) FROM clogs"
        response = service.answer_query(sql)
        from repro.query import evaluate, parse_query
        expected = evaluate(parse_query(sql), service.state.entry_views())
        assert response.values == expected.values

    def test_query_cache_returns_identical_response(self, service):
        service.aggregate_window(0)
        sql = "SELECT COUNT(*) FROM clogs"
        first = service.answer_query(sql)
        prove_info = service.last_prove_info
        second = service.answer_query(sql)
        assert second is first  # cache hit, no new proving
        assert service.last_prove_info is prove_info
        fresh = service.answer_query(sql, use_cache=False)
        assert fresh is not first
        assert fresh.receipt.claim_digest == first.receipt.claim_digest

    def test_paper_example_query_shape(self, service):
        service.aggregate_window(0)
        response = service.answer_query(
            'SELECT SUM(hop_count) FROM clogs '
            'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"')
        # No such flow in generated traffic: SUM over empty set.
        assert response.value() is None
        assert response.matched == 0

    def test_empty_chain_error_is_descriptive(self, service):
        from repro.errors import ChainError
        with pytest.raises(ChainError, match="aggregate_windows"):
            service.answer_query("SELECT COUNT(*) FROM clogs")

    def test_out_of_range_round_rejected(self, service):
        service.aggregate_window(0)
        with pytest.raises(ProofError, match="round"):
            service.answer_query("SELECT COUNT(*) FROM clogs",
                                 round_index=5)

    def test_query_cache_is_lru_bounded(self):
        from repro.errors import ConfigurationError
        store, bulletin, _ = make_committed_records(30)
        service = ProverService(store, bulletin, query_cache_size=2)
        service.aggregate_window(0)
        q1 = "SELECT COUNT(*) FROM clogs"
        q2 = "SELECT SUM(octets) FROM clogs"
        q3 = "SELECT MAX(hop_count) FROM clogs"
        first = service.answer_query(q1)
        service.answer_query(q2)
        # Touch q1 so q2 becomes the least recently used...
        assert service.answer_query(q1) is first
        service.answer_query(q3)  # ...and is evicted here.
        assert service.status()["cached_queries"] == 2
        assert service.status()["query_cache_max"] == 2
        assert service.answer_query(q1) is first       # survived
        assert service.answer_query(q2) is not None    # re-proved
        with pytest.raises(ConfigurationError):
            ProverService(store, bulletin, query_cache_size=0)

    def test_stale_round_is_a_cache_miss(self):
        """Regression: the cache key must include the committed root.

        Two chains can hold the *same round index* over *different
        data* (a restore onto a diverged chain, or any path that
        rebuilds state without renumbering rounds).  A cache keyed on
        (sql, round) alone would replay the other chain's response —
        a receipt binding a root the service no longer commits.  We
        replay that stale-round scenario literally: seed one service's
        cache into another whose round 0 committed a different root,
        and the lookup must miss.
        """
        sql = "SELECT COUNT(*) FROM clogs"
        store_a, bulletin_a, _ = make_committed_records(30, seed=1)
        service_a = ProverService(store_a, bulletin_a)
        service_a.aggregate_window(0)
        stale = service_a.answer_query(sql)

        store_b, bulletin_b, _ = make_committed_records(40, seed=2)
        service_b = ProverService(store_b, bulletin_b)
        service_b.aggregate_window(0)
        assert service_b.state.root != service_a.state.root
        # Same sql, same round index, diverged root: under the old
        # (sql, round) key this seeding would collide.
        service_b.query_cache.put(stale)
        fresh = service_b.answer_query(sql)
        assert fresh is not stale
        assert fresh.root == service_b.state.root
        assert fresh.scanned == len(service_b.state)

    def test_cache_key_carries_round_and_root(self):
        from repro.qserve.cache import result_cache_key
        store, bulletin, _ = make_committed_records(30)
        service = ProverService(store, bulletin)
        service.aggregate_window(0)
        sql = "SELECT COUNT(*) FROM clogs"
        response = service.answer_query(sql)
        # The key is derived from the response's own committed
        # identity; a different round or root addresses a different
        # entry.
        hit = service.query_cache.get(sql, 0, service.state.root)
        assert hit is response
        key = result_cache_key(sql, 0, service.state.root)
        assert key != result_cache_key(sql, 1, service.state.root)
        assert key != result_cache_key(sql + " ", 0, service.state.root)
