"""Unit tests for flow keys and NetFlow records."""

import pytest

from repro.errors import ConfigurationError, SerializationError
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.serialization import decode

from ..conftest import make_record


class TestFlowKey:
    def test_pack_unpack_roundtrip(self):
        key = FlowKey("192.168.1.7", "8.8.8.8", 443, 51000, 6)
        assert FlowKey.unpack(key.pack()) == key
        assert len(key.pack()) == 13

    def test_invalid_address(self):
        with pytest.raises(ConfigurationError):
            FlowKey("999.1.1.1", "8.8.8.8", 1, 2, 6)

    def test_invalid_port(self):
        with pytest.raises(ConfigurationError):
            FlowKey("1.1.1.1", "2.2.2.2", 70000, 2, 6)
        with pytest.raises(ConfigurationError):
            FlowKey("1.1.1.1", "2.2.2.2", -1, 2, 6)

    def test_invalid_protocol(self):
        with pytest.raises(ConfigurationError):
            FlowKey("1.1.1.1", "2.2.2.2", 1, 2, 300)

    def test_unpack_wrong_length(self):
        with pytest.raises(ConfigurationError):
            FlowKey.unpack(b"short")

    def test_reversed(self):
        key = FlowKey("1.1.1.1", "2.2.2.2", 10, 20, 17)
        rev = key.reversed()
        assert rev.src_addr == "2.2.2.2"
        assert rev.src_port == 20
        assert rev.reversed() == key

    def test_ordering_and_hash(self):
        a = FlowKey("1.1.1.1", "2.2.2.2", 1, 2, 6)
        b = FlowKey("1.1.1.2", "2.2.2.2", 1, 2, 6)
        assert a < b
        assert len({a, b, FlowKey("1.1.1.1", "2.2.2.2", 1, 2, 6)}) == 2

    def test_to_bytes_key_matches_pack(self):
        key = FlowKey("1.1.1.1", "2.2.2.2", 1, 2, 6)
        assert key.to_bytes_key() == key.pack()

    def test_str(self):
        key = FlowKey("1.1.1.1", "2.2.2.2", 10, 20, 6)
        assert str(key) == "1.1.1.1:10->2.2.2.2:20/6"


class TestNetFlowRecord:
    def test_wire_roundtrip(self):
        record = make_record()
        assert NetFlowRecord.from_wire(decode(record.to_bytes())) == record

    def test_digest_changes_with_content(self):
        a = make_record()
        b = make_record(packets=101)
        assert a.digest() != b.digest()

    def test_extra_excluded_from_canonical_bytes(self):
        a = make_record()
        b = make_record(extra={"app": "video"})
        assert a.to_bytes() == b.to_bytes()
        assert a == b  # extra is compare=False

    def test_negative_counters_rejected(self):
        with pytest.raises(ConfigurationError):
            make_record(packets=-1)
        with pytest.raises(ConfigurationError):
            make_record(lost_packets=-5)

    def test_timestamps_ordered(self):
        with pytest.raises(ConfigurationError):
            make_record(first_switched_ms=10, last_switched_ms=5)

    def test_duration(self):
        record = make_record(first_switched_ms=1000,
                             last_switched_ms=4000)
        assert record.duration_ms == 3000

    def test_loss_rate(self):
        record = make_record(packets=90, lost_packets=10)
        assert record.loss_rate == pytest.approx(0.1)
        zero = make_record(packets=0, lost_packets=0, octets=0)
        assert zero.loss_rate == 0.0

    def test_throughput(self):
        record = make_record(octets=125_000, first_switched_ms=0,
                             last_switched_ms=1000)
        assert record.throughput_bps == pytest.approx(1_000_000)
        instant = make_record(first_switched_ms=5, last_switched_ms=5)
        assert instant.throughput_bps == 0.0

    def test_with_updates(self):
        record = make_record()
        changed = record.with_updates(lost_packets=0)
        assert changed.lost_packets == 0
        assert changed.key == record.key
        assert record.lost_packets == 1  # original untouched

    def test_malformed_wire_raises_serialization_error(self):
        wire = decode(make_record().to_bytes())
        wire["unknown_field"] = 1
        with pytest.raises(SerializationError):
            NetFlowRecord.from_wire(wire)

    def test_wire_missing_key(self):
        wire = decode(make_record().to_bytes())
        del wire["key"]
        with pytest.raises(SerializationError):
            NetFlowRecord.from_wire(wire)
