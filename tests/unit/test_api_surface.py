"""Gap-filling tests for small public API surfaces."""

import pytest

from repro.hashing import sha256


class TestMerkleMapSurface:
    def test_leaf_digest_matches_tree(self):
        from repro.merkle import MerkleMap
        m = MerkleMap()
        m.set("a", b"1")
        m.set("b", b"2")
        assert m.leaf_digest("a") == m.tree.leaf(m.index_of("a"))
        assert m.leaf_digest("a") == m.expected_leaf("a", b"1")


class TestSessionSurface:
    def test_cycles_in_category(self):
        from repro.zkvm import ExecutorEnvBuilder, Executor, \
            guest_program

        @guest_program("category-probe")
        def probe(env):
            env.tick(123, "custom-work")
            env.commit(1)

        session = Executor().execute(probe,
                                     ExecutorEnvBuilder().build())
        assert session.cycles_in("custom-work") == 123
        assert session.cycles_in("nonexistent") == 0


class TestTopologySurface:
    def test_graph_property_exposes_networkx(self):
        import networkx as nx
        from repro.netflow.topology import NetworkTopology
        topo = NetworkTopology.linear(3)
        assert isinstance(topo.graph, nx.Graph)
        assert set(topo.graph.nodes) == {"r1", "r2", "r3"}


class TestTransparencySurface:
    def test_claim_at(self, aggregated_system):
        from repro.core.transparency import ReceiptTransparencyLog
        from repro.errors import ChainError
        log = ReceiptTransparencyLog()
        receipts = aggregated_system.prover.chain.receipts()
        for receipt in receipts:
            log.append(receipt)
        assert log.claim_at(0) == receipts[0].claim.digest()
        with pytest.raises(ChainError):
            log.claim_at(len(receipts))


class TestDaemonSurface:
    def test_oldest_lag_tracks_clock(self):
        from repro.commitments import (BulletinBoard, Commitment,
                                       window_digest)
        from repro.core.daemon import AggregationDaemon
        from repro.core.prover_service import ProverService
        from repro.netflow.clock import SimClock
        from repro.storage import MemoryLogStore
        from ..conftest import make_record
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        records = [make_record()]
        store.append_records("r1", 0, records)
        bulletin.publish(Commitment(
            "r1", 0, window_digest([r.to_bytes() for r in records]),
            1, 0))
        clock = SimClock()
        daemon = AggregationDaemon(ProverService(store, bulletin),
                                   clock)
        assert daemon.oldest_lag_ms() == 0
        daemon.pending_windows()  # first sighting at t=0
        clock.advance_ms(700)
        assert daemon.oldest_lag_ms() == 700


class TestSignedBaselineSurface:
    def test_register_router_idempotent(self):
        from repro.baselines import SignedLogBaseline
        baseline = SignedLogBaseline()
        baseline.register_router("r1")
        key_before = baseline._keys["r1"]
        baseline.register_router("r1")
        assert baseline._keys["r1"] == key_before


class TestEvaluatePredicateSurface:
    def test_none_predicate_matches_everything(self):
        from repro.query.evaluator import evaluate_predicate
        assert evaluate_predicate(None, {"anything": 1})

    def test_predicate_from_wire_none(self):
        from repro.query.ast import predicate_from_wire
        assert predicate_from_wire(None) is None

    def test_unknown_wire_kind(self):
        from repro.errors import QueryError
        from repro.query.ast import predicate_from_wire
        with pytest.raises(QueryError):
            predicate_from_wire({"kind": "mystery"})


class TestReceiptBindings:
    def test_bindings_are_domain_separated(self):
        from repro.zkvm.receipt import (groth16_binding,
                                        succinct_binding)
        claim = sha256(b"claim")
        assert groth16_binding(claim) != succinct_binding(claim)

    def test_expand_seal_deterministic_prefix(self):
        from repro.zkvm.receipt import expand_seal
        binding = sha256(b"b")
        assert expand_seal(binding, 64) == expand_seal(binding, 256)[:64]
        assert len(expand_seal(binding, 100)) == 100
