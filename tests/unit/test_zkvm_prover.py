"""Unit tests for the prover and receipt construction."""

import pytest

from repro.errors import GuestAbort, ProofError
from repro.zkvm import (
    ExecutorEnvBuilder,
    Executor,
    Prover,
    ProverOpts,
    Receipt,
    ReceiptKind,
    guest_program,
)
from repro.zkvm.receipt import GROTH16_SEAL_SIZE, SUCCINCT_SEAL_SIZE


@guest_program("worker")
def worker_guest(env):
    data = env.read()
    env.commit(env.sha256(data))
    env.commit(len(data))


@guest_program("abort-now")
def abort_guest(env):
    env.abort("no")


def prove(kind: ReceiptKind = ReceiptKind.GROTH16, payload=b"data"):
    return Prover(ProverOpts(kind=kind)).prove(
        worker_guest, ExecutorEnvBuilder().write(payload).build())


class TestProve:
    def test_groth16_seal_is_256_bytes(self):
        info = prove(ReceiptKind.GROTH16)
        assert info.receipt.kind is ReceiptKind.GROTH16
        assert info.receipt.seal_size == GROTH16_SEAL_SIZE == 256

    def test_succinct_seal_constant_size(self):
        small = prove(ReceiptKind.SUCCINCT, b"x")
        large = prove(ReceiptKind.SUCCINCT, b"x" * 5000)
        assert small.receipt.seal_size == SUCCINCT_SEAL_SIZE
        assert large.receipt.seal_size == SUCCINCT_SEAL_SIZE

    def test_composite_contains_segments(self):
        info = prove(ReceiptKind.COMPOSITE)
        assert info.receipt.kind is ReceiptKind.COMPOSITE
        assert len(info.receipt.inner.segments) == \
            info.stats.segment_count

    def test_claim_binds_journal_and_input(self):
        info = prove()
        claim = info.receipt.claim
        assert claim.image_id == worker_guest.image_id
        assert claim.journal_digest == info.receipt.journal.digest
        assert claim.input_digest == info.session.input.digest

    def test_abort_produces_no_receipt(self):
        with pytest.raises(GuestAbort):
            Prover().prove(abort_guest, ExecutorEnvBuilder().build())

    def test_cannot_prove_aborted_session(self):
        session = Executor().execute(abort_guest,
                                     ExecutorEnvBuilder().build())
        with pytest.raises(ProofError):
            Prover().prove_session(session)

    def test_stats_populated(self):
        info = prove()
        assert info.stats.total_cycles > 0
        assert info.stats.padded_cycles >= info.stats.total_cycles
        assert info.stats.segment_count == 1
        assert info.stats.sha_compressions > 0
        assert info.stats.wall_seconds >= 0
        assert "io" in info.stats.cycle_breakdown

    def test_deterministic_receipts(self):
        a = prove().receipt
        b = prove().receipt
        assert a.claim_digest == b.claim_digest
        assert a.inner.seal_bytes == b.inner.seal_bytes


class TestReceiptSerialization:
    def test_bytes_roundtrip(self):
        receipt = prove().receipt
        restored = Receipt.from_bytes(receipt.to_bytes())
        assert restored.claim_digest == receipt.claim_digest
        assert restored.journal == receipt.journal
        assert restored.inner.seal_bytes == receipt.inner.seal_bytes

    def test_json_roundtrip(self):
        receipt = prove().receipt
        restored = Receipt.from_json_bytes(receipt.to_json_bytes())
        assert restored.claim_digest == receipt.claim_digest

    def test_composite_roundtrip(self):
        receipt = prove(ReceiptKind.COMPOSITE).receipt
        restored = Receipt.from_bytes(receipt.to_bytes())
        assert restored.claim_digest == receipt.claim_digest
        assert len(restored.inner.segments) == \
            len(receipt.inner.segments)

    def test_receipt_size_tracks_json(self):
        receipt = prove().receipt
        assert receipt.receipt_size == len(receipt.to_json_bytes())

    def test_journal_hex_doubling(self):
        """JSON receipts hex-encode the journal: receipt ≈ 2× journal
        plus a constant envelope (the Table 1 ratio)."""
        small = prove(payload=b"x").receipt
        large = prove(payload=b"x" * 8000).receipt
        growth = large.receipt_size - small.receipt_size
        journal_growth = large.journal_size - small.journal_size
        assert growth == pytest.approx(2 * journal_growth, rel=0.05)


class TestProverOpts:
    def test_factories(self):
        assert ProverOpts.composite().kind is ReceiptKind.COMPOSITE
        assert ProverOpts.succinct().kind is ReceiptKind.SUCCINCT
        assert ProverOpts.groth16().kind is ReceiptKind.GROTH16

    def test_default_is_groth16(self):
        assert ProverOpts().kind is ReceiptKind.GROTH16
