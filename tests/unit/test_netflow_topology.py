"""Unit tests for topologies."""

import pytest

from repro.errors import ConfigurationError
from repro.netflow.topology import LinkSpec, NetworkTopology


class TestConstruction:
    def test_add_router_and_link(self):
        topo = NetworkTopology()
        topo.add_router("a")
        topo.add_router("b")
        topo.add_link("a", "b", LinkSpec(latency_us=500))
        assert topo.link("a", "b").latency_us == 500
        assert topo.router("a").loopback.startswith("192.0.2.")

    def test_duplicate_router_rejected(self):
        topo = NetworkTopology()
        topo.add_router("a")
        with pytest.raises(ConfigurationError):
            topo.add_router("a")

    def test_link_requires_known_routers(self):
        topo = NetworkTopology()
        topo.add_router("a")
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "ghost")

    def test_unknown_lookups(self):
        topo = NetworkTopology.linear(2)
        with pytest.raises(ConfigurationError):
            topo.router("zzz")
        with pytest.raises(ConfigurationError):
            topo.link("r1", "r1")

    def test_link_spec_validation(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            LinkSpec(latency_us=-1)


class TestPaths:
    def test_linear_path(self):
        topo = NetworkTopology.linear(4)
        assert topo.path("r1", "r4") == ["r1", "r2", "r3", "r4"]
        assert topo.path("r3", "r1") == ["r3", "r2", "r1"]

    def test_self_path(self):
        topo = NetworkTopology.linear(2)
        assert topo.path("r1", "r1") == ["r1"]

    def test_star_paths_go_through_core(self):
        topo = NetworkTopology.star(3)
        assert topo.path("edge1", "edge3") == ["edge1", "core", "edge3"]

    def test_mesh_paths_are_direct(self):
        topo = NetworkTopology.mesh(4)
        assert topo.path("r1", "r3") == ["r1", "r3"]

    def test_min_latency_routing(self):
        topo = NetworkTopology()
        for r in ("a", "b", "c"):
            topo.add_router(r)
        topo.add_link("a", "c", LinkSpec(latency_us=10_000))
        topo.add_link("a", "b", LinkSpec(latency_us=1_000))
        topo.add_link("b", "c", LinkSpec(latency_us=1_000))
        assert topo.path("a", "c") == ["a", "b", "c"]

    def test_disconnected_raises(self):
        topo = NetworkTopology()
        topo.add_router("a")
        topo.add_router("b")
        with pytest.raises(ConfigurationError):
            topo.path("a", "b")

    def test_path_latency_and_jitter(self):
        spec = LinkSpec(latency_us=2_000, jitter_us=100)
        topo = NetworkTopology.linear(3, spec)
        path = topo.path("r1", "r3")
        assert topo.path_latency_us(path) == 4_000
        assert topo.path_jitter_us(path) == 200


class TestCannedTopologies:
    def test_paper_eval_is_four_routers(self):
        topo = NetworkTopology.paper_eval()
        assert len(topo.router_ids()) == 4

    def test_minimum_sizes(self):
        with pytest.raises(ConfigurationError):
            NetworkTopology.linear(0)
        with pytest.raises(ConfigurationError):
            NetworkTopology.star(0)
        with pytest.raises(ConfigurationError):
            NetworkTopology.mesh(0)

    def test_router_ids_sorted(self):
        topo = NetworkTopology.star(3)
        assert topo.router_ids() == sorted(topo.router_ids())
