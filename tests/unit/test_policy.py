"""Unit tests for aggregation policies."""

import pytest

from repro.core.policy import (
    AggOp,
    AggregationPolicy,
    DEFAULT_POLICY,
    POLICY_FIELDS,
    SUM_ALL_POLICY,
)
from repro.errors import ConfigurationError


class TestAggOp:
    def test_sum(self):
        assert AggOp.SUM.combine(3, 4) == 7

    def test_min_max(self):
        assert AggOp.MIN.combine(3, 4) == 3
        assert AggOp.MAX.combine(3, 4) == 4

    def test_last(self):
        assert AggOp.LAST.combine(3, 4) == 4


class TestPolicy:
    def test_default_policy_matches_paper_example(self):
        # §4: "packet loss counts ... summed to produce a total loss
        # count per flow".
        assert DEFAULT_POLICY.lost_packets is AggOp.SUM

    def test_op_for(self):
        assert DEFAULT_POLICY.op_for("packets") is AggOp.MAX
        with pytest.raises(ConfigurationError):
            DEFAULT_POLICY.op_for("rtt_us")

    def test_wire_roundtrip(self):
        for policy in (DEFAULT_POLICY, SUM_ALL_POLICY,
                       AggregationPolicy(packets=AggOp.LAST)):
            assert AggregationPolicy.from_wire(policy.to_wire()) == policy

    def test_bad_wire_rejected(self):
        with pytest.raises(ConfigurationError):
            AggregationPolicy.from_wire({"packets": "sum"})
        with pytest.raises(ConfigurationError):
            AggregationPolicy.from_wire(
                {field: "frobnicate" for field in POLICY_FIELDS})

    def test_digest_distinguishes_policies(self):
        assert DEFAULT_POLICY.digest() != SUM_ALL_POLICY.digest()
        assert DEFAULT_POLICY.digest() == AggregationPolicy().digest()
