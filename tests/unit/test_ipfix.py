"""Unit tests for the IPFIX transport."""

import pytest

from repro.errors import SerializationError
from repro.netflow.ipfix import (
    HEADER_LEN,
    IpfixCollector,
    IpfixExporter,
    IpfixHeader,
    PRIVATE_PEN,
    decode_message,
    decode_template_set,
    encode_message,
    encode_template_set,
)
from repro.netflow.template import STANDARD_TEMPLATE

from ..conftest import make_record


def records(n):
    return [make_record(sport=1000 + i, packets=10 + i)
            for i in range(n)]


class TestHeader:
    def test_roundtrip(self):
        header = IpfixHeader(export_time=1234, sequence=7,
                             observation_domain=42)
        message = encode_message(header, [], [])
        decoded, length = IpfixHeader.decode(message)
        assert decoded == header
        assert length == HEADER_LEN

    def test_version_enforced(self):
        bad = bytearray(encode_message(
            IpfixHeader(0, 0, 0), [], []))
        bad[0:2] = (9).to_bytes(2, "big")  # v9, not IPFIX
        with pytest.raises(SerializationError, match="version 9"):
            IpfixHeader.decode(bytes(bad))

    def test_length_field_is_total_message_length(self):
        header = IpfixHeader(0, 0, 0)
        message = encode_message(header, [STANDARD_TEMPLATE],
                                 records(3))
        _decoded, length = IpfixHeader.decode(message)
        assert length == len(message)

    def test_length_beyond_data_rejected(self):
        message = encode_message(IpfixHeader(0, 0, 0), [], records(2))
        with pytest.raises(SerializationError):
            decode_message(message[:-4])


class TestTemplateSets:
    def test_enterprise_fields_roundtrip(self):
        set_bytes = encode_template_set(STANDARD_TEMPLATE)
        # Strip the set header before decoding the body.
        templates = decode_template_set(set_bytes[4:])
        assert templates == [STANDARD_TEMPLATE]

    def test_enterprise_bit_present_for_vendor_fields(self):
        set_bytes = encode_template_set(STANDARD_TEMPLATE)
        assert PRIVATE_PEN.to_bytes(4, "big") in set_bytes

    def test_unknown_pen_rejected(self):
        set_bytes = bytearray(encode_template_set(STANDARD_TEMPLATE))
        index = set_bytes.find(PRIVATE_PEN.to_bytes(4, "big"))
        set_bytes[index:index + 4] = (9999).to_bytes(4, "big")
        with pytest.raises(SerializationError, match="enterprise"):
            decode_template_set(bytes(set_bytes[4:]))


class TestExporterCollector:
    def test_roundtrip(self):
        original = records(25)
        exporter = IpfixExporter(observation_domain=9,
                                 max_records_per_message=10)
        collector = IpfixCollector()
        received = []
        for message in exporter.export(original):
            received.extend(collector.ingest(message, router_id="r1"))
        assert len(received) == len(original)
        for sent, got in zip(original, received):
            assert got.key == sent.key
            assert got.packets == sent.packets
            assert got.rtt_us == sent.rtt_us

    def test_sequence_counts_records(self):
        exporter = IpfixExporter(observation_domain=9,
                                 max_records_per_message=10)
        exporter.export(records(25))
        assert exporter.records_sent == 25

    def test_sequence_gap_detected(self):
        exporter = IpfixExporter(observation_domain=9,
                                 max_records_per_message=5)
        messages = exporter.export(records(15))
        collector = IpfixCollector()
        collector.ingest(messages[0])
        collector.ingest(messages[2])  # drop one message
        assert collector.sequence_gaps == 1

    def test_data_without_template_dropped(self):
        exporter = IpfixExporter(observation_domain=9,
                                 template_refresh=100)
        first = exporter.export(records(2))  # template announced here
        second = exporter.export(records(2))  # data only
        collector = IpfixCollector()
        assert collector.ingest(second[0]) == []  # no template known
        assert len(collector.ingest(first[0])) == 2

    def test_domains_isolated(self):
        exporter_a = IpfixExporter(observation_domain=1)
        exporter_b = IpfixExporter(observation_domain=2)
        collector = IpfixCollector()
        got = []
        for message in exporter_a.export(records(2)):
            got.extend(collector.ingest(message))
        assert len(got) == 2
        # Domain 2's data-only message can't use domain 1's template.
        messages_b = IpfixExporter(observation_domain=2,
                                   template_refresh=100)
        messages_b.export(records(1))  # consume the refresh
        data_only = messages_b.export(records(2))
        fresh = IpfixCollector()
        assert fresh.ingest(data_only[0]) == []
        del exporter_b

    def test_cross_format_equivalence(self):
        """The same records survive v9 and IPFIX transports
        identically — framing is transport-only."""
        from repro.netflow import NetFlowCollector, NetFlowExporter
        original = records(10)
        via_v9 = []
        v9_collector = NetFlowCollector()
        for packet in NetFlowExporter(source_id=1).export(original):
            via_v9.extend(v9_collector.ingest(packet, router_id="r1"))
        via_ipfix = []
        ipfix_collector = IpfixCollector()
        for message in IpfixExporter(observation_domain=1) \
                .export(original):
            via_ipfix.extend(ipfix_collector.ingest(message,
                                                    router_id="r1"))
        assert [r.to_bytes() for r in via_v9] == \
            [r.to_bytes() for r in via_ipfix]
