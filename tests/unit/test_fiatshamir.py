"""Unit tests for the Fiat–Shamir transcript."""

import pytest

from repro.zkvm.fiatshamir import Transcript


class TestDeterminism:
    def test_same_inputs_same_challenges(self):
        def run():
            t = Transcript("proto")
            t.absorb("a", b"data")
            t.absorb_int("n", 42)
            return [t.challenge("c1"), t.challenge_int("c2", 1000)]
        assert run() == run()

    def test_protocol_separates(self):
        a = Transcript("proto-a")
        b = Transcript("proto-b")
        a.absorb("x", b"same")
        b.absorb("x", b"same")
        assert a.challenge("c") != b.challenge("c")

    def test_label_separates(self):
        a = Transcript("p")
        b = Transcript("p")
        a.absorb("label-1", b"same")
        b.absorb("label-2", b"same")
        assert a.challenge("c") != b.challenge("c")

    def test_absorb_order_matters(self):
        a = Transcript("p")
        b = Transcript("p")
        a.absorb("x", b"1")
        a.absorb("y", b"2")
        b.absorb("y", b"2")
        b.absorb("x", b"1")
        assert a.challenge("c") != b.challenge("c")

    def test_any_absorbed_bit_changes_challenges(self):
        a = Transcript("p")
        b = Transcript("p")
        a.absorb("x", b"\x00")
        b.absorb("x", b"\x01")
        assert a.challenge("c") != b.challenge("c")


class TestChallenges:
    def test_successive_challenges_differ(self):
        t = Transcript("p")
        assert t.challenge("c") != t.challenge("c")

    def test_challenge_advances_state(self):
        a = Transcript("p")
        b = Transcript("p")
        a.challenge("first")
        # b skips the first challenge: subsequent challenges diverge.
        assert a.challenge("second") != b.challenge("second")

    def test_challenge_int_in_range(self):
        t = Transcript("p")
        for bound in (1, 2, 7, 1000, 2**40):
            for _ in range(5):
                assert 0 <= t.challenge_int("i", bound) < bound

    def test_challenge_int_requires_positive_bound(self):
        with pytest.raises(ValueError):
            Transcript("p").challenge_int("i", 0)

    def test_challenge_indices_count_and_range(self):
        t = Transcript("p")
        indices = t.challenge_indices("q", 17, 16)
        assert len(indices) == 16
        assert all(0 <= i < 17 for i in indices)

    def test_indices_roughly_uniform(self):
        t = Transcript("p")
        draws = t.challenge_indices("q", 4, 400)
        counts = [draws.count(v) for v in range(4)]
        assert min(counts) > 50  # no bucket starved

    def test_absorb_digest_and_bytes_equivalent(self):
        from repro.hashing import sha256
        digest = sha256(b"payload")
        a = Transcript("p")
        b = Transcript("p")
        a.absorb("x", digest)
        b.absorb("x", digest.raw)
        assert a.challenge("c") == b.challenge("c")
