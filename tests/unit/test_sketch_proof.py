"""Unit tests for verifiable sketch telemetry."""

from collections import Counter

import pytest

from repro.core.prover_service import ProverService
from repro.core.sketch_proof import (
    SketchTelemetry,
    sketch_build_guest,
    verify_sketch_build,
    verify_sketch_estimate,
)
from repro.errors import GuestAbort, ProofError, VerificationError
from repro.hashing import sha256
from repro.netflow.records import FlowKey
from repro.zkvm import verify_receipt

from ..conftest import make_committed_records


@pytest.fixture(scope="module")
def setup():
    store, bulletin, _count = make_committed_records(150, seed=17)
    service = ProverService(store, bulletin)
    windows = service.gather_window(0)
    telemetry = SketchTelemetry(width=1024, depth=4, capacity=64)
    build = telemetry.build(windows, top_k=5)
    truth = Counter()
    for router_id in store.router_ids():
        for record in store.window_records(router_id, 0):
            truth[record.key] += record.packets
    return store, bulletin, windows, telemetry, build, truth


class TestBuild:
    def test_receipt_verifies(self, setup):
        *_rest, build, _truth = setup
        verify_receipt(build.receipt, sketch_build_guest.image_id)

    def test_journal_cross_checks_bulletin(self, setup):
        _store, bulletin, _w, _t, build, _truth = setup
        journal = verify_sketch_build(build.receipt, bulletin)
        assert journal["cm_digest"] == build.sketch.digest()

    def test_total_packets_exact(self, setup):
        *_rest, build, truth = setup
        journal = build.journal
        assert journal["total_packets"] == sum(truth.values())

    def test_heavy_hitters_are_real(self, setup):
        *_rest, build, truth = setup
        top_true = {key.pack() for key, _count in
                    Counter(truth).most_common(3)}
        reported = {item["k"] for item in build.journal["top"]}
        # The true top-3 must appear in the reported top-5.
        assert top_true <= reported

    def test_tampered_window_aborts_build(self, setup):
        store, bulletin, windows, telemetry, *_rest = setup
        import dataclasses
        forged = [dataclasses.replace(windows[0],
                                      commitment=sha256(b"no"))] \
            + list(windows[1:])
        with pytest.raises(GuestAbort, match="commitment mismatch"):
            telemetry.build(forged)

    def test_journal_hides_sketch_contents(self, setup):
        *_rest, build, _truth = setup
        journal = build.journal
        assert set(journal) == {"windows", "cm_digest", "cm_params",
                                "total_packets", "top"}
        # The sketch rows themselves never appear.
        assert "rows" not in journal


class TestEstimate:
    def test_estimate_never_undercounts_truth(self, setup):
        _s, _b, _w, telemetry, build, truth = setup
        for key, count in list(truth.items())[:10]:
            estimate = telemetry.prove_estimate(build, key)
            journal = verify_sketch_build(build.receipt, setup[1])
            proven = verify_sketch_estimate(estimate, journal)
            assert proven >= count

    def test_absent_flow_estimates_small(self, setup):
        _s, bulletin, _w, telemetry, build, truth = setup
        ghost = FlowKey("203.0.113.1", "203.0.113.2", 1, 2, 6)
        assert ghost not in truth
        estimate = telemetry.prove_estimate(build, ghost)
        journal = verify_sketch_build(build.receipt, bulletin)
        proven = verify_sketch_estimate(estimate, journal)
        # Sparse sketch: collisions are unlikely at width 1024.
        assert proven < max(truth.values())

    def test_estimate_receipt_unconditional(self, setup):
        _s, _b, _w, telemetry, build, truth = setup
        key = next(iter(truth))
        estimate = telemetry.prove_estimate(build, key)
        assert not estimate.receipt.claim.assumptions

    def test_wrong_sketch_state_aborts(self, setup):
        """Substituting a different sketch state fails the digest check
        inside the guest."""
        _s, _b, _w, telemetry, build, truth = setup
        import dataclasses
        from repro.sketch import CountMinSketch
        fake = CountMinSketch(width=build.sketch.width,
                              depth=build.sketch.depth,
                              seed=build.sketch.seed)
        fake.add(b"fabricated", 10**9)
        forged_build = dataclasses.replace(build, sketch=fake)
        key = next(iter(truth))
        with pytest.raises(GuestAbort, match="digest"):
            telemetry.prove_estimate(forged_build, key)

    def test_estimate_against_wrong_build_rejected(self, setup):
        store, bulletin, windows, telemetry, build, truth = setup
        other_store, other_bulletin, _ = make_committed_records(
            80, seed=99)
        other_service = ProverService(other_store, other_bulletin)
        other_windows = other_service.gather_window(0)
        other_build = telemetry.build(other_windows)
        key = next(iter(truth))
        estimate = telemetry.prove_estimate(other_build, key)
        journal = verify_sketch_build(build.receipt, bulletin)
        with pytest.raises(ProofError, match="different sketch"):
            verify_sketch_estimate(estimate, journal)

    def test_lying_about_estimate_rejected(self, setup):
        _s, bulletin, _w, telemetry, build, truth = setup
        import dataclasses
        key = next(iter(truth))
        estimate = telemetry.prove_estimate(build, key)
        lying = dataclasses.replace(estimate,
                                    estimate=estimate.estimate + 1)
        journal = verify_sketch_build(build.receipt, bulletin)
        with pytest.raises(ProofError, match="does not match"):
            verify_sketch_estimate(lying, journal)


class TestVerifierRejections:
    def test_forged_build_journal_rejected(self, setup):
        _s, bulletin, _w, _t, build, _truth = setup
        import dataclasses
        from repro.zkvm.receipt import Journal
        from repro.serialization import encode
        journal = build.journal
        journal = dict(journal)
        journal["total_packets"] = 0
        forged = dataclasses.replace(
            build.receipt, journal=Journal(encode(journal)))
        with pytest.raises(VerificationError):
            verify_sketch_build(forged, bulletin)
