"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro import faults
from repro.errors import (
    ConfigurationError,
    ConnectionFailed,
    GuestAbort,
    MissingCommitment,
    StorageError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    inject_faults,
)


class TestSpecParsing:
    def test_minimal_spec_defaults(self):
        spec = FaultSpec.parse("store.window_blobs")
        assert spec.site == faults.STORE_WINDOW_BLOBS
        assert spec.error == "storage"
        assert spec.start == 1 and spec.every == 1
        assert spec.permanent

    def test_full_grammar_round_trips(self):
        text = "prover.prove:guest-abort:start=2,every=3,count=4"
        spec = FaultSpec.parse(text)
        assert spec.start == 2 and spec.every == 3 and spec.count == 4
        assert not spec.permanent
        assert FaultSpec.parse(spec.to_text()) == spec

    def test_plan_round_trips(self):
        plan = FaultPlan.parse(
            "store.window_blobs:storage:every=3;"
            "bulletin.get:timeout:count=1", seed=7)
        assert len(plan.specs) == 2
        assert plan.sites == {faults.STORE_WINDOW_BLOBS,
                              faults.BULLETIN_GET}
        assert FaultPlan.parse(plan.to_text(), seed=7) == plan

    @pytest.mark.parametrize("text", [
        "no.such.site",
        "store.window_blobs:no-such-error",
        "store.window_blobs:storage:start=0",
        "store.window_blobs:storage:every=0",
        "store.window_blobs:storage:count=0",
        "store.window_blobs:storage:p=0",
        "store.window_blobs:storage:p=1.5",
        "store.window_blobs:storage:bogus=1",
        "store.window_blobs:storage:start",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse(text)

    def test_every_error_kind_raises_its_domain_class(self):
        expected = {
            "storage": StorageError,
            "missing-commitment": MissingCommitment,
            "guest-abort": GuestAbort,
            "connection": ConnectionFailed,
        }
        for kind, cls in expected.items():
            spec = FaultSpec(site=faults.PROVER_PROVE, error=kind)
            assert isinstance(spec.make_error(1), cls)


class TestInjector:
    def test_schedule_every_third_from_third(self):
        plan = FaultPlan.parse(
            "store.window_blobs:storage:start=3,every=3")
        injector = FaultInjector(plan)
        outcomes = []
        for _ in range(9):
            try:
                injector.fire(faults.STORE_WINDOW_BLOBS)
                outcomes.append("ok")
            except StorageError:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault"] * 3
        assert injector.invocations(faults.STORE_WINDOW_BLOBS) == 9
        assert injector.injected(faults.STORE_WINDOW_BLOBS) == 3

    def test_count_makes_fault_transient(self):
        plan = FaultPlan.parse("bulletin.get:timeout:count=2")
        injector = FaultInjector(plan)
        fired = 0
        for _ in range(10):
            try:
                injector.fire(faults.BULLETIN_GET)
            except Exception:
                fired += 1
        assert fired == 2  # stops after count even though every=1

    def test_other_sites_unaffected(self):
        injector = FaultInjector(
            FaultPlan.parse("store.window_blobs:storage"))
        for _ in range(5):
            injector.fire(faults.BULLETIN_GET)  # never raises
        assert injector.injected(faults.BULLETIN_GET) == 0

    def test_probability_is_deterministic_per_seed(self):
        def run(seed):
            injector = FaultInjector(FaultPlan.parse(
                "prover.prove:proof:p=0.5", seed=seed))
            hits = []
            for i in range(20):
                try:
                    injector.fire(faults.PROVER_PROVE)
                    hits.append(0)
                except Exception:
                    hits.append(1)
            return hits

        assert run(1) == run(1)  # replayable
        assert run(1) != run(2)  # but seed-sensitive
        assert 0 < sum(run(1)) < 20

    def test_reset_replays_identically(self):
        injector = FaultInjector(FaultPlan.parse(
            "prover.prove:proof:p=0.3", seed=5))

        def trace():
            out = []
            for _ in range(15):
                try:
                    injector.fire(faults.PROVER_PROVE)
                    out.append(0)
                except Exception:
                    out.append(1)
            return out

        first = trace()
        injector.reset()
        assert trace() == first

    def test_inert_without_plan(self):
        injector = FaultInjector()
        assert not injector.enabled
        for _ in range(3):
            injector.fire(faults.STORE_WINDOW_BLOBS)
        assert injector.stats()["injected"] == {}

    def test_from_env_gated_off_by_default(self):
        injector = FaultInjector.from_env(environ={})
        assert not injector.enabled

    def test_from_env_parses_plan_and_seed(self):
        injector = FaultInjector.from_env(environ={
            faults.ENV_PLAN: "store.window_blobs:storage:every=2",
            faults.ENV_SEED: "3",
        })
        assert injector.enabled
        assert injector.plan.seed == 3
        assert injector.plan.sites == {faults.STORE_WINDOW_BLOBS}


class TestWrappers:
    def test_wired_service_sees_store_and_bulletin_faults(self):
        from repro.core.prover_service import ProverService
        from ..conftest import make_committed_records
        store, bulletin, _ = make_committed_records(10)
        service = ProverService(store, bulletin)
        injector = FaultInjector(FaultPlan.parse(
            "store.window_blobs:storage:start=1,count=1"))
        inject_faults(service, injector)
        with pytest.raises(StorageError):
            service.gather_window(0)
        # The transient fault fired once; the next gather succeeds.
        assert service.gather_window(0)
        assert injector.injected(faults.STORE_WINDOW_BLOBS) == 1

    def test_prover_fault_leaves_state_unchanged(self):
        from repro.core.prover_service import ProverService
        from repro.errors import ProofError
        from ..conftest import make_committed_records
        store, bulletin, _ = make_committed_records(10)
        service = ProverService(store, bulletin)
        injector = FaultInjector(FaultPlan.parse(
            "prover.prove:proof:count=1"))
        inject_faults(service, injector)
        with pytest.raises(ProofError):
            service.aggregate_window(0)
        assert len(service.chain) == 0
        assert service.aggregated_windows == frozenset()
        # Retry proves cleanly and the round is intact.
        result = service.aggregate_window(0)
        assert result.round == 0
