"""Property tests: metric registry invariants under arbitrary inputs."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry


def bucket_bounds(min_size=1, max_size=8):
    """Strictly increasing finite bucket boundaries."""
    return st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=min_size, max_size=max_size, unique=True,
    ).map(sorted)


observations = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    max_size=60)


class TestHistogramInvariants:
    @given(bucket_bounds(), observations)
    def test_counts_sum_to_observation_count(self, bounds, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        for value in values:
            hist.observe(value)
        data = hist.series_data()
        assert len(data["counts"]) == len(bounds) + 1
        assert sum(data["counts"]) == data["count"] == len(values)
        assert data["sum"] == sum(values)

    @given(bucket_bounds(), observations)
    def test_cumulative_counts_monotone(self, bounds, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        for value in values:
            hist.observe(value)
        cumulative = hist.cumulative_counts()
        assert len(cumulative) == len(bounds) + 1
        assert all(a <= b for a, b in
                   zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == len(values)

    @given(bucket_bounds(), st.floats(min_value=-1e6, max_value=1e6,
                                      allow_nan=False))
    def test_each_observation_lands_in_exactly_one_bucket(
            self, bounds, value):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=bounds)
        hist.observe(value)
        counts = hist.series_data()["counts"]
        assert sum(counts) == 1
        slot = counts.index(1)
        if slot < len(bounds):
            assert value <= bounds[slot]
        if slot > 0:
            assert value > bounds[slot - 1]


label_values = st.text(
    alphabet=st.characters(codec="ascii",
                           categories=("L", "N")),
    min_size=1, max_size=8)


class TestSnapshotRoundTrip:
    @given(st.lists(st.tuples(label_values, st.integers(0, 1000)),
                    max_size=20),
           observations)
    def test_json_round_trip_is_exact(self, increments, values):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", ("worker",))
        for worker, amount in increments:
            counter.inc(amount, worker=worker)
        gauge = registry.gauge("depth")
        gauge.set(len(values))
        hist = registry.histogram("latency_seconds")
        for value in values:
            hist.observe(abs(value))

        snapshot = registry.snapshot()
        decoded = json.loads(registry.to_json())
        assert decoded == snapshot
        restored = MetricsRegistry.from_snapshot(decoded)
        assert restored.snapshot() == snapshot

    @given(st.lists(st.tuples(label_values, st.integers(0, 100)),
                    min_size=1, max_size=20))
    def test_snapshot_series_are_sorted(self, increments):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", ("worker",))
        for worker, amount in increments:
            counter.inc(amount, worker=worker)
        (entry,) = registry.snapshot()["counters"]
        labels = [series["labels"]["worker"]
                  for series in entry["series"]]
        assert labels == sorted(labels)
        assert len(set(labels)) == len(labels)


class TestConcurrency:
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=10, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_concurrent_increments_lose_no_updates(self, workers, per):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", ("worker",))

        def hammer(worker_id):
            for _ in range(per):
                counter.inc(worker=f"w{worker_id % 2}")

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        total = sum(counter.value(worker=f"w{i}") for i in (0, 1))
        assert total == workers * per

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=10, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_observations_lose_no_updates(self, workers,
                                                     per):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=[0.5])

        def hammer(worker_id):
            for i in range(per):
                hist.observe(i % 2)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        data = hist.series_data()
        assert data["count"] == workers * per
        assert sum(data["counts"]) == workers * per
