"""Property tests for partitioned query proving.

Two invariants:

* **Strategy equivalence** — for any query in the grammar and any
  partition count, the partitioned pipeline commits a journal
  *byte-identical* to the serial full scan's (so receipts are
  interchangeable, caches agree, and clients cannot tell the
  strategies apart).  Float aggregates make this non-trivial: partial
  sums fold in subtree order, so the accumulators carry exact dyadic
  rationals and round to a float only once, at merge.
* **Planner self-consistency** — a cost estimate's ``seconds()`` is
  priced from the same segmentation that produced
  ``predicted_segments``; the two sources can never disagree (the PR 5
  bug had ``seconds()`` trusting a field the estimate computed
  separately).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.planner import (
    QueryCostEstimate,
    _segment_sizes,
    partition_layout,
)
from repro.core.prover_service import ProverService
from repro.core.query_proof import QueryProver
from repro.engine import ProvingEngine
from repro.zkvm import ProverOpts
from repro.zkvm import cycles as cy
from repro.zkvm.costmodel import CostModel

from ..conftest import make_committed_records

# Queries chosen to cross every merge shape: plain counts, int and
# float folds, AVG (fraction totals), and grouped variants over both
# low- and high-cardinality keys.
QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    "SELECT SUM(octets), MIN(packets), MAX(packets) FROM clogs",
    "SELECT AVG(rtt_avg_us), SUM(loss_rate) FROM clogs",
    "SELECT COUNT(*), AVG(jitter_avg_us) FROM clogs "
    "WHERE packets > 50 OR lost_packets > 0",
    "SELECT SUM(octets), AVG(rtt_avg_us) FROM clogs "
    "GROUP BY src_net16",
    "SELECT COUNT(*), SUM(throughput_bps) FROM clogs "
    "GROUP BY src_port",
]


@pytest.fixture(scope="module")
def proven():
    store, bulletin, _ = make_committed_records(70, seed=31)
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    engine = ProvingEngine(prover_opts=ProverOpts.groth16(),
                           backend="thread", max_workers=2)
    yield service, engine
    engine.close()


class TestStrategyEquivalence:
    @given(sql=st.sampled_from(QUERIES),
           partitions=st.integers(min_value=1, max_value=9))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture,
                  HealthCheck.too_slow])
    def test_partitioned_journal_is_byte_identical(self, proven, sql,
                                                   partitions):
        service, engine = proven
        receipt = service.chain.latest.receipt
        serial, _ = QueryProver().prove_query(
            sql, service.state, receipt)
        partitioned, info = QueryProver(
            engine=engine).prove_query_partitioned(
            sql, service.state, receipt, partitions)
        assert partitioned.receipt.journal.data == \
            serial.receipt.journal.data
        assert not partitioned.receipt.claim.assumptions
        assert info.num_partitions == \
            partition_layout(len(service.state), partitions)[1]


class TestPlannerSelfConsistency:
    @given(total=st.one_of(
        st.integers(min_value=0, max_value=1 << 26),
        # Dense coverage right at segment boundaries, where the two
        # segmentation paths used to drift apart.
        st.integers(min_value=-3, max_value=3).map(
            lambda d: max(0, (1 << 20) + d)),
        st.integers(min_value=-3, max_value=3).map(
            lambda d: max(0, 5 * (1 << 20) + d)),
    ))
    @settings(max_examples=200, deadline=None)
    def test_single_segmentation_source(self, total):
        sizes = _segment_sizes(total)
        # The walk agrees with the closed-form counter ...
        assert len(sizes) == cy.segment_count(total)
        assert sum(sizes) == max(total, 1)
        assert all(0 < s <= cy.SEGMENT_CYCLE_LIMIT for s in sizes)
        # ... and seconds() prices from that walk, not from whatever
        # predicted_segments says: a deliberately corrupted field must
        # not change the price.
        model = CostModel()
        honest = QueryCostEstimate(
            sql="q", entries=1, predicted_cycles=total,
            predicted_segments=len(sizes))
        corrupted = QueryCostEstimate(
            sql="q", entries=1, predicted_cycles=total,
            predicted_segments=len(sizes) + 7)
        assert honest.seconds(model) == corrupted.seconds(model)
        expected = sum(
            (1 << max(cy.SEGMENT_MIN_PO2, (s - 1).bit_length()))
            for s in sizes) / model.cpu_cycles_per_second \
            + len(sizes) * model.segment_overhead + model.base_overhead
        assert honest.seconds(model) == pytest.approx(expected)
