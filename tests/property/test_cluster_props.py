"""Property tests: remote proving can never change what is proven.

The cluster's central claim mirrors the engine's cache claim: fanning
jobs out to untrusted worker daemons — including through node death,
lease stealing and re-dispatch — yields receipts and journals
*byte-identical* to local serial execution, for arbitrary job mixes
and round layouts.
"""

from __future__ import annotations

import time

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterOpts, WorkerServer
from repro.commitments import window_digest
from repro.core.aggregation import RouterWindowInput
from repro.core.guest_programs import merge_guest, register_guest
from repro.engine import ProofJob, ProverPool, ProvingEngine, execute_job
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.zkvm import ExecutorEnvBuilder, GuestProgram, verify_receipt


def _echo_fn(env):
    value = env.read()
    env.tick(50)
    env.commit({"echo": value})


echo_guest = register_guest(GuestProgram(_echo_fn, name="props/echo"))

FAST = ClusterOpts(poll_interval=0.02, request_timeout=2.0,
                   probe_timeout=0.5, backoff_base=0.05,
                   backoff_max=0.2, quarantine_after=1)


def echo_job(value):
    builder = ExecutorEnvBuilder()
    builder.write(value)
    return ProofJob.from_parts(echo_guest, builder.build())


def record(router_id, sport, packets, byte_count):
    return NetFlowRecord(
        router_id=router_id,
        key=FlowKey(src_addr=f"10.0.{sport % 250}.1",
                    dst_addr="10.0.0.254",
                    src_port=sport, dst_port=443, protocol=6),
        packets=packets, octets=byte_count,
        first_switched_ms=1_000, last_switched_ms=2_000)


def build_inputs(layout):
    inputs = []
    for index, (n_records, seed) in enumerate(layout):
        router_id = f"r{index + 1}"
        blobs = tuple(
            record(router_id, sport=1_000 + j,
                   packets=(seed + j) % 1_000 + 1,
                   byte_count=((seed * 7 + j) % 50_000) + 40).to_bytes()
            for j in range(n_records))
        inputs.append(RouterWindowInput(
            router_id=router_id, window_index=0,
            commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


job_values = st.lists(
    st.one_of(
        st.text(min_size=0, max_size=12),
        st.integers(min_value=-2**31, max_value=2**31),
        st.dictionaries(st.text(min_size=1, max_size=4),
                        st.integers(min_value=0, max_value=999),
                        max_size=3),
    ),
    min_size=1, max_size=6)


class BlackholeWorker(WorkerServer):
    """Accepts every lease, never finishes one: the node the stealing
    machinery exists for."""

    def _handle_result(self, body):
        reply = super()._handle_result(body)
        if reply.get("state") in ("done", "failed"):
            reply = {"state": "running", "lease": body.get("lease")}
        return reply


class TestRemoteIdentity:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(job_values)
    def test_remote_mix_byte_identical_to_serial(self, values):
        """Arbitrary job mixes: every remote receipt and journal is
        byte-for-byte what local execution produces."""
        with WorkerServer() as w1, WorkerServer() as w2:
            with ProverPool(backend="remote",
                            nodes=[w1.endpoint, w2.endpoint],
                            cluster_opts=FAST) as pool:
                futures = [pool.submit(echo_job(v)) for v in values]
                remote = [f.result(timeout=60) for f in futures]
        for value, result in zip(values, remote):
            local = execute_job(echo_job(value))
            assert result.receipt.to_json_bytes() == \
                local.receipt.to_json_bytes()
            assert result.receipt.journal == local.receipt.journal
            verify_receipt(result.receipt, echo_guest.image_id)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(job_values)
    def test_identity_survives_mid_run_node_death(self, values):
        """A node dying between submissions only re-routes work; the
        bytes cannot change."""
        victim = WorkerServer().start_background()
        with WorkerServer() as survivor:
            with ProverPool(backend="remote",
                            nodes=[victim.endpoint, survivor.endpoint],
                            cluster_opts=FAST) as pool:
                first = pool.submit(echo_job(values[0]))
                first.result(timeout=60)
                victim.stop_background()  # dies mid-run
                futures = [pool.submit(echo_job(v)) for v in values]
                remote = [f.result(timeout=60) for f in futures]
        for value, result in zip(values, remote):
            local = execute_job(echo_job(value))
            assert result.receipt.to_json_bytes() == \
                local.receipt.to_json_bytes()

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(job_values)
    def test_identity_survives_steal_and_redispatch(self, values):
        """A worker that sits on its leases forces the monitor to
        steal; the re-dispatched results are still exact."""
        opts = ClusterOpts(poll_interval=0.02, request_timeout=2.0,
                           probe_timeout=0.5, backoff_base=0.05,
                           backoff_max=0.2, quarantine_after=1,
                           lease_timeout=2.0, steal_factor=0.1)
        # Pad the mix so round-robin provably hands the blackhole at
        # least one lease even for single-value examples.
        payloads = [("idx", i, v)
                    for i, v in enumerate(values + ["pad-a", "pad-b",
                                                    "pad-c"])]
        with BlackholeWorker() as hole, WorkerServer() as honest:
            with ProverPool(backend="remote",
                            nodes=[hole.endpoint, honest.endpoint],
                            cluster_opts=opts) as pool:
                futures = [pool.submit(echo_job(p)) for p in payloads]
                remote = [f.result(timeout=120) for f in futures]
                snap = pool.snapshot()["cluster"]
        for payload, result in zip(payloads, remote):
            local = execute_job(echo_job(payload))
            assert result.receipt.to_json_bytes() == \
                local.receipt.to_json_bytes()
        # With half the fleet black-holing leases, at least one steal
        # (or lease-expiry re-dispatch) must have fired for the run to
        # complete — and nothing may have been adopted twice.
        assert snap["steals"] >= 1 or any(
            n["jobs_failed"] >= 1 for n in snap["nodes"])


class TestRemoteRoundIdentity:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                              st.integers(min_value=1, max_value=9_999)),
                    min_size=1, max_size=3),
           st.integers(min_value=1, max_value=3))
    def test_engine_round_over_cluster_matches_serial(self, layout,
                                                      num_partitions):
        """Full engine rounds (partitions + merge) through the remote
        backend reproduce the serial round's receipt exactly."""
        inputs = build_inputs(layout)
        with ProvingEngine(backend="serial") as engine:
            local = engine.prove_round(inputs, num_partitions)
        with WorkerServer() as w1, WorkerServer() as w2:
            with ProvingEngine(nodes=[w1.endpoint, w2.endpoint],
                               cluster_opts=FAST) as engine:
                assert engine.pool.backend == "remote"
                remote = engine.prove_round(inputs, num_partitions)
        assert remote.receipt.to_wire() == local.receipt.to_wire()
        assert remote.new_root == local.new_root
        assert [i.receipt.to_wire() for i in remote.partition_infos] \
            == [i.receipt.to_wire() for i in local.partition_infos]
        verify_receipt(remote.receipt, merge_guest.image_id)
