"""Property tests: canonical serialization invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import Digest
from repro.serialization import decode, encode


def digests():
    return st.binary(min_size=32, max_size=32).map(Digest)


def values(max_leaves: int = 30):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**100), max_value=2**100),
        st.binary(max_size=64),
        st.text(max_size=32),
        st.floats(allow_nan=False),
        digests(),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=6),
            st.dictionaries(st.text(max_size=8), children, max_size=6),
        ),
        max_leaves=max_leaves,
    )


class TestRoundTrip:
    @given(values())
    @settings(max_examples=300)
    def test_decode_inverts_encode(self, value):
        assert decode(encode(value)) == value

    @given(values())
    def test_encoding_deterministic(self, value):
        assert encode(value) == encode(value)

    @given(st.dictionaries(st.text(max_size=6),
                           st.integers(), max_size=8))
    def test_dict_insertion_order_irrelevant(self, mapping):
        reversed_insertion = dict(reversed(list(mapping.items())))
        assert encode(mapping) == encode(reversed_insertion)


class TestInjectivity:
    @given(values(max_leaves=10), values(max_leaves=10))
    @settings(max_examples=300)
    def test_distinct_values_distinct_encodings(self, a, b):
        if encode(a) == encode(b):
            assert a == b

    @given(st.lists(values(max_leaves=5), max_size=5))
    def test_concatenation_framing_unambiguous(self, items):
        from repro.serialization import decode_stream
        stream = b"".join(encode(item) for item in items)
        assert list(decode_stream(stream)) == items
