"""Property tests: sketch invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import CountMinSketch, HyperLogLog, SpaceSaving

streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=100)),
    max_size=80)


class TestCountMinProperties:
    @given(streams)
    @settings(max_examples=100)
    def test_never_undercounts(self, stream):
        sketch = CountMinSketch(width=64, depth=4)
        truth = Counter()
        for item, count in stream:
            sketch.add(item, count)
            truth[item] += count
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    @given(streams)
    def test_total_exact(self, stream):
        sketch = CountMinSketch(width=32, depth=3)
        for item, count in stream:
            sketch.add(item, count)
        assert sketch.total == sum(c for _i, c in stream)

    @given(streams, streams)
    @settings(max_examples=60)
    def test_merge_commutes(self, left, right):
        def build(stream):
            sketch = CountMinSketch(width=32, depth=3, seed=1)
            for item, count in stream:
                sketch.add(item, count)
            return sketch

        ab = build(left)
        ab.merge(build(right))
        ba = build(right)
        ba.merge(build(left))
        assert ab.digest() == ba.digest()

    @given(streams)
    def test_state_roundtrip_preserves_digest(self, stream):
        sketch = CountMinSketch(width=32, depth=3)
        for item, count in stream:
            sketch.add(item, count)
        assert CountMinSketch.from_state(sketch.to_state()).digest() \
            == sketch.digest()


class TestSpaceSavingProperties:
    @given(streams)
    @settings(max_examples=100)
    def test_estimate_bounds_truth(self, stream):
        sketch = SpaceSaving(capacity=8)
        truth = Counter()
        for item, count in stream:
            sketch.add(item, count)
            truth[item] += count
        for item, count in truth.items():
            estimate = sketch.estimate(item)
            if estimate:  # tracked
                assert estimate >= count or \
                    sketch.guaranteed(item) <= count <= estimate \
                    or estimate >= sketch.guaranteed(item)
                # Upper bound property: estimate >= true count always
                # holds for tracked items in Space-Saving.
                assert estimate >= min(count, estimate)

    @given(streams)
    def test_capacity_respected(self, stream):
        sketch = SpaceSaving(capacity=5)
        for item, count in stream:
            sketch.add(item, count)
        assert len(sketch.top(100)) <= 5

    @given(streams)
    def test_tracked_estimate_never_undercounts(self, stream):
        sketch = SpaceSaving(capacity=8)
        truth = Counter()
        for item, count in stream:
            sketch.add(item, count)
            truth[item] += count
        tracked = {item for item, _c in sketch.top(100)}
        for item, count in truth.items():
            from repro.sketch.common import item_bytes
            if item_bytes(item) in tracked:
                assert sketch.estimate(item) >= count


class TestHLLProperties:
    @given(st.sets(st.integers(), max_size=300))
    @settings(max_examples=60)
    def test_merge_union_bound(self, items):
        split = len(items) // 2
        items = sorted(items)
        a, b = HyperLogLog(precision=10), HyperLogLog(precision=10)
        union = HyperLogLog(precision=10)
        for i, item in enumerate(items):
            (a if i < split else b).add(item)
            union.add(item)
        a.merge(b)
        assert a.to_state() == union.to_state()

    @given(st.sets(st.integers(), min_size=1, max_size=200))
    def test_estimate_positive_when_nonempty(self, items):
        hll = HyperLogLog(precision=8)
        for item in items:
            hll.add(item)
        assert hll.estimate() > 0
