"""Byte-identity property suite for the hot-path optimizations.

Every optimization behind the ``REPRO_HOTPATH`` gate — midstate tag
templates, the fast serialization decoder, buffered guest I/O with
batched SHA accounting, the memoized Merkle digest cache, vectorized
predicate scans — must be *observationally identical* to the reference
implementation it shadows.  These tests machine-check that claim by
running the same workloads with the gate on and off and asserting
equality of journal bytes, cycle totals and breakdowns, sha-compression
counts, digests, and query results.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import hotpath
from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.errors import QueryError, SerializationError
from repro.hashing import TAG_CLOG, hash_many, tagged_hash
from repro.merkle import MerkleTree, TaggedMerkleHasher, clear_memos
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.generator import TrafficConfig
from repro.netflow.records import NetFlowRecord
from repro.query import evaluate, evaluate_partial, parse_query
from repro.serialization import decode, encode
from repro.storage import MemoryLogStore
from repro.zkvm.guest import GuestEnv
from repro.zkvm import ExecutorEnvBuilder, Prover, ProverOpts, guest_program


def _meter_state(env: GuestEnv) -> tuple:
    meter = env.meter
    return (meter.total, dict(meter.by_category),
            meter.sha_compressions)


# -- primitive identity: serialization ---------------------------------------

values_strategy = st.recursive(
    st.none() | st.booleans()
    | st.integers(-(2**80), 2**80)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=6)
    | st.dictionaries(st.text(max_size=8), children, max_size=6),
    max_leaves=25,
)


class TestSerializationIdentity:
    @given(values_strategy)
    @settings(max_examples=200, deadline=None)
    def test_decode_identical_on_and_off(self, value):
        data = encode(value)
        with hotpath.force(True):
            fast = decode(data)
        with hotpath.disabled():
            reference = decode(data)
        assert fast == reference

    @given(st.binary(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_garbage_errors_identical(self, data):
        outcomes = []
        for gate in (True, False):
            with hotpath.force(gate):
                try:
                    outcomes.append(("ok", decode(data)))
                except SerializationError as exc:
                    outcomes.append(("err", str(exc)))
        assert outcomes[0] == outcomes[1]


# -- primitive identity: hashing and Merkle memo -----------------------------

class TestHashingIdentity:
    @given(st.lists(st.binary(max_size=40), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_tagged_and_framed_hashing(self, parts):
        with hotpath.force(True):
            fast = (tagged_hash(TAG_CLOG, *parts),
                    hash_many(TAG_CLOG, parts))
        with hotpath.disabled():
            reference = (tagged_hash(TAG_CLOG, *parts),
                         hash_many(TAG_CLOG, parts))
        assert fast == reference

    @given(st.lists(st.binary(min_size=1, max_size=30), min_size=1,
                    max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_merkle_roots_and_proofs(self, payloads):
        hasher = TaggedMerkleHasher()
        with hotpath.force(True):
            clear_memos()
            leaves = [hasher.leaf(p) for p in payloads]
            tree_fast = MerkleTree(leaves, hasher=hasher)
            # Second build must hit the memo and stay identical.
            tree_warm = MerkleTree(leaves, hasher=hasher)
        with hotpath.disabled():
            leaves_ref = [hasher.leaf(p) for p in payloads]
            tree_ref = MerkleTree(leaves_ref, hasher=hasher)
        assert leaves == leaves_ref
        assert tree_fast.root == tree_ref.root == tree_warm.root
        for index in range(len(payloads)):
            assert tree_fast.prove(index).siblings \
                == tree_ref.prove(index).siblings


# -- guest I/O: buffered reads / batched commits -----------------------------

class TestGuestIOIdentity:
    @given(st.lists(values_strategy, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_read_batch_matches_read_loop(self, values):
        frames = tuple(encode(v) for v in values)
        with hotpath.force(True):
            env_fast = GuestEnv(frames)
            got_fast = env_fast.read_batch(len(values))
        with hotpath.disabled():
            env_ref = GuestEnv(frames)
            got_ref = [env_ref.read() for _ in range(len(values))]
        assert got_fast == got_ref
        assert _meter_state(env_fast) == _meter_state(env_ref)

    @given(st.lists(values_strategy, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_commit_many_matches_commit_loop(self, values):
        with hotpath.force(True):
            env_fast = GuestEnv(())
            env_fast.commit_many(values)
        with hotpath.disabled():
            env_ref = GuestEnv(())
            for value in values:
                env_ref.commit(value)
        assert env_fast.journal_data == env_ref.journal_data
        assert _meter_state(env_fast) == _meter_state(env_ref)

    @given(st.lists(st.binary(min_size=1, max_size=30), min_size=2,
                    max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_metered_merkle_charges_despite_memo(self, payloads):
        def build(env):
            hasher = env.merkle_hasher()
            leaves = [hasher.leaf(p) for p in payloads]
            return MerkleTree(leaves, hasher=hasher).root

        with hotpath.force(True):
            clear_memos()
            env_cold = GuestEnv(())
            root_cold = build(env_cold)
            env_warm = GuestEnv(())  # all digests now memoized
            root_warm = build(env_warm)
        with hotpath.disabled():
            env_ref = GuestEnv(())
            root_ref = build(env_ref)
        assert root_cold == root_warm == root_ref
        assert _meter_state(env_cold) == _meter_state(env_warm) \
            == _meter_state(env_ref)


# -- vectorized query scans ---------------------------------------------------

def _entry(i: int) -> dict:
    return {
        "src_ip": f"10.0.{i % 4}.{i % 7}",
        "dst_ip": f"10.1.{i % 3}.{i % 5}",
        "packets": (i * 37) % 211,
        "octets": (i * 911) % 10_000,
        "hop_count": i % 6,
        "loss_rate": ((i * 13) % 29) / 29.0,
        "protocol": 6 if i % 2 else 17,
    }


QUERY_POOL = (
    "SELECT COUNT(*) FROM clogs",
    "SELECT COUNT(*) FROM clogs WHERE packets > 100",
    "SELECT SUM(octets) FROM clogs WHERE protocol = 6",
    "SELECT SUM(hop_count), COUNT(*) FROM clogs "
    'WHERE src_ip = "10.0.1.3" AND packets >= 10',
    "SELECT AVG(loss_rate) FROM clogs WHERE loss_rate > 0.5",
    "SELECT MIN(octets), MAX(octets) FROM clogs "
    "WHERE packets > 50 OR hop_count = 2",
    "SELECT SUM(packets) FROM clogs WHERE NOT protocol = 17",
    'SELECT COUNT(*) FROM clogs WHERE src_ip IN "10.0.0.0/16"',
    "SELECT SUM(octets) FROM clogs GROUP BY protocol",
    "SELECT COUNT(*), AVG(packets) FROM clogs "
    "WHERE octets < 5000 GROUP BY hop_count",
    # str group column: vectorized np.unique bucketing
    "SELECT SUM(packets) FROM clogs "
    "WHERE packets > 20 GROUP BY src_ip",
    # float group column: must bail to the reference bucket loop
    "SELECT COUNT(*) FROM clogs GROUP BY loss_rate",
    # COUNT(*)-only grouped: per-bucket count fast path
    "SELECT COUNT(*) FROM clogs WHERE protocol = 6 "
    "GROUP BY hop_count",
)


class TestVectorizedScanIdentity:
    @pytest.mark.parametrize("sql", QUERY_POOL)
    @given(st.integers(0, 500), st.integers(0, 80))
    @settings(max_examples=25, deadline=None)
    def test_evaluate_identical(self, sql, offset, count):
        views = [_entry(offset + i) for i in range(count)]
        query = parse_query(sql)
        costs_fast: list[int] = []
        costs_ref: list[int] = []
        with hotpath.force(True):
            fast = evaluate(query, views, cost_hook=costs_fast.append)
            fast_partial = evaluate_partial(query, views)
        with hotpath.disabled():
            reference = evaluate(query, views,
                                 cost_hook=costs_ref.append)
            reference_partial = evaluate_partial(query, views)
        assert fast == reference
        assert sum(costs_fast) == sum(costs_ref)
        assert fast_partial == reference_partial

    def test_type_mismatch_error_preserved(self):
        views = [_entry(0)]
        query = parse_query(
            'SELECT COUNT(*) FROM clogs WHERE packets < "abc"')
        for gate in (True, False):
            with hotpath.force(gate):
                with pytest.raises(QueryError, match="cannot compare"):
                    evaluate(query, views)

    def test_float_sum_stays_exact(self):
        views = [_entry(i) for i in range(64)]
        query = parse_query("SELECT SUM(loss_rate) FROM clogs")
        with hotpath.force(True):
            fast = evaluate(query, views)
        with hotpath.disabled():
            reference = evaluate(query, views)
        assert fast.values == reference.values
        expected = float(sum(Fraction(v["loss_rate"]) for v in views))
        assert fast.values[0] == expected


# -- end-to-end: proven round + queries are byte-identical -------------------

def _committed_workload(num_records: int, seed: int = 7):
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=seed))
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    per_router: dict[str, list[NetFlowRecord]] = {
        router_id: [] for router_id in topology.router_ids()}
    count = 0
    while count < num_records:
        flow = generator.generate_flow(now_ms=1_000)
        for record in generator.observe(flow):
            if count >= num_records:
                break
            per_router[record.router_id].append(record)
            count += 1
    for router_id, records in per_router.items():
        if not records:
            continue
        store.append_records(router_id, 0, records)
        bulletin.publish(Commitment(
            router_id=router_id,
            window_index=0,
            digest=window_digest([r.to_bytes() for r in records]),
            record_count=len(records),
            published_at_ms=5_000,
        ))
    return store, bulletin


WORKLOAD_QUERIES = (
    "SELECT COUNT(*) FROM clogs",
    "SELECT SUM(hop_count) FROM clogs "
    'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"',
    "SELECT SUM(octets) FROM clogs GROUP BY protocol",
)


def _round_fingerprint(num_records: int, partitions: int | None):
    store, bulletin = _committed_workload(num_records)
    service = ProverService(store, bulletin,
                            query_partitions=partitions)
    result = service.aggregate_window(0)
    receipt = result.receipt
    fingerprint = [
        receipt.journal.data,
        receipt.claim.digest(),
        result.info.stats.total_cycles,
        dict(result.info.stats.cycle_breakdown),
        result.info.stats.sha_compressions,
        result.info.stats.segment_count,
    ]
    for sql in WORKLOAD_QUERIES:
        response = service.answer_query(sql)
        fingerprint.append(response.receipt.journal.data)
        fingerprint.append(response.receipt.claim.digest())
    return fingerprint


class TestWorkloadByteIdentity:
    @pytest.mark.parametrize("partitions", [None, 2])
    def test_round_and_query_journals(self, partitions):
        with hotpath.force(True):
            clear_memos()
            fast = _round_fingerprint(90, partitions)
        with hotpath.disabled():
            reference = _round_fingerprint(90, partitions)
        assert fast == reference


# -- the gate itself ----------------------------------------------------------

class TestGate:
    def test_force_restores_previous_state(self):
        before = hotpath.enabled()
        with hotpath.force(not before):
            assert hotpath.enabled() is (not before)
            with hotpath.disabled():
                assert not hotpath.enabled()
            assert hotpath.enabled() is (not before)
        assert hotpath.enabled() is before


@guest_program("hotpath-prop-pipeline")
def _pipeline_guest(env):
    count = env.read()
    values = env.read_batch(count)
    hasher = env.merkle_hasher()
    leaves = [hasher.leaf(encode(v)) for v in values]
    if leaves:
        root = MerkleTree(leaves, hasher=hasher).root
        env.commit(root)
    env.commit_many(values)


class TestProvenGuestIdentity:
    @given(st.lists(st.integers(-(2**40), 2**40), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_batch_guest_receipts_identical(self, values):
        def prove():
            builder = ExecutorEnvBuilder().write(len(values))
            for value in values:
                builder.write(value)
            return Prover(ProverOpts.groth16()).prove(
                _pipeline_guest, builder.build())

        with hotpath.force(True):
            clear_memos()
            fast = prove()
        with hotpath.disabled():
            reference = prove()
        assert fast.receipt.journal.data \
            == reference.receipt.journal.data
        assert fast.receipt.claim.digest() \
            == reference.receipt.claim.digest()
        assert fast.stats.total_cycles == reference.stats.total_cycles
        assert fast.stats.sha_compressions \
            == reference.stats.sha_compressions
