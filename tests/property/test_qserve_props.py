"""Property tests for the multi-tenant query-serving layer.

Two invariants:

* **Batch transparency** — for any mix of queries from the grammar,
  any batch cut, and any partition count, the batched multi-journal
  pipeline commits, per query, a journal *byte-identical* to the
  serial full scan's.  This is the soundness core of batching: a
  client receipt must not reveal (or depend on) how many strangers
  shared its scan, and the result cache can serve batched and serial
  answers interchangeably.
* **Cache round-trip** — a persistent-tier hit decodes to the exact
  receipt bytes that were stored, under arbitrary store/reload
  orderings; any corruption of the stored blob degrades to a miss
  (re-prove), never to a wrong or undecodable answer.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.prover_service import ProverService
from repro.core.query_proof import QueryProver
from repro.engine import ProvingEngine
from repro.qserve import BatchQueryProver, QueryResultCache, \
    result_cache_key
from repro.serialization import encode_query_response
from repro.storage import MemoryLogStore
from repro.zkvm import ProverOpts

from ..conftest import make_committed_records

# The same merge-shape coverage as the partitioned-query properties:
# plain counts, int and float folds, AVG fractions, filters, and
# grouped variants over low- and high-cardinality keys.
QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    "SELECT SUM(octets), MIN(packets), MAX(packets) FROM clogs",
    "SELECT AVG(rtt_avg_us), SUM(loss_rate) FROM clogs",
    "SELECT COUNT(*), AVG(jitter_avg_us) FROM clogs "
    "WHERE packets > 50 OR lost_packets > 0",
    "SELECT SUM(octets), AVG(rtt_avg_us) FROM clogs "
    "GROUP BY src_net16",
    "SELECT COUNT(*), SUM(throughput_bps) FROM clogs "
    "GROUP BY src_port",
]


@pytest.fixture(scope="module")
def proven():
    store, bulletin, _ = make_committed_records(60, seed=23)
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    engine = ProvingEngine(prover_opts=ProverOpts.groth16(),
                           backend="thread", max_workers=2)
    serial = {}
    for sql in QUERIES:
        response, _ = QueryProver().prove_query(
            sql, service.state, service.chain.latest.receipt)
        serial[sql] = response
    yield service, engine, serial
    engine.close()


class TestBatchTransparency:
    @given(mix=st.lists(st.sampled_from(QUERIES), unique=True,
                        min_size=1, max_size=len(QUERIES)),
           partitions=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture,
                  HealthCheck.too_slow])
    def test_batched_journals_byte_identical_to_serial(
            self, proven, mix, partitions):
        service, engine, serial = proven
        prover = BatchQueryProver(engine)
        results = prover.prove_batch(mix, service.state,
                                     service.chain.latest.receipt,
                                     partitions)
        assert len(results) == len(mix)
        for sql, result in zip(mix, results):
            assert not isinstance(result, Exception), result
            assert result.sql == sql
            assert result.receipt.journal.data == \
                serial[sql].receipt.journal.data
            # Fully resolved: the composed receipt stands alone.
            assert not result.receipt.claim.assumptions

    @given(cut=st.integers(min_value=1, max_value=len(QUERIES) - 1),
           partitions=st.integers(min_value=2, max_value=5))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture,
                  HealthCheck.too_slow])
    def test_batch_cuts_are_invisible(self, proven, cut, partitions):
        """Splitting one workload into two consecutive batches yields
        the same per-query journals as any other cut — batch
        membership never leaks into a receipt."""
        service, engine, serial = proven
        prover = BatchQueryProver(engine)
        receipt = service.chain.latest.receipt
        results = []
        for chunk in (QUERIES[:cut], QUERIES[cut:]):
            results.extend(prover.prove_batch(
                chunk, service.state, receipt, partitions))
        for sql, result in zip(QUERIES, results):
            assert result.receipt.journal.data == \
                serial[sql].receipt.journal.data


class TestCacheRoundTrip:
    @pytest.fixture(scope="class")
    def responses(self, proven):
        _, _, serial = proven
        return list(serial.values())

    @given(order=st.permutations(range(len(QUERIES))))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture])
    def test_persistent_hits_are_byte_identical(self, responses,
                                                order):
        store = MemoryLogStore()
        warm = QueryResultCache(store=store, memory_entries=2)
        for index in order:
            warm.put(responses[index])
        # A cold cache over the same store: every lookup is a
        # persistent hit with the original receipt bytes, regardless
        # of insertion order or memory-tier evictions.
        cold = QueryResultCache(store=store, memory_entries=2)
        for response in responses:
            hit = cold.get(response.sql, response.round, response.root)
            assert hit is not None
            assert hit.receipt.journal.data == \
                response.receipt.journal.data
            assert encode_query_response(hit) == \
                encode_query_response(response)

    @given(victim=st.integers(min_value=0, max_value=len(QUERIES) - 1),
           position=st.integers(min_value=0, max_value=5000),
           flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture])
    def test_any_corruption_degrades_to_miss(self, responses, victim,
                                             position, flip):
        """Flip one byte anywhere in a stored blob — the digest
        envelope, the payload, anywhere — and the lookup must come
        back a miss: re-prove, never a silently altered answer."""
        store = MemoryLogStore()
        response = responses[victim]
        warm = QueryResultCache(store=store)
        warm.put(response)
        key = result_cache_key(response.sql, response.round,
                               response.root)
        name = f"query-results/{key.hex()}"
        blob = bytearray(store.get_checkpoint(name))
        blob[position % len(blob)] ^= flip
        store.put_checkpoint(name, bytes(blob))
        cache = QueryResultCache(store=store)
        assert cache.get(response.sql, response.round,
                         response.root) is None
        # Corruption must not have torn down the persistent tier —
        # and an intact entry written afterwards is served again.
        assert cache.stats()["persistent"] is True
        cache.put(response)
        fresh = QueryResultCache(store=store)
        hit = fresh.get(response.sql, response.round, response.root)
        assert hit is not None and encode_query_response(hit) == \
            encode_query_response(response)
