"""Property tests: NetFlow record and v9 codec invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow.export import NetFlowExporter
from repro.netflow.collector import NetFlowCollector
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.netflow.template import STANDARD_TEMPLATE
from repro.serialization import decode


def addrs():
    return st.integers(0, 2**32 - 1).map(
        lambda v: ".".join(str((v >> s) & 0xFF)
                           for s in (24, 16, 8, 0)))


def flow_keys():
    return st.builds(
        FlowKey,
        src_addr=addrs(), dst_addr=addrs(),
        src_port=st.integers(0, 65535),
        dst_port=st.integers(0, 65535),
        protocol=st.integers(0, 255))


def records():
    def build(key, packets, octets, start, duration, flags, hops,
              lost, rtt, jitter):
        return NetFlowRecord(
            router_id="r1", key=key,
            packets=packets, octets=octets,
            first_switched_ms=start,
            last_switched_ms=start + duration,
            tcp_flags=flags, hop_count=hops, lost_packets=lost,
            rtt_us=rtt, jitter_us=jitter)
    return st.builds(
        build,
        key=flow_keys(),
        packets=st.integers(0, 2**32 - 1),
        octets=st.integers(0, 2**32 - 1),
        start=st.integers(0, 2**31),
        duration=st.integers(0, 2**20),
        flags=st.integers(0, 255),
        hops=st.integers(0, 2**16 - 1),
        lost=st.integers(0, 2**32 - 1),
        rtt=st.integers(0, 2**32 - 1),
        jitter=st.integers(0, 2**32 - 1))


class TestFlowKeyProps:
    @given(flow_keys())
    def test_pack_unpack_identity(self, key):
        assert FlowKey.unpack(key.pack()) == key

    @given(flow_keys())
    def test_double_reverse_identity(self, key):
        assert key.reversed().reversed() == key

    @given(flow_keys(), flow_keys())
    def test_pack_injective(self, a, b):
        if a.pack() == b.pack():
            assert a == b


class TestRecordProps:
    @given(records())
    @settings(max_examples=150)
    def test_canonical_bytes_roundtrip(self, record):
        assert NetFlowRecord.from_wire(
            decode(record.to_bytes())) == record

    @given(records(), records())
    def test_digest_injective(self, a, b):
        if a.digest() == b.digest():
            assert a.to_bytes() == b.to_bytes()

    @given(records())
    def test_loss_rate_bounded(self, record):
        assert 0.0 <= record.loss_rate <= 1.0


class TestV9CodecProps:
    @given(records())
    @settings(max_examples=150)
    def test_template_codec_roundtrip(self, record):
        data = STANDARD_TEMPLATE.encode_record(record)
        decoded = STANDARD_TEMPLATE.decode_record(data,
                                                  router_id="r1")
        # All fields that fit their wire widths must survive exactly.
        assert decoded.key == record.key
        assert decoded.packets == record.packets % 2**32
        assert decoded.octets == record.octets % 2**32
        assert decoded.tcp_flags == record.tcp_flags
        assert decoded.hop_count == record.hop_count % 2**16
        assert decoded.lost_packets == record.lost_packets % 2**32
        assert decoded.rtt_us == record.rtt_us % 2**32

    @given(st.lists(records(), min_size=1, max_size=40),
           st.integers(1, 10))
    @settings(max_examples=60)
    def test_export_collect_preserves_stream(self, batch, per_packet):
        exporter = NetFlowExporter(source_id=5,
                                   max_records_per_packet=per_packet)
        collector = NetFlowCollector()
        received = []
        for packet in exporter.export(batch):
            received.extend(collector.ingest(packet, router_id="r1"))
        assert len(received) == len(batch)
        for sent, got in zip(batch, received):
            assert got.key == sent.key
            assert got.packets == sent.packets % 2**32
