"""Property test: the proven query result always equals host-side
evaluation over the same CLog state (guest/host lockstep).

This is the system's core functional-correctness invariant: whatever
SQL a client sends (within the grammar), the value inside the verified
journal is exactly what a trusted evaluation of the committed dataset
would return.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.prover_service import ProverService
from repro.query import evaluate, parse_query

from ..conftest import make_committed_records

NUMERIC = ["packets", "octets", "lost_packets", "hop_count",
           "record_count"]
COMPARATORS = ["=", "!=", "<", "<=", ">", ">="]
FUNCS = ["SUM", "AVG", "MIN", "MAX"]


@pytest.fixture(scope="module")
def service():
    store, bulletin, _n = make_committed_records(90, seed=29)
    svc = ProverService(store, bulletin)
    svc.aggregate_window(0)
    return svc


def sql_queries():
    aggregate = st.one_of(
        st.just("COUNT(*)"),
        st.tuples(st.sampled_from(FUNCS),
                  st.sampled_from(NUMERIC)).map(
            lambda t: f"{t[0]}({t[1]})"),
    )
    comparison = st.tuples(
        st.sampled_from(NUMERIC),
        st.sampled_from(COMPARATORS),
        st.integers(0, 5_000),
    ).map(lambda t: f"{t[0]} {t[1]} {t[2]}")
    prefix = st.sampled_from([
        'src_ip IN "10.0.0.0/8"',
        'src_ip IN "10.1.0.0/16"',
        'src_ip NOT IN "10.2.0.0/16"',
        'dst_ip IN "172.16.0.0/12"',
    ])
    clause = st.one_of(comparison, prefix)
    where = st.one_of(
        st.none(),
        clause,
        st.tuples(clause, st.sampled_from(["AND", "OR"]), clause).map(
            lambda t: f"{t[0]} {t[1]} {t[2]}"),
    )
    group = st.sampled_from([None, "protocol", "src_net16"])

    def build(aggs, where_clause, group_field):
        sql = f"SELECT {', '.join(aggs)} FROM clogs"
        if where_clause:
            sql += f" WHERE {where_clause}"
        if group_field:
            sql += f" GROUP BY {group_field}"
        return sql

    return st.builds(build,
                     st.lists(aggregate, min_size=1, max_size=3,
                              unique=True),
                     where, group)


class TestGuestHostLockstep:
    @given(sql_queries())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_proven_result_matches_host_evaluation(self, service, sql):
        response = service.answer_query(sql)
        expected = evaluate(parse_query(sql),
                            service.state.entry_views())
        assert response.values == expected.values
        assert response.matched == expected.matched
        assert response.scanned == expected.scanned
        assert response.group_by == expected.group_by
        assert response.groups == expected.groups
