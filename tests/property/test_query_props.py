"""Property tests: query language invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import evaluate, parse_query
from repro.query.ast import query_from_wire


def entry_views():
    return st.fixed_dictionaries({
        "src_ip": st.sampled_from(["10.1.0.1", "10.2.0.2", "172.16.0.3"]),
        "dst_ip": st.sampled_from(["172.16.1.1", "172.16.2.2"]),
        "src_port": st.integers(0, 65535),
        "dst_port": st.integers(0, 65535),
        "protocol": st.sampled_from([6, 17]),
        "packets": st.integers(0, 10_000),
        "octets": st.integers(0, 10_000_000),
        "lost_packets": st.integers(0, 100),
        "hop_count": st.integers(1, 8),
        "record_count": st.integers(1, 10),
        "router_count": st.integers(1, 4),
        "first_ms": st.integers(0, 10_000),
        "last_ms": st.integers(10_000, 20_000),
        "rtt_avg_us": st.floats(0, 1e6),
        "jitter_avg_us": st.floats(0, 1e5),
        "loss_rate": st.floats(0, 1),
        "throughput_bps": st.floats(0, 1e10),
    })


tables = st.lists(entry_views(), max_size=30)

numeric_fields = st.sampled_from(
    ["packets", "octets", "lost_packets", "hop_count"])


class TestAggregateInvariants:
    @given(tables, numeric_fields)
    @settings(max_examples=150)
    def test_sum_count_avg_consistent(self, table, field):
        result = evaluate(parse_query(
            f"SELECT SUM({field}), COUNT(*), AVG({field}) FROM clogs"),
            table)
        total, count, average = result.values
        assert count == len(table)
        if count == 0:
            assert total is None and average is None
        else:
            assert total == sum(e[field] for e in table)
            assert average == total / count

    @given(tables, numeric_fields)
    def test_min_max_bound_values(self, table, field):
        result = evaluate(parse_query(
            f"SELECT MIN({field}), MAX({field}) FROM clogs"), table)
        low, high = result.values
        if table:
            assert low == min(e[field] for e in table)
            assert high == max(e[field] for e in table)
            assert low <= high

    @given(tables, st.integers(0, 10_000))
    @settings(max_examples=150)
    def test_predicate_partitions_table(self, table, threshold):
        matched = evaluate(parse_query(
            f"SELECT COUNT(*) FROM clogs WHERE packets >= {threshold}"),
            table).value()
        unmatched = evaluate(parse_query(
            f"SELECT COUNT(*) FROM clogs WHERE packets < {threshold}"),
            table).value()
        assert matched + unmatched == len(table)

    @given(tables)
    def test_not_inverts(self, table):
        base = "packets > 100"
        yes = evaluate(parse_query(
            f"SELECT COUNT(*) FROM clogs WHERE {base}"), table).value()
        no = evaluate(parse_query(
            f"SELECT COUNT(*) FROM clogs WHERE NOT {base}"),
            table).value()
        assert yes + no == len(table)

    @given(tables)
    def test_prefix_in_and_not_in_partition(self, table):
        prefix = "10.0.0.0/8"
        inside = evaluate(parse_query(
            f'SELECT COUNT(*) FROM clogs WHERE src_ip IN "{prefix}"'),
            table).value()
        outside = evaluate(parse_query(
            f'SELECT COUNT(*) FROM clogs '
            f'WHERE src_ip NOT IN "{prefix}"'), table).value()
        assert inside + outside == len(table)


class TestParserInvariants:
    @given(numeric_fields, st.integers(-1000, 1000),
           st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    def test_parse_wire_roundtrip(self, field, literal, op):
        sql = (f"SELECT SUM({field}) FROM clogs "
               f"WHERE {field} {op} {literal}")
        query = parse_query(sql)
        assert query_from_wire(query.to_wire()) == query

    @given(tables, numeric_fields)
    def test_evaluation_deterministic(self, table, field):
        query = parse_query(f"SELECT AVG({field}) FROM clogs")
        assert evaluate(query, table) == evaluate(query, table)
