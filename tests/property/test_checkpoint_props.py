"""Property test: checkpoint → crash → restore is lossless.

For any random sequence of proven rounds, a service restored from its
checkpoint is bit-identical to the one that wrote it: same state root,
same chain roots, and the same receipt bytes for any query — the
recovery path can never silently change what the prover attests to.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.storage import MemoryLogStore

# A run: per window, a list of (flow_id, router, lost) records.
round_plans = st.lists(
    st.lists(
        st.tuples(st.integers(0, 5),
                  st.integers(1, 3),
                  st.integers(0, 9)),
        min_size=1, max_size=3),
    min_size=1, max_size=3)

queries = st.sampled_from([
    "SELECT COUNT(*) FROM clogs",
    "SELECT SUM(lost_packets) FROM clogs",
    "SELECT MAX(hop_count), SUM(octets) FROM clogs",
])


def record_for(flow_id: int, router: int, lost: int,
               window: int) -> NetFlowRecord:
    return NetFlowRecord(
        router_id=f"r{router}",
        key=FlowKey("10.0.0.1", "172.16.0.1", 1000 + flow_id, 2000, 6),
        packets=100, octets=10_000,
        first_switched_ms=window * 5_000,
        last_switched_ms=window * 5_000 + 1_000,
        lost_packets=lost, hop_count=router, rtt_us=1_000)


def build_and_prove(plan):
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    service = ProverService(store, bulletin)
    for window, specs in enumerate(plan):
        by_router: dict[str, list[NetFlowRecord]] = {}
        for flow_id, router, lost in specs:
            record = record_for(flow_id, router, lost, window)
            by_router.setdefault(record.router_id, []).append(record)
        for router_id, records in by_router.items():
            store.append_records(router_id, window, records)
            bulletin.publish(Commitment(
                router_id, window,
                window_digest([r.to_bytes() for r in records]),
                len(records), window * 5_000))
        service.aggregate_window(window)
    return store, bulletin, service


class TestCheckpointRoundTrip:
    @given(round_plans, queries)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_restore_is_bit_identical(self, plan, sql):
        store, bulletin, service = build_and_prove(plan)
        service.checkpoint()
        # "Crash": the service object is gone; only the store (with
        # its checkpoint blob) and the public bulletin survive.
        restored = ProverService(store, bulletin)
        assert restored.restore() is True

        assert restored.state.root == service.state.root
        assert len(restored.chain) == len(service.chain)
        for before, after in zip(service.chain, restored.chain):
            assert after.new_root == before.new_root
            assert after.receipt.to_bytes() == \
                before.receipt.to_bytes()
        assert restored.aggregated_windows == \
            service.aggregated_windows

        original = service.answer_query(sql)
        recovered = restored.answer_query(sql)
        assert recovered.values == original.values
        assert recovered.root == original.root
        assert recovered.receipt.to_bytes() == \
            original.receipt.to_bytes()

    @given(round_plans)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_restored_service_can_keep_proving(self, plan):
        store, bulletin, service = build_and_prove(plan)
        service.checkpoint()
        restored = ProverService(store, bulletin)
        restored.restore()
        # New window arrives after recovery; the chain must extend.
        window = len(plan)
        records = [record_for(0, 1, 1, window)]
        store.append_records("r1", window, records)
        bulletin.publish(Commitment(
            "r1", window,
            window_digest([r.to_bytes() for r in records]),
            1, window * 5_000))
        result = restored.aggregate_window(window)
        assert result.round == len(plan)
        assert restored.chain.latest.new_root == restored.state.root
