"""Property test: random round sequences always produce verifiable
chains whose content matches ground truth (chain soak test)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.clog import CLogEntry
from repro.core.policy import DEFAULT_POLICY
from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.storage import MemoryLogStore

# A round plan: list of windows, each a list of (flow_id, router, lost).
round_plans = st.lists(
    st.lists(
        st.tuples(st.integers(0, 5),       # flow id (repeats -> merges)
                  st.integers(1, 3),       # router
                  st.integers(0, 9)),      # lost packets
        min_size=1, max_size=4),
    min_size=1, max_size=4)


def record_for(flow_id: int, router: int, lost: int,
               window: int) -> NetFlowRecord:
    return NetFlowRecord(
        router_id=f"r{router}",
        key=FlowKey("10.0.0.1", "172.16.0.1", 1000 + flow_id, 2000, 6),
        packets=100, octets=10_000,
        first_switched_ms=window * 5_000,
        last_switched_ms=window * 5_000 + 1_000,
        lost_packets=lost, hop_count=router, rtt_us=1_000)


class TestChainSoak:
    @given(round_plans, st.sampled_from(["update", "rebuild"]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_round_sequence_verifies_and_matches_truth(
            self, plan, strategy):
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        truth: dict[FlowKey, CLogEntry] = {}
        for window, specs in enumerate(plan):
            records = [record_for(flow_id, router, lost, window)
                       for flow_id, router, lost in specs]
            by_router: dict[str, list[NetFlowRecord]] = {}
            for record in records:
                by_router.setdefault(record.router_id,
                                     []).append(record)
            for router_id, router_records in by_router.items():
                store.append_records(router_id, window, router_records)
                bulletin.publish(Commitment(
                    router_id, window,
                    window_digest([r.to_bytes()
                                   for r in router_records]),
                    len(router_records), window * 5_000))
            # Ground truth follows the same deterministic order the
            # aggregator uses: sorted routers, append order.
            for router_id in sorted(by_router):
                for record in by_router[router_id]:
                    existing = truth.get(record.key)
                    truth[record.key] = (
                        existing.merge(record, DEFAULT_POLICY)
                        if existing else CLogEntry.fresh(record))

        service = ProverService(store, bulletin, strategy=strategy)
        service.aggregate_all_committed()

        # 1. The chain verifies from public material.
        verifier = VerifierClient(bulletin)
        verified = verifier.verify_chain(service.chain.receipts())
        assert len(verified) == len(plan)

        # 2. The proven dataset equals ground truth.
        state_entries = {e.key: e for e in
                         service.state.entries_in_slot_order()}
        assert set(state_entries) == set(truth)
        for key, entry in truth.items():
            assert state_entries[key].to_payload() == \
                entry.to_payload(), key

        # 3. A proven COUNT agrees.
        response = service.answer_query("SELECT COUNT(*) FROM clogs")
        proven = verifier.verify_query(response, verified[-1])
        assert proven.values[0] == len(truth)
