"""Property tests: cache replay can never change what a round proves.

The engine's central claim — a warm (cache-replayed) round is
*byte-identical* to the cold round that populated the cache — holds
for arbitrary record sets, router layouts, and partition counts.
Receipts, roots, and journals all round-trip exactly; only the
``cached`` flag and the job counters differ.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.commitments import window_digest
from repro.core.aggregation import RouterWindowInput
from repro.core.guest_programs import merge_guest
from repro.engine import ProvingEngine, ReceiptCache
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.zkvm import verify_receipt


def record(router_id, sport, packets, byte_count):
    return NetFlowRecord(
        router_id=router_id,
        key=FlowKey(src_addr=f"10.0.{sport % 250}.1",
                    dst_addr="10.0.0.254",
                    src_port=sport, dst_port=443, protocol=6),
        packets=packets, octets=byte_count,
        first_switched_ms=1_000, last_switched_ms=2_000)


router_windows = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),      # records per router
        st.integers(min_value=1, max_value=9_999),  # packet seed
    ),
    min_size=1, max_size=3,
)


def build_inputs(layout):
    inputs = []
    for index, (n_records, seed) in enumerate(layout):
        router_id = f"r{index + 1}"
        records = [
            record(router_id, sport=1_000 + j,
                   packets=(seed + j) % 1_000 + 1,
                   byte_count=((seed * 7 + j) % 50_000) + 40)
            for j in range(n_records)
        ]
        blobs = tuple(r.to_bytes() for r in records)
        inputs.append(RouterWindowInput(
            router_id=router_id, window_index=0,
            commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


class TestCacheReplayIdentity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(router_windows,
           st.integers(min_value=1, max_value=4))
    def test_warm_round_byte_identical_to_cold(self, layout,
                                               num_partitions):
        inputs = build_inputs(layout)
        with ProvingEngine(backend="serial") as engine:
            cold = engine.prove_round(inputs, num_partitions)
            warm = engine.prove_round(inputs, num_partitions)
        # Identical artifacts...
        assert warm.receipt.to_wire() == cold.receipt.to_wire()
        assert warm.new_root == cold.new_root
        assert warm.size == cold.size
        assert [i.receipt.to_wire() for i in warm.partition_infos] == \
            [i.receipt.to_wire() for i in cold.partition_infos]
        # ...from a pure replay: every warm proof came from the cache.
        assert not any(i.cached for i in cold.partition_infos)
        assert all(i.cached for i in warm.partition_infos)
        assert warm.merge_info.cached and not cold.merge_info.cached
        # The replayed receipt still verifies against the guest image.
        verify_receipt(warm.receipt, merge_guest.image_id)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(router_windows)
    def test_cache_is_portable_across_engines(self, layout):
        """A cache handed to a *different* engine instance (fresh pool,
        same content addressing) replays the same bytes."""
        inputs = build_inputs(layout)
        cache = ReceiptCache()
        with ProvingEngine(backend="serial", cache=cache) as engine:
            cold = engine.prove_round(inputs)
        with ProvingEngine(backend="thread", max_workers=2,
                           cache=cache) as engine:
            warm = engine.prove_round(inputs)
        assert warm.receipt.to_wire() == cold.receipt.to_wire()
        assert all(i.cached for i in warm.partition_infos)
