"""Property tests: Merkle tree invariants under arbitrary operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import sha256
from repro.merkle import MerkleMap, MerkleTree


def leaves(min_size=0, max_size=40):
    return st.lists(
        st.integers(min_value=0, max_value=2**32).map(
            lambda i: sha256(i.to_bytes(8, "big"))),
        min_size=min_size, max_size=max_size)


class TestTreeProperties:
    @given(leaves(min_size=1))
    @settings(max_examples=120)
    def test_all_proofs_verify(self, items):
        tree = MerkleTree(items)
        for index in range(len(items)):
            tree.prove(index).verify(tree.root)

    @given(leaves(min_size=1))
    def test_incremental_append_matches_batch(self, items):
        incremental = MerkleTree()
        for item in items:
            incremental.append(item)
        assert incremental.root == MerkleTree(items).root

    @given(leaves(min_size=2),
           st.data())
    @settings(max_examples=120)
    def test_update_sequence_matches_rebuild(self, items, data):
        tree = MerkleTree(items)
        current = list(items)
        for _ in range(data.draw(st.integers(0, 5))):
            index = data.draw(st.integers(0, len(items) - 1))
            new_leaf = sha256(data.draw(st.binary(max_size=16)))
            tree.update(index, new_leaf)
            current[index] = new_leaf
        assert tree.root == MerkleTree(current).root

    @given(leaves(min_size=1), st.integers(0, 1000))
    def test_proof_rejects_wrong_leaf(self, items, nonce):
        tree = MerkleTree(items)
        proof = tree.prove(0)
        impostor = sha256(b"impostor" + nonce.to_bytes(8, "big"))
        if impostor != proof.leaf:
            from repro.merkle.proof import InclusionProof
            forged = InclusionProof(
                leaf_index=0, leaf=impostor,
                siblings=proof.siblings, tree_size=proof.tree_size)
            assert not forged.is_valid(tree.root)

    @given(leaves(min_size=1, max_size=20))
    def test_vacant_then_append_consistency(self, items):
        tree = MerkleTree(items)
        size = tree.size
        if size >= (1 << tree.depth):
            return  # would need growth; covered by witness tests
        vacant = tree.prove_vacant(size)
        assert vacant.computed_root() == tree.root


class TestConsistencyProperties:
    @given(st.integers(1, 60), st.integers(0, 40))
    @settings(max_examples=100)
    def test_any_growth_has_valid_proof(self, old_size, extra):
        new_size = old_size + extra
        all_leaves = [sha256(i.to_bytes(4, "big"))
                      for i in range(new_size)]
        old_tree = MerkleTree(all_leaves[:old_size])
        new_tree = MerkleTree(all_leaves)
        from repro.merkle import verify_consistency
        proof = new_tree.prove_consistency(old_size)
        verify_consistency(old_tree.root, new_tree.root, proof)

    @given(st.integers(2, 40), st.integers(1, 20), st.data())
    @settings(max_examples=80)
    def test_any_prefix_rewrite_detected(self, old_size, extra, data):
        from repro.errors import MerkleError
        from repro.merkle import verify_consistency
        new_size = old_size + extra
        leaves = [sha256(i.to_bytes(4, "big")) for i in range(new_size)]
        old_tree = MerkleTree(leaves[:old_size])
        position = data.draw(st.integers(0, old_size - 1))
        leaves[position] = sha256(b"rewritten!")
        forked = MerkleTree(leaves)
        proof = forked.prove_consistency(old_size)
        import pytest as _pytest
        with _pytest.raises(MerkleError):
            verify_consistency(old_tree.root, forked.root, proof)


class TestMapProperties:
    @given(st.dictionaries(st.binary(min_size=1, max_size=8),
                           st.binary(max_size=16),
                           min_size=1, max_size=25))
    @settings(max_examples=100)
    def test_every_key_provable(self, entries):
        m = MerkleMap()
        for key, value in entries.items():
            m.set(key, value)
        for key in entries:
            m.prove(key).verify(m.root)

    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=4),
                              st.binary(max_size=8)),
                    min_size=1, max_size=30))
    def test_last_write_wins(self, operations):
        m = MerkleMap()
        expected = {}
        for key, value in operations:
            m.set(key, value)
            expected[key] = value
        assert dict(m.items()) == expected
        assert len(m) == len(expected)

    @given(st.dictionaries(st.binary(min_size=1, max_size=4),
                           st.binary(max_size=8),
                           min_size=2, max_size=10))
    def test_update_changes_root_iff_payload_changes(self, entries):
        m = MerkleMap()
        for key, value in entries.items():
            m.set(key, value)
        key = next(iter(entries))
        before = m.root
        m.set(key, entries[key])  # identical payload
        assert m.root == before
        m.set(key, entries[key] + b"!")
        assert m.root != before
