"""Property tests for streaming/incremental proof composition.

The load-bearing invariant of ``repro.stream``: for **any** RLog stream
and **any** way of slicing it into delta batches, the streamed round's
final fold commits a journal *byte-identical* to the monolithic
aggregation guest's — so receipts are interchangeable, caches agree,
chains built by either strategy link, and clients cannot tell how a
round was proven.  A second invariant pins the fold frontier's
binary-counter algebra, which the crash-recovery checkpoint relies on.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.commitments import window_digest
from repro.core.aggregation import Aggregator, RouterWindowInput
from repro.core.clog import CLogState
from repro.core.guest_programs import fold_guest
from repro.core.policy import DEFAULT_POLICY
from repro.engine import ProvingEngine
from repro.errors import CheckpointError
from repro.stream import FoldFrontier, FrontierNode, StreamingAggregator
from repro.stream.pipeline import order_windows
from repro.zkvm import ProverOpts, Verifier

from ..conftest import make_record

ROUTERS = ("r1", "r2", "r3")
# A small address pool so random streams exercise both CLog inserts
# (fresh flows) and updates (repeat flows merging into existing slots).
ADDRS = tuple(f"10.0.{i}.{j}" for i in range(2) for j in range(3))


def _window_inputs(rng: random.Random, window_index: int,
                   routers: int) -> list[RouterWindowInput]:
    inputs = []
    for router in ROUTERS[:routers]:
        blobs = tuple(
            make_record(
                router_id=router,
                src=rng.choice(ADDRS),
                sport=rng.randrange(1000, 1004),
                packets=rng.randrange(1, 500),
                octets=rng.randrange(100, 200_000),
                first_switched_ms=window_index * 1000 + i,
                last_switched_ms=window_index * 1000 + i + 50,
            ).to_bytes()
            for i in range(rng.randrange(0, 4)))
        if blobs:
            inputs.append(RouterWindowInput(
                router_id=router, window_index=window_index,
                commitment=window_digest(list(blobs)), blobs=blobs))
    return inputs


@st.composite
def round_streams(draw):
    """(windows, batch cut points) for up to two chained rounds."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    rounds = []
    for round_index in range(draw(st.integers(1, 2))):
        windows = []
        for w in range(draw(st.integers(1, 3))):
            windows.extend(_window_inputs(
                rng, round_index * 10 + w, routers=draw(st.integers(1, 3))))
        ordered = order_windows(windows)
        # Any partition of the canonically ordered stream into
        # consecutive runs is a valid delta batching — including cuts
        # *inside* one window index (routers split across deltas).
        cuts = sorted(draw(st.sets(
            st.integers(1, max(len(ordered) - 1, 1)), max_size=4)))
        batches, lo = [], 0
        for cut in cuts:
            if lo < cut <= len(ordered):
                batches.append(ordered[lo:cut])
                lo = cut
        batches.append(ordered[lo:])
        rounds.append((windows, [b for b in batches if b] or [[]]))
    return rounds


@pytest.fixture(scope="module")
def engine():
    engine = ProvingEngine(prover_opts=ProverOpts.groth16(),
                           backend="serial")
    yield engine
    engine.close()


class TestStreamedByteIdentity:
    @given(rounds=round_streams())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[
                  HealthCheck.function_scoped_fixture,
                  HealthCheck.too_slow])
    def test_final_journal_matches_monolithic(self, engine, rounds):
        opts = ProverOpts.groth16()
        mono_state, mono_prev = CLogState(), None
        mono_journals = []
        aggregator = Aggregator(DEFAULT_POLICY, opts)
        for windows, _ in rounds:
            result = aggregator.aggregate(mono_state, windows,
                                          mono_prev)
            mono_state, mono_prev = result.new_state, result.receipt
            mono_journals.append(result.receipt.journal.data)

        streamer = StreamingAggregator(DEFAULT_POLICY, opts,
                                       engine=engine)
        state, prev = CLogState(), None
        for (_, batches), expected in zip(rounds, mono_journals):
            for batch in batches:
                streamer.ingest(state, batch, prev)
            result = streamer.close()
            assert result.receipt.journal.data == expected
            assert not result.receipt.claim.assumptions
            Verifier().verify(result.receipt, fold_guest.image_id)
            state, prev = result.new_state, result.receipt
        assert state.root == mono_state.root
        assert state.round == mono_state.round


def _fake_node(seq_lo: int, seq_hi: int, height: int) -> FrontierNode:
    return FrontierNode(receipt=None, header={}, height=height,
                        seq_lo=seq_lo, seq_hi=seq_hi)


class TestFrontierAlgebra:
    @given(n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_binary_counter_and_close_cover_the_round(self, n):
        finals = []

        def fold(left, right, final):
            if final:
                finals.append((left, right))
            if right is None:
                return _fake_node(left.seq_lo, left.seq_hi,
                                  left.height + 1)
            # Carries only ever merge adjacent runs.
            assert right.seq_lo == left.seq_hi + 1
            return _fake_node(left.seq_lo, right.seq_hi,
                              max(left.height, right.height) + 1)

        frontier = FoldFrontier()
        for seq in range(n):
            assert frontier.next_seq == seq
            frontier.push(_fake_node(seq, seq, 0), fold)
            # The frontier holds one node per set bit of seq+1, with
            # strictly decreasing heights (the counter invariant the
            # checkpoint verifier re-checks on restore).
            assert len(frontier) == bin(seq + 1).count("1")
            heights = [node.height for node in frontier.nodes]
            assert heights == sorted(heights, reverse=True)
            assert len(set(heights)) == len(heights)
        top = frontier.close(fold)
        assert (top.seq_lo, top.seq_hi) == (0, n - 1)
        assert len(finals) == 1
        assert len(frontier) == 0

    @given(n=st.integers(min_value=0, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_out_of_order_push_is_rejected(self, n):
        frontier = FoldFrontier()

        def fold(left, right, final):  # pragma: no cover - no carries
            raise AssertionError("no fold expected")

        if n != 0:
            with pytest.raises(CheckpointError):
                frontier.push(_fake_node(n, n, 0), fold)
        else:
            with pytest.raises(CheckpointError):
                frontier.close(fold)
