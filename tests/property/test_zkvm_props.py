"""Property tests: zkVM receipt soundness-surface invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VerificationError
from repro.zkvm import (
    ExecutorEnvBuilder,
    Prover,
    ProverOpts,
    Receipt,
    ReceiptKind,
    guest_program,
    verify_receipt,
)
from repro.zkvm.receipt import Journal


@guest_program("prop-worker")
def prop_guest(env):
    values = env.read()
    env.tick(len(values) * 3)
    env.commit(sum(values))
    env.commit(len(values))


def prove(values, kind=ReceiptKind.GROTH16):
    return Prover(ProverOpts(kind=kind)).prove(
        prop_guest, ExecutorEnvBuilder().write(values).build())


int_lists = st.lists(st.integers(-(2**40), 2**40), max_size=50)


class TestReceiptProperties:
    @given(int_lists)
    @settings(max_examples=60, deadline=None)
    def test_every_honest_receipt_verifies(self, values):
        info = prove(values)
        verified = verify_receipt(info.receipt, prop_guest.image_id)
        total, count = verified.journal.decode()
        assert total == sum(values)
        assert count == len(values)

    @given(int_lists)
    @settings(max_examples=40, deadline=None)
    def test_seal_constant_size_any_input(self, values):
        info = prove(values)
        assert info.receipt.seal_size == 256

    @given(int_lists, st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_journal_tampering_always_caught(self, values, nonce):
        from repro.serialization import encode
        info = prove(values)
        forged_data = encode(sum(values) + 1) + encode(nonce)
        forged = Receipt(inner=info.receipt.inner,
                         journal=Journal(forged_data),
                         claim=info.receipt.claim)
        try:
            verify_receipt(forged, prop_guest.image_id)
            assert False, "forged journal accepted"
        except VerificationError:
            pass

    @given(int_lists)
    @settings(max_examples=40, deadline=None)
    def test_serialization_preserves_verifiability(self, values):
        receipt = prove(values).receipt
        for restored in (Receipt.from_bytes(receipt.to_bytes()),
                         Receipt.from_json_bytes(
                             receipt.to_json_bytes())):
            verify_receipt(restored, prop_guest.image_id)

    @given(int_lists, int_lists)
    @settings(max_examples=40, deadline=None)
    def test_claim_digest_injective_on_inputs(self, a, b):
        receipt_a = prove(a).receipt
        receipt_b = prove(b).receipt
        if a != b:
            assert receipt_a.claim_digest != receipt_b.claim_digest
        else:
            assert receipt_a.claim_digest == receipt_b.claim_digest

    @given(int_lists)
    @settings(max_examples=30, deadline=None)
    def test_cycles_deterministic(self, values):
        assert prove(values).stats.total_cycles == \
            prove(values).stats.total_cycles
