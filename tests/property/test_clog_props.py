"""Property tests: CLog aggregation semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clog import CLogEntry, CLogState
from repro.core.policy import DEFAULT_POLICY, SUM_ALL_POLICY
from repro.core.witness import build_witness
from repro.netflow.records import FlowKey, NetFlowRecord


def records(min_size=1, max_size=25, distinct_flows=4):
    def build(draw_tuple):
        flow_id, router, packets, lost, hops, rtt = draw_tuple
        return NetFlowRecord(
            router_id=f"r{router}",
            key=FlowKey("10.0.0.1", "172.16.0.1", 1000 + flow_id,
                        2000, 6),
            packets=packets,
            octets=packets * 100,
            first_switched_ms=0,
            last_switched_ms=1_000,
            hop_count=hops,
            lost_packets=lost,
            rtt_us=rtt,
        )

    one = st.tuples(
        st.integers(0, distinct_flows - 1),  # flow id
        st.integers(1, 4),                   # router
        st.integers(1, 1_000),               # packets
        st.integers(0, 50),                  # lost
        st.integers(1, 6),                   # hops
        st.integers(0, 100_000),             # rtt
    ).map(build)
    return st.lists(one, min_size=min_size, max_size=max_size)


class TestMergeSemantics:
    @given(records())
    @settings(max_examples=100)
    def test_sum_policy_totals_match(self, batch):
        """Under SUM_ALL, every counter equals the plain per-flow sum."""
        entries = {}
        for record in batch:
            existing = entries.get(record.key)
            entries[record.key] = (
                existing.merge(record, SUM_ALL_POLICY) if existing
                else CLogEntry.fresh(record))
        for key, entry in entries.items():
            matching = [r for r in batch if r.key == key]
            assert entry.packets == sum(r.packets for r in matching)
            assert entry.lost_packets == \
                sum(r.lost_packets for r in matching)
            assert entry.record_count == len(matching)

    @given(records())
    @settings(max_examples=100)
    def test_default_policy_invariants(self, batch):
        entries = {}
        for record in batch:
            existing = entries.get(record.key)
            entries[record.key] = (
                existing.merge(record, DEFAULT_POLICY) if existing
                else CLogEntry.fresh(record))
        for key, entry in entries.items():
            matching = [r for r in batch if r.key == key]
            assert entry.packets == max(r.packets for r in matching)
            assert entry.lost_packets == \
                sum(r.lost_packets for r in matching)
            assert entry.hop_count == max(r.hop_count for r in matching)
            assert entry.rtt_sum_us == sum(r.rtt_us for r in matching)
            assert set(entry.routers) == \
                {r.router_id for r in matching}

    @given(records(max_size=12))
    @settings(max_examples=60)
    def test_combine_partition_independent(self, batch):
        """Combining partial aggregates gives the same result no matter
        how the stream is partitioned (associativity ablation)."""
        def fold(stream):
            entries = {}
            for record in stream:
                existing = entries.get(record.key)
                entries[record.key] = (
                    existing.merge(record, DEFAULT_POLICY) if existing
                    else CLogEntry.fresh(record))
            return entries

        whole = fold(batch)
        for split in range(len(batch) + 1):
            left, right = fold(batch[:split]), fold(batch[split:])
            combined = dict(left)
            for key, entry in right.items():
                combined[key] = (combined[key].combine(entry,
                                                       DEFAULT_POLICY)
                                 if key in combined else entry)
            assert {k: v.to_payload() for k, v in combined.items()} == \
                {k: v.to_payload() for k, v in whole.items()}


class TestWitnessProperties:
    @given(records(max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_witness_root_matches_direct_state(self, batch):
        witness = build_witness(CLogState(), batch, DEFAULT_POLICY)
        direct = CLogState()
        entries = {}
        for record in batch:
            existing = entries.get(record.key)
            entries[record.key] = (
                existing.merge(record, DEFAULT_POLICY) if existing
                else CLogEntry.fresh(record))
        # Insert in first-seen order (same as witness).
        seen = []
        for record in batch:
            if record.key not in seen:
                seen.append(record.key)
        for key in seen:
            direct.set_entry(entries[key])
        assert witness.new_root == direct.root

    @given(records(max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_witness_round_trips_through_guest(self, batch):
        """Any witness the host builds is accepted by the guest and
        reproduces the same root (host/guest lockstep)."""
        from repro.commitments import window_digest
        from repro.core.aggregation import (Aggregator,
                                            RouterWindowInput)
        by_router = {}
        for record in batch:
            by_router.setdefault(record.router_id, []).append(record)
        inputs = [
            RouterWindowInput(
                router_id=router_id, window_index=0,
                commitment=window_digest(
                    [r.to_bytes() for r in router_records]),
                blobs=tuple(r.to_bytes() for r in router_records))
            for router_id, router_records in sorted(by_router.items())
        ]
        result = Aggregator().aggregate(CLogState(), inputs, None)
        assert result.journal_header["new_root"] == result.new_root
