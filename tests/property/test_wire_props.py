"""Property tests: wire codecs for receipts and query responses.

Receipts here are structurally valid but cryptographically arbitrary —
the codec must round-trip any well-formed receipt, not only ones the
prover produced.  Conversely, arbitrary bytes fed to the decoders must
fail with SerializationError, never an uncontrolled exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query_proof import QueryResponse
from repro.errors import ReproError
from repro.hashing import Digest
from repro.serialization import (
    decode_commitment,
    decode_query_response,
    decode_receipt,
    encode_query_response,
    encode_receipt,
)
from repro.zkvm.receipt import (
    GROTH16_SEAL_SIZE,
    Assumption,
    ExitCode,
    Groth16Receipt,
    Journal,
    Receipt,
    ReceiptClaim,
    SuccinctReceipt,
)


def digests():
    return st.binary(min_size=32, max_size=32).map(Digest)


def assumptions():
    return st.builds(Assumption, claim_digest=digests(),
                     image_id=digests())


def claims():
    return st.builds(
        ReceiptClaim,
        image_id=digests(),
        input_digest=digests(),
        journal_digest=digests(),
        exit_code=st.sampled_from(list(ExitCode)),
        total_cycles=st.integers(min_value=0, max_value=2 ** 48),
        segment_count=st.integers(min_value=0, max_value=10_000),
        assumptions=st.lists(assumptions(), max_size=3).map(tuple),
    )


def inner_receipts():
    groth16 = st.binary(
        min_size=GROTH16_SEAL_SIZE,
        max_size=GROTH16_SEAL_SIZE).map(Groth16Receipt)
    succinct = st.binary(max_size=256).map(SuccinctReceipt)
    return st.one_of(groth16, succinct)


def receipts():
    return st.builds(
        Receipt,
        inner=inner_receipts(),
        journal=st.binary(max_size=512).map(Journal),
        claim=claims(),
    )


def scalar_values():
    return st.one_of(st.none(),
                     st.integers(min_value=-2 ** 63, max_value=2 ** 63),
                     st.floats(allow_nan=False))


def query_responses():
    row = st.lists(scalar_values(), min_size=1, max_size=4)
    return st.builds(
        _make_response,
        sql=st.text(max_size=60),
        labels=st.lists(st.text(min_size=1, max_size=12),
                        min_size=1, max_size=4),
        values=row,
        matched=st.integers(min_value=0, max_value=10 ** 9),
        scanned=st.integers(min_value=0, max_value=10 ** 9),
        round=st.integers(min_value=0, max_value=10 ** 6),
        root=digests(),
        receipt=receipts(),
        group_by=st.one_of(st.none(), st.text(min_size=1,
                                              max_size=12)),
        groups=st.lists(
            st.tuples(st.one_of(st.text(max_size=8),
                                st.integers(min_value=-10 ** 9,
                                            max_value=10 ** 9)),
                      row.map(tuple)),
            max_size=4).map(tuple),
    )


def _make_response(sql, labels, values, matched, scanned, round, root,
                   receipt, group_by, groups):
    return QueryResponse(
        sql=sql, labels=tuple(labels), values=tuple(values),
        matched=matched, scanned=scanned, round=round, root=root,
        receipt=receipt, group_by=group_by, groups=groups)


class TestReceiptRoundTrip:
    @given(receipts())
    @settings(max_examples=150)
    def test_decode_inverts_encode(self, receipt):
        restored = decode_receipt(encode_receipt(receipt))
        assert restored.inner == receipt.inner
        assert restored.journal == receipt.journal
        assert restored.claim == receipt.claim
        assert restored.to_bytes() == receipt.to_bytes()

    @given(receipts())
    @settings(max_examples=50)
    def test_canonical_bytes_are_deterministic(self, receipt):
        assert encode_receipt(receipt) == encode_receipt(receipt)
        assert encode_receipt(receipt) == receipt.to_bytes()


class TestQueryResponseRoundTrip:
    @given(query_responses())
    @settings(max_examples=100)
    def test_decode_inverts_encode(self, response):
        restored = decode_query_response(
            encode_query_response(response))
        assert restored.sql == response.sql
        assert restored.labels == response.labels
        assert restored.values == response.values
        assert restored.matched == response.matched
        assert restored.scanned == response.scanned
        assert restored.round == response.round
        assert restored.root == response.root
        assert restored.group_by == response.group_by
        assert restored.groups == response.groups
        assert restored.receipt.to_bytes() \
            == response.receipt.to_bytes()


class TestDecoderRobustness:
    @given(st.binary(max_size=2048))
    @settings(max_examples=300)
    def test_arbitrary_bytes_never_crash_decoders(self, data):
        """Hostile bytes must raise inside the ReproError family —
        a KeyError/TypeError/struct.error escaping the decoder would
        crash a server connection handler."""
        for decoder in (decode_receipt, decode_query_response,
                        decode_commitment):
            try:
                decoder(data)
            except ReproError:
                pass
