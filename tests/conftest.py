"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.system import SystemConfig, TelemetrySystem
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.generator import TrafficConfig
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.storage import MemoryLogStore


def make_record(router_id: str = "r1",
                src: str = "10.1.0.1", dst: str = "172.16.0.9",
                sport: int = 443, dport: int = 50000, proto: int = 6,
                **overrides) -> NetFlowRecord:
    """A valid record with sensible defaults, overridable per test."""
    defaults = dict(
        router_id=router_id,
        key=FlowKey(src_addr=src, dst_addr=dst, src_port=sport,
                    dst_port=dport, protocol=proto),
        packets=100,
        octets=120_000,
        first_switched_ms=1_000,
        last_switched_ms=3_000,
        hop_count=2,
        lost_packets=1,
        rtt_us=8_000,
        jitter_us=400,
    )
    defaults.update(overrides)
    return NetFlowRecord(**defaults)


def make_committed_records(n: int, seed: int = 7,
                           window_index: int = 0
                           ) -> tuple[MemoryLogStore, BulletinBoard, int]:
    """Exactly ``n`` generated records, stored and committed in one
    window across the paper's 4-router topology.

    Returns (store, bulletin, actual record count).
    """
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=seed))
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    per_router: dict[str, list[NetFlowRecord]] = {
        r: [] for r in topology.router_ids()}
    count = 0
    while count < n:
        flow = generator.generate_flow(now_ms=1_000)
        for record in generator.observe(flow):
            if count >= n:
                break
            per_router[record.router_id].append(record)
            count += 1
    for router_id, records in per_router.items():
        if not records:
            continue
        store.append_records(router_id, window_index, records)
        bulletin.publish(Commitment(
            router_id=router_id,
            window_index=window_index,
            digest=window_digest([r.to_bytes() for r in records]),
            record_count=len(records),
            published_at_ms=5_000,
        ))
    return store, bulletin, count


@pytest.fixture
def record() -> NetFlowRecord:
    return make_record()


@pytest.fixture
def small_system() -> TelemetrySystem:
    """A populated 4-router system with ~3 committed windows."""
    system = TelemetrySystem(SystemConfig(seed=11, flows_per_tick=5))
    system.generate(120)
    return system


@pytest.fixture
def aggregated_system(small_system: TelemetrySystem) -> TelemetrySystem:
    """small_system with every committed window aggregated."""
    small_system.aggregate_all()
    return small_system
