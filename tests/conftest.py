"""Shared fixtures for the test suite."""

from __future__ import annotations

import json
import os
import random
import zlib

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.system import SystemConfig, TelemetrySystem
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.generator import TrafficConfig
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.storage import MemoryLogStore

# -- determinism hardening ---------------------------------------------------
#
# "ci" is what the workflow runs: derandomized (failures reproduce on
# re-run) with a deeper example budget.  "dev" keeps the local loop
# fast.  Select with HYPOTHESIS_PROFILE=ci|dev (default dev).

hypothesis_settings.register_profile(
    "ci", derandomize=True, max_examples=200, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
hypothesis_settings.register_profile(
    "dev", max_examples=25, deadline=None)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _seeded_random(request):
    """Seed the global ``random`` state per test, keyed on the test id.

    Any test that (directly or through library code) draws from the
    shared module-level generator gets the same stream on every run,
    regardless of execution order or ``-k`` selection.
    """
    state = random.getstate()
    random.seed(zlib.crc32(request.node.nodeid.encode()))
    yield
    random.setstate(state)


def pytest_sessionfinish(session):
    """Write the observability snapshot when REPRO_OBS_SNAPSHOT names a
    file — CI uploads it as an artifact after the smoke run."""
    target = os.environ.get("REPRO_OBS_SNAPSHOT")
    if not target:
        return
    from repro.obs import runtime as obs_runtime
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(obs_runtime.snapshot(), fh, indent=2,
                  sort_keys=True)


def make_record(router_id: str = "r1",
                src: str = "10.1.0.1", dst: str = "172.16.0.9",
                sport: int = 443, dport: int = 50000, proto: int = 6,
                **overrides) -> NetFlowRecord:
    """A valid record with sensible defaults, overridable per test."""
    defaults = dict(
        router_id=router_id,
        key=FlowKey(src_addr=src, dst_addr=dst, src_port=sport,
                    dst_port=dport, protocol=proto),
        packets=100,
        octets=120_000,
        first_switched_ms=1_000,
        last_switched_ms=3_000,
        hop_count=2,
        lost_packets=1,
        rtt_us=8_000,
        jitter_us=400,
    )
    defaults.update(overrides)
    return NetFlowRecord(**defaults)


def make_committed_records(n: int, seed: int = 7,
                           window_index: int = 0
                           ) -> tuple[MemoryLogStore, BulletinBoard, int]:
    """Exactly ``n`` generated records, stored and committed in one
    window across the paper's 4-router topology.

    Returns (store, bulletin, actual record count).
    """
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=seed))
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    per_router: dict[str, list[NetFlowRecord]] = {
        r: [] for r in topology.router_ids()}
    count = 0
    while count < n:
        flow = generator.generate_flow(now_ms=1_000)
        for record in generator.observe(flow):
            if count >= n:
                break
            per_router[record.router_id].append(record)
            count += 1
    for router_id, records in per_router.items():
        if not records:
            continue
        store.append_records(router_id, window_index, records)
        bulletin.publish(Commitment(
            router_id=router_id,
            window_index=window_index,
            digest=window_digest([r.to_bytes() for r in records]),
            record_count=len(records),
            published_at_ms=5_000,
        ))
    return store, bulletin, count


@pytest.fixture
def record() -> NetFlowRecord:
    return make_record()


@pytest.fixture
def small_system() -> TelemetrySystem:
    """A populated 4-router system with ~3 committed windows."""
    system = TelemetrySystem(SystemConfig(seed=11, flows_per_tick=5))
    system.generate(120)
    return system


@pytest.fixture
def aggregated_system(small_system: TelemetrySystem) -> TelemetrySystem:
    """small_system with every committed window aggregated."""
    small_system.aggregate_all()
    return small_system
