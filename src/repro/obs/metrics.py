"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns a flat namespace of metric *families*;
each family has a declared tuple of label names and holds one *series*
per distinct label-value combination (like Prometheus client models,
but dependency-free).  Everything is guarded by per-family locks so the
asyncio server thread, ``ThreadPoolExecutor`` prover workers, and test
threads can all write concurrently without losing updates.

The registry snapshots to plain JSON-compatible data
(:meth:`MetricsRegistry.snapshot`) and rebuilds from such a snapshot
(:meth:`MetricsRegistry.from_snapshot`) — the round-trip is exact,
which the property suite pins down.

When observability is disabled the module's ``NULL_REGISTRY`` stands in
for a real registry: every method resolves to a shared no-op object, so
instrumented hot paths cost a couple of attribute lookups and nothing
else.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError

#: Default histogram bucket upper bounds for latencies in seconds.
#: The last implicit bucket is +inf (the overflow slot).
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(label_names: tuple[str, ...],
               labels: Mapping[str, Any]) -> tuple[str, ...]:
    """Validate and canonicalise one series' label values."""
    if set(labels) != set(label_names):
        raise ConfigurationError(
            f"labels {sorted(labels)} do not match declared label "
            f"names {sorted(label_names)}")
    return tuple(str(labels[name]) for name in label_names)


class _Family:
    """Shared plumbing for one named metric family."""

    kind = "abstract"

    def __init__(self, name: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], Any] = {}

    def _ordered_series(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._series.items())

    def labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Family):
    """Monotonically increasing count (events, bytes, cycles...)."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int | float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0)


class Gauge(_Family):
    """A value that can go up and down (sizes, in-flight work...)."""

    kind = "gauge"

    def set(self, value: int | float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: int | float = 1, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: int | float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> int | float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0)


class Histogram(_Family):
    """Fixed-bucket distribution; the final bucket is +inf overflow.

    Per series we keep ``len(buckets) + 1`` non-cumulative counts plus
    the running sum and total count, which is enough to reconstruct the
    cumulative view (:meth:`cumulative_counts`).
    """

    kind = "histogram"

    def __init__(self, name: str, label_names: tuple[str, ...],
                 buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS
                 ) -> None:
        super().__init__(name, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} bucket bounds must be strictly "
                "increasing")
        self.buckets = bounds

    def observe(self, value: int | float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        slot = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * (len(self.buckets) + 1),
                          "sum": 0.0, "count": 0}
                self._series[key] = series
            series["counts"][slot] += 1
            series["sum"] += value
            series["count"] += 1

    def series_data(self, **labels: Any) -> dict[str, Any]:
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"counts": [0] * (len(self.buckets) + 1),
                        "sum": 0.0, "count": 0}
            return {"counts": list(series["counts"]),
                    "sum": series["sum"], "count": series["count"]}

    def cumulative_counts(self, **labels: Any) -> list[int]:
        counts = self.series_data(**labels)["counts"]
        out, running = [], 0
        for count in counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """A namespace of metric families with a JSON snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- registration --------------------------------------------------------

    def _get_or_create(self, cls: type, name: str,
                       label_names: Iterable[str],
                       **kwargs: Any) -> Any:
        label_names = tuple(label_names)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, label_names, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise ConfigurationError(
                f"metric {name} is a {family.kind}, not a "
                f"{cls.kind}")  # type: ignore[attr-defined]
        if family.label_names != label_names:
            raise ConfigurationError(
                f"metric {name} declared with labels "
                f"{family.label_names}, requested {label_names}")
        return family

    def counter(self, name: str,
                label_names: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, label_names)

    def gauge(self, name: str,
              label_names: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, label_names)

    def histogram(self, name: str, label_names: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, label_names,
                                   buckets=buckets)

    # -- introspection -------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def label_names(self, name: str) -> tuple[str, ...]:
        family = self.get(name)
        if family is None:
            raise ConfigurationError(f"no metric named {name!r}")
        return family.label_names

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible dump of every family and series."""
        out: dict[str, Any] = {"counters": [], "gauges": [],
                               "histograms": []}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            entry: dict[str, Any] = {
                "name": name,
                "label_names": list(family.label_names),
                "series": [],
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                for key, series in family._ordered_series():
                    entry["series"].append({
                        "labels": family.labels_of(key),
                        "counts": list(series["counts"]),
                        "sum": series["sum"],
                        "count": series["count"],
                    })
                out["histograms"].append(entry)
            else:
                for key, value in family._ordered_series():
                    entry["series"].append({
                        "labels": family.labels_of(key),
                        "value": value,
                    })
                slot = ("counters" if isinstance(family, Counter)
                        else "gauges")
                out[slot].append(entry)
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent,
                          sort_keys=True)

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        The propagation path for process-pool prover workers: the
        worker captures its own registry, ships the snapshot home with
        the job result, and the host merges it so cross-process rounds
        report the same executor/prover series as in-process rounds.
        Counters and histogram series *add*; gauges take the incoming
        value (last write wins — worker gauges are rare and advisory).
        Histogram merging requires matching bucket bounds.
        """
        for entry in snapshot.get("counters", ()):
            family = self.counter(entry["name"], entry["label_names"])
            for series in entry["series"]:
                family.inc(series["value"], **series["labels"])
        for entry in snapshot.get("gauges", ()):
            family = self.gauge(entry["name"], entry["label_names"])
            for series in entry["series"]:
                family.set(series["value"], **series["labels"])
        for entry in snapshot.get("histograms", ()):
            family = self.histogram(entry["name"], entry["label_names"],
                                    buckets=entry["buckets"])
            if family.buckets != tuple(float(b)
                                       for b in entry["buckets"]):
                raise ConfigurationError(
                    f"histogram {entry['name']} bucket bounds differ "
                    "between snapshots; cannot merge")
            for series in entry["series"]:
                key = _label_key(family.label_names, series["labels"])
                with family._lock:
                    existing = family._series.get(key)
                    if existing is None:
                        existing = {
                            "counts": [0] * (len(family.buckets) + 1),
                            "sum": 0.0, "count": 0}
                        family._series[key] = existing
                    for slot, count in enumerate(series["counts"]):
                        existing["counts"][slot] += count
                    existing["sum"] += series["sum"]
                    existing["count"] += series["count"]

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]
                      ) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``snapshot``."""
        registry = cls()
        for entry in snapshot.get("counters", ()):
            family = registry.counter(entry["name"],
                                      entry["label_names"])
            for series in entry["series"]:
                family.inc(series["value"], **series["labels"])
        for entry in snapshot.get("gauges", ()):
            family = registry.gauge(entry["name"], entry["label_names"])
            for series in entry["series"]:
                family.set(series["value"], **series["labels"])
        for entry in snapshot.get("histograms", ()):
            family = registry.histogram(entry["name"],
                                        entry["label_names"],
                                        buckets=entry["buckets"])
            for series in entry["series"]:
                key = _label_key(family.label_names, series["labels"])
                with family._lock:
                    family._series[key] = {
                        "counts": list(series["counts"]),
                        "sum": series["sum"],
                        "count": series["count"],
                    }
        return registry


# -- no-op variants ----------------------------------------------------------


class _NullMetric:
    """Absorbs every metric call; shared singleton, zero state."""

    __slots__ = ()

    def inc(self, amount: int | float = 1, **labels: Any) -> None:
        pass

    def dec(self, amount: int | float = 1, **labels: Any) -> None:
        pass

    def set(self, value: int | float, **labels: Any) -> None:
        pass

    def observe(self, value: int | float, **labels: Any) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The zero-cost default: every family is the shared no-op metric."""

    __slots__ = ()

    def counter(self, name: str,
                label_names: Iterable[str] = ()) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str,
              label_names: Iterable[str] = ()) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, label_names: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS
                  ) -> _NullMetric:
        return _NULL_METRIC

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {"counters": [], "gauges": [], "histograms": []}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        pass


NULL_REGISTRY = NullRegistry()
