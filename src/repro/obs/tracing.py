"""Tracing: nested spans over wall time and zkVM cycle deltas.

A :class:`Tracer` hands out :class:`Span` context managers; spans nest
per-thread (the prover pool's partition spans each root their own tree
in their worker thread), and finished spans are handed to an exporter
in *finish order*, which is deterministic for single-threaded flows —
the contract test relies on that.

The :class:`InMemorySpanExporter` is the test/benchmark exporter: a
bounded list of finished spans with name/attribute accessors.  A span
that finishes while an exception is propagating is still exported, with
an ``error`` attribute naming the exception type — instrumentation must
never swallow or alter control flow.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class SpanData:
    """One finished span, as handed to the exporter."""

    name: str
    duration_s: float
    attributes: dict[str, Any]
    parent: str | None
    depth: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "parent": self.parent,
            "depth": self.depth,
        }


class Span:
    """A live span; use as a context manager."""

    __slots__ = ("name", "attributes", "_tracer", "_start", "parent",
                 "depth", "_cycles")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any], parent: str | None,
                 depth: int) -> None:
        self.name = name
        self.attributes = attributes
        self.parent = parent
        self.depth = depth
        self._tracer = tracer
        self._start = 0.0
        self._cycles = 0

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_cycles(self, cycles: int) -> None:
        """Accumulate a zkVM cycle delta attributed to this span."""
        self._cycles += cycles
        self.attributes["cycles"] = self._cycles

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None,
                 tb: object) -> bool:
        duration = self._tracer._clock() - self._start
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, duration)
        return False


class InMemorySpanExporter:
    """Collects finished spans (bounded; oldest dropped first)."""

    def __init__(self, max_spans: int = 10_000) -> None:
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: list[SpanData] = []

    def export(self, span: SpanData) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.max_spans:
                del self._spans[0]
                self.dropped += 1

    @property
    def spans(self) -> list[SpanData]:
        with self._lock:
            return list(self._spans)

    def names(self) -> list[str]:
        return [span.name for span in self.spans]

    def by_name(self, name: str) -> list[SpanData]:
        return [span for span in self.spans if span.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def snapshot(self) -> list[dict[str, Any]]:
        return [span.to_wire() for span in self.spans]


class _SpanStack(threading.local):
    # threading.local re-runs __init__ in every thread that touches the
    # instance, so each thread gets its own nesting stack.
    def __init__(self) -> None:
        self.stack: list[Span] = []


class Tracer:
    """Produces nested spans and exports them on completion."""

    def __init__(self, exporter: InMemorySpanExporter | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.exporter = exporter or InMemorySpanExporter()
        self._clock = clock
        self._local = _SpanStack()

    def span(self, name: str, **attributes: Any) -> Span:
        stack = self._local.stack
        parent = stack[-1] if stack else None
        return Span(self, name, dict(attributes),
                    parent=parent.name if parent else None,
                    depth=len(stack))

    def current(self) -> Span | None:
        stack = self._local.stack
        return stack[-1] if stack else None

    # -- internal, driven by Span -------------------------------------------

    def _push(self, span: Span) -> None:
        self._local.stack.append(span)

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._local.stack
        if stack and stack[-1] is span:
            stack.pop()
        self.exporter.export(SpanData(
            name=span.name,
            duration_s=duration,
            attributes=dict(span.attributes),
            parent=span.parent,
            depth=span.depth,
        ))


class _NullSpan:
    """Shared reusable no-op span (stateless, reentrant)."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def add_cycles(self, cycles: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default tracer."""

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None


NULL_TRACER = NullTracer()
