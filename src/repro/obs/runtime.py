"""Process-wide observability context with a zero-cost default.

Instrumented code asks this module for the current registry and tracer
on every use::

    from ..obs import runtime as obs

    with obs.tracer().span(names.SPAN_PROVE, program=name) as span:
        ...
        obs.registry().counter(names.PROVER_PROOFS,
                               ("program", "kind")).inc(...)

By default both resolve to shared no-op singletons, so the hot paths
pay only a couple of attribute lookups when observability is off (the
e2e benchmark guards the <5 % overhead budget).  :func:`enable` swaps
in a real :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.tracing.Tracer`; :func:`capture` is the scoped
variant tests use.

Setting ``REPRO_OBS`` to a truthy value in the environment enables
observability at import time — that is how ``repro serve --metrics``
children and CI example runs turn it on without code changes.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass
from typing import Any, Iterator

from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .tracing import InMemorySpanExporter, NullTracer, NULL_TRACER, Tracer

_lock = threading.Lock()
_registry: MetricsRegistry | NullRegistry = NULL_REGISTRY
_tracer: Tracer | NullTracer = NULL_TRACER
_exporter: InMemorySpanExporter | None = None


@dataclass(frozen=True)
class ObsHandle:
    """What :func:`enable` / :func:`capture` give the caller."""

    registry: MetricsRegistry
    tracer: Tracer
    exporter: InMemorySpanExporter


def enable(registry: MetricsRegistry | None = None,
           exporter: InMemorySpanExporter | None = None,
           max_spans: int = 10_000) -> ObsHandle:
    """Install a live registry/tracer (replacing any previous one)."""
    global _registry, _tracer, _exporter
    with _lock:
        live_registry = registry or MetricsRegistry()
        live_exporter = exporter or InMemorySpanExporter(
            max_spans=max_spans)
        live_tracer = Tracer(live_exporter)
        _registry = live_registry
        _tracer = live_tracer
        _exporter = live_exporter
    return ObsHandle(registry=live_registry, tracer=live_tracer,
                     exporter=live_exporter)


def disable() -> None:
    """Restore the zero-cost no-op context."""
    global _registry, _tracer, _exporter
    with _lock:
        _registry = NULL_REGISTRY
        _tracer = NULL_TRACER
        _exporter = None


def is_enabled() -> bool:
    return _exporter is not None


def registry() -> MetricsRegistry | NullRegistry:
    return _registry


def tracer() -> Tracer | NullTracer:
    return _tracer


def exporter() -> InMemorySpanExporter | None:
    return _exporter


@contextlib.contextmanager
def capture(**kwargs: Any) -> Iterator[ObsHandle]:
    """Scoped enable/restore — the test-suite entry point."""
    global _registry, _tracer, _exporter
    with _lock:
        previous = (_registry, _tracer, _exporter)
    handle = enable(**kwargs)
    try:
        yield handle
    finally:
        with _lock:
            _registry, _tracer, _exporter = previous


def metrics_snapshot() -> dict[str, Any]:
    """The wire-servable metrics body (no spans)."""
    return {"enabled": is_enabled(), "metrics": _registry.snapshot()}


def snapshot() -> dict[str, Any]:
    """Full dump: metrics plus every exported span."""
    out = metrics_snapshot()
    out["spans"] = _exporter.snapshot() if _exporter is not None else []
    return out


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no",
                                                 "off")


if _env_truthy(os.environ.get("REPRO_OBS")):  # pragma: no cover - env gate
    enable()
