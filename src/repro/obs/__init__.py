"""repro.obs — dependency-free tracing, metrics, and profiling.

The observability layer the scaling roadmap measures against: a
labeled-series :class:`MetricsRegistry` (counters, gauges, fixed-bucket
histograms) with JSON snapshot/export, a :class:`Tracer` producing
nested spans over wall time and zkVM cycle deltas, and a process-wide
:mod:`~repro.obs.runtime` context that defaults to shared no-op
objects so instrumentation is zero-cost until enabled.

Every span and metric name is part of a tested public contract — see
:mod:`repro.obs.names` and ``docs/OBSERVABILITY.md``.

Quick use::

    from repro.obs import runtime as obs

    handle = obs.enable()
    ...run an aggregation round, serve queries...
    print(handle.registry.to_json(indent=2))
    print(handle.exporter.names())
"""

from . import names, runtime
from .metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .runtime import ObsHandle, capture, disable, enable, is_enabled
from .tracing import (
    InMemorySpanExporter,
    NullTracer,
    NULL_TRACER,
    Span,
    SpanData,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySpanExporter",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "ObsHandle",
    "Span",
    "SpanData",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "is_enabled",
    "names",
    "runtime",
]
