"""The instrumentation contract: every span and metric name we emit.

These names are **public API**.  ``tests/unit/test_obs_contract.py``
asserts the exact set (with hard-coded literals, deliberately not
imported from here), so renaming anything below is a breaking change
that fails CI.  ``docs/OBSERVABILITY.md`` is the human-readable
reference for the same table.
"""

from __future__ import annotations

# -- span names --------------------------------------------------------------

SPAN_EXECUTE = "zkvm.execute"
SPAN_PROVE = "zkvm.prove"
SPAN_VERIFY = "zkvm.verify"
SPAN_AGG_ROUND = "agg.round"
SPAN_AGG_WITNESS = "agg.witness"
SPAN_PARALLEL_ROUND = "agg.parallel.round"
SPAN_PARALLEL_PARTITION = "agg.parallel.partition"
SPAN_PARALLEL_MERGE = "agg.parallel.merge"
SPAN_QUERY_PROVE = "query.prove"
SPAN_QUERY_PARALLEL_ROUND = "query.parallel.round"
SPAN_QUERY_PARALLEL_PARTITION = "query.parallel.partition"
SPAN_QUERY_PARALLEL_MERGE = "query.parallel.merge"
SPAN_NET_SERVER_REQUEST = "net.server.request"
SPAN_NET_CLIENT_REQUEST = "net.client.request"
SPAN_ENGINE_JOB = "engine.job"
SPAN_STREAM_DELTA = "stream.delta"
SPAN_STREAM_FOLD = "stream.fold"
SPAN_QSERVE_ADMIT = "qserve.admit"
SPAN_QSERVE_BATCH = "qserve.batch"
SPAN_CLUSTER_DISPATCH = "cluster.dispatch"
SPAN_FEDERATION_JOIN = "federation.join"

SPAN_NAMES = frozenset({
    SPAN_EXECUTE,
    SPAN_PROVE,
    SPAN_VERIFY,
    SPAN_AGG_ROUND,
    SPAN_AGG_WITNESS,
    SPAN_PARALLEL_ROUND,
    SPAN_PARALLEL_PARTITION,
    SPAN_PARALLEL_MERGE,
    SPAN_QUERY_PROVE,
    SPAN_QUERY_PARALLEL_ROUND,
    SPAN_QUERY_PARALLEL_PARTITION,
    SPAN_QUERY_PARALLEL_MERGE,
    SPAN_NET_SERVER_REQUEST,
    SPAN_NET_CLIENT_REQUEST,
    SPAN_ENGINE_JOB,
    SPAN_STREAM_DELTA,
    SPAN_STREAM_FOLD,
    SPAN_QSERVE_ADMIT,
    SPAN_QSERVE_BATCH,
    SPAN_CLUSTER_DISPATCH,
    SPAN_FEDERATION_JOIN,
})

# -- metric names (name -> declared label names) -----------------------------

# zkVM executor / prover / verifier
EXECUTOR_SESSIONS = "repro_executor_sessions_total"
EXECUTOR_CYCLES = "repro_executor_cycles_total"
PROVER_PROOFS = "repro_prover_proofs_total"
PROVER_CYCLES = "repro_prover_cycles_total"
PROVER_SEGMENTS = "repro_prover_segments_total"
PROVER_SECONDS = "repro_prover_prove_seconds"
VERIFIER_RECEIPTS = "repro_verifier_receipts_total"
VERIFIER_SECONDS = "repro_verifier_verify_seconds"

# aggregation (sequential + parallel) and the prover service
AGG_ROUNDS = "repro_agg_rounds_total"
AGG_RECORDS = "repro_agg_records_total"
AGG_SECONDS = "repro_agg_round_seconds"
PARALLEL_PARTITIONS = "repro_parallel_partitions_total"
SERVICE_FLOWS = "repro_service_flows"
SERVICE_ROUNDS = "repro_service_rounds"
SERVICE_QUERY_CACHE = "repro_service_query_cache_total"
SERVICE_CHECKPOINTS = "repro_service_checkpoints_total"
SERVICE_RESTORES = "repro_service_restores_total"

# supervised aggregation daemon
DAEMON_STEPS = "repro_daemon_steps_total"
DAEMON_FAULTS = "repro_daemon_faults_total"
DAEMON_RETRIES = "repro_daemon_retries_total"
DAEMON_QUARANTINED = "repro_daemon_quarantined"
DAEMON_HEALTH = "repro_daemon_health"

# proving engine (pool + scheduler + receipt cache)
ENGINE_JOBS = "repro_engine_jobs_total"
ENGINE_JOB_SECONDS = "repro_engine_job_seconds"
ENGINE_QUEUE_DEPTH = "repro_engine_queue_depth"
ENGINE_WORKERS = "repro_engine_workers"
ENGINE_WORKERS_BUSY = "repro_engine_workers_busy"
ENGINE_CACHE = "repro_engine_cache_total"
ENGINE_ROUND_REAL_SECONDS = "repro_engine_round_real_seconds"
ENGINE_ROUND_MODELED_SECONDS = "repro_engine_round_modeled_seconds"

# streaming composition (delta proving + fold frontier)
STREAM_DELTAS = "repro_stream_deltas_total"
STREAM_FOLDS = "repro_stream_folds_total"
STREAM_ROUNDS = "repro_stream_rounds_total"
STREAM_FRONTIER = "repro_stream_frontier_nodes"

# multi-tenant query serving (admission + batching + result cache)
QSERVE_ADMITTED = "repro_qserve_admitted_total"
QSERVE_REJECTED = "repro_qserve_rejected_total"
QSERVE_BATCHED = "repro_qserve_batched_total"
QSERVE_CACHE = "repro_qserve_cache_total"
QSERVE_INFLIGHT = "repro_qserve_inflight"

# distributed proving fabric (remote pool backend + worker daemons)
CLUSTER_JOBS = "repro_cluster_jobs_total"
CLUSTER_STEALS = "repro_cluster_steals_total"
CLUSTER_DUPLICATES = "repro_cluster_duplicates_total"
CLUSTER_FALLBACK = "repro_cluster_fallback_total"
CLUSTER_NODES = "repro_cluster_nodes"
CLUSTER_DEGRADED = "repro_cluster_degraded"
CLUSTER_WORKER_JOBS = "repro_cluster_worker_jobs_total"

# federated multi-provider joins
FEDERATION_JOINS = "repro_federation_joins_total"
FEDERATION_PROVIDERS = "repro_federation_providers"
FEDERATION_JOIN_SECONDS = "repro_federation_join_seconds"
FEDERATION_WORKLOADS = "repro_federation_workloads_total"

# query proving
QUERY_PROOFS = "repro_query_proofs_total"
QUERY_SECONDS = "repro_query_prove_seconds"
QUERY_PARTITIONS = "repro_query_partitions_total"

# wire protocol, server side
NET_SERVER_REQUESTS = "repro_net_server_requests_total"
NET_SERVER_SECONDS = "repro_net_server_request_seconds"
NET_SERVER_BYTES = "repro_net_server_bytes_total"
NET_SERVER_ERRORS = "repro_net_server_errors_total"
NET_SERVER_CONNECTIONS = "repro_net_server_connections"

# wire protocol, client side
NET_CLIENT_REQUESTS = "repro_net_client_requests_total"
NET_CLIENT_ATTEMPTS = "repro_net_client_attempts_total"
NET_CLIENT_RETRIES = "repro_net_client_retries_total"
NET_CLIENT_SECONDS = "repro_net_client_request_seconds"
NET_CLIENT_BYTES = "repro_net_client_bytes_total"
NET_CLIENT_ERRORS = "repro_net_client_errors_total"

#: name -> label-name tuple for every metric the system can emit.
METRIC_LABELS: dict[str, tuple[str, ...]] = {
    EXECUTOR_SESSIONS: ("program", "exit_code"),
    EXECUTOR_CYCLES: ("program",),
    PROVER_PROOFS: ("program", "kind"),
    PROVER_CYCLES: ("program",),
    PROVER_SEGMENTS: ("program",),
    PROVER_SECONDS: ("program",),
    VERIFIER_RECEIPTS: ("kind", "outcome"),
    VERIFIER_SECONDS: (),
    AGG_ROUNDS: ("strategy",),
    AGG_RECORDS: ("strategy",),
    AGG_SECONDS: ("strategy",),
    PARALLEL_PARTITIONS: (),
    SERVICE_FLOWS: (),
    SERVICE_ROUNDS: (),
    SERVICE_QUERY_CACHE: ("result",),
    SERVICE_CHECKPOINTS: ("outcome",),
    SERVICE_RESTORES: ("outcome",),
    DAEMON_STEPS: ("outcome",),
    DAEMON_FAULTS: ("error",),
    DAEMON_RETRIES: (),
    DAEMON_QUARANTINED: (),
    DAEMON_HEALTH: (),
    ENGINE_JOBS: ("guest", "outcome"),
    ENGINE_JOB_SECONDS: ("guest",),
    ENGINE_QUEUE_DEPTH: (),
    ENGINE_WORKERS: (),
    ENGINE_WORKERS_BUSY: (),
    ENGINE_CACHE: ("tier", "result"),
    ENGINE_ROUND_REAL_SECONDS: (),
    ENGINE_ROUND_MODELED_SECONDS: (),
    STREAM_DELTAS: ("cached",),
    STREAM_FOLDS: ("cached", "kind"),
    STREAM_ROUNDS: ("strategy",),
    STREAM_FRONTIER: (),
    QSERVE_ADMITTED: ("tenant",),
    QSERVE_REJECTED: ("tenant", "reason"),
    QSERVE_BATCHED: ("outcome",),
    QSERVE_CACHE: ("tier", "result"),
    QSERVE_INFLIGHT: (),
    CLUSTER_JOBS: ("node", "outcome"),
    CLUSTER_STEALS: (),
    CLUSTER_DUPLICATES: (),
    CLUSTER_FALLBACK: (),
    CLUSTER_NODES: ("state",),
    CLUSTER_DEGRADED: (),
    CLUSTER_WORKER_JOBS: ("outcome",),
    FEDERATION_JOINS: ("outcome",),
    FEDERATION_PROVIDERS: (),
    FEDERATION_JOIN_SECONDS: (),
    FEDERATION_WORKLOADS: ("kind",),
    QUERY_PROOFS: (),
    QUERY_SECONDS: (),
    QUERY_PARTITIONS: (),
    NET_SERVER_REQUESTS: ("kind", "status"),
    NET_SERVER_SECONDS: ("kind",),
    NET_SERVER_BYTES: ("direction",),
    NET_SERVER_ERRORS: ("kind", "code"),
    NET_SERVER_CONNECTIONS: (),
    NET_CLIENT_REQUESTS: ("kind", "status"),
    NET_CLIENT_ATTEMPTS: ("kind",),
    NET_CLIENT_RETRIES: ("kind",),
    NET_CLIENT_SECONDS: ("kind",),
    NET_CLIENT_BYTES: ("direction",),
    NET_CLIENT_ERRORS: ("kind", "error"),
}
