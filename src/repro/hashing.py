"""Domain-separated hashing primitives.

Everything in the system that is hashed — raw-log batches, Merkle nodes,
zkVM trace rows, receipt claims — goes through a *tagged* SHA-256 so that
digests from different domains can never collide or be replayed across
contexts.  The scheme follows the BIP-340 style construction::

    tagged_hash(tag, msg) = SHA256(SHA256(tag) || SHA256(tag) || msg)

:class:`Digest` is a thin immutable wrapper over the 32 raw bytes with a
hex ``str()`` form, used pervasively instead of bare ``bytes`` so that type
confusion between digests and payloads is impossible.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Iterable

from . import hotpath

DIGEST_SIZE = 32

# Canonical domain tags used across the library.  Centralising them here
# makes accidental reuse visible in review.
TAG_LEAF = "repro/merkle/leaf"
TAG_NODE = "repro/merkle/node"
TAG_EMPTY = "repro/merkle/empty"
TAG_RLOG = "repro/commit/rlog"
TAG_CLOG = "repro/clog/entry"
TAG_COMMITMENT = "repro/commit/window"
TAG_JOURNAL = "repro/zkvm/journal"
TAG_IMAGE_ID = "repro/zkvm/image"
TAG_INPUT = "repro/zkvm/input"
TAG_CLAIM = "repro/zkvm/claim"
TAG_SEAL = "repro/zkvm/seal"
TAG_SEGMENT = "repro/zkvm/segment"
TAG_TRACE = "repro/zkvm/trace"
TAG_TRANSCRIPT = "repro/zkvm/transcript"
TAG_ASSUMPTION = "repro/zkvm/assumption"
TAG_QUERY = "repro/query/text"
TAG_CHAIN = "repro/core/chain"
TAG_ENGINE_OPTS = "repro/engine/opts"
TAG_ENGINE_KEY = "repro/engine/cache-key"
TAG_QSERVE_KEY = "repro/qserve/result-key"
TAG_QSERVE_BLOB = "repro/qserve/result-blob"


class Digest:
    """An immutable 32-byte SHA-256 digest."""

    __slots__ = ("_raw",)

    def __init__(self, raw: bytes) -> None:
        if not isinstance(raw, (bytes, bytearray)):
            raise TypeError(f"Digest expects bytes, got {type(raw).__name__}")
        if len(raw) != DIGEST_SIZE:
            raise ValueError(
                f"Digest must be {DIGEST_SIZE} bytes, got {len(raw)}"
            )
        object.__setattr__(self, "_raw", bytes(raw))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Digest is immutable")

    @classmethod
    def from_hex(cls, text: str) -> "Digest":
        return cls(bytes.fromhex(text))

    @classmethod
    def zero(cls) -> "Digest":
        return _ZERO_DIGEST

    @property
    def raw(self) -> bytes:
        return self._raw

    def hex(self) -> str:
        return self._raw.hex()

    def short(self) -> str:
        """First 8 hex chars — handy for logs and test messages."""
        return self._raw[:4].hex()

    def __bytes__(self) -> bytes:
        return self._raw

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Digest):
            return self._raw == other._raw
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return f"Digest({self.hex()})"

    def __str__(self) -> str:
        return self.hex()


_ZERO_DIGEST = Digest(b"\x00" * DIGEST_SIZE)


@lru_cache(maxsize=None)
def _tag_prefix(tag: str) -> bytes:
    tag_digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return tag_digest + tag_digest


# Midstate templates: the 64-byte tag prefix is absorbed exactly once per
# tag and every later tagged hash starts from a ``copy()`` of the
# template, skipping one SHA-256 compression per call.  This is the
# host-side analogue of the accelerator's midstate caching that
# ``cycles.sha256_cycles(midstate=True)`` already models — the digests
# are bit-identical either way.
_TAG_TEMPLATES: dict[str, "hashlib._Hash"] = {}


def _tag_hasher(tag: str) -> "hashlib._Hash":
    template = _TAG_TEMPLATES.get(tag)
    if template is None:
        template = hashlib.sha256(_tag_prefix(tag))
        _TAG_TEMPLATES[tag] = template
    return template.copy()


def tagged_hash(tag: str, *parts: bytes) -> Digest:
    """Hash ``parts`` under domain ``tag`` (BIP-340 style)."""
    if hotpath.enabled():
        h = _tag_hasher(tag)
    else:
        h = hashlib.sha256(_tag_prefix(tag))
    for part in parts:
        h.update(part)
    return Digest(h.digest())


def sha256(data: bytes) -> Digest:
    """Plain (untagged) SHA-256; only for interop points, prefer tags."""
    return Digest(hashlib.sha256(data).digest())


def hash_many(tag: str, items: Iterable[bytes]) -> Digest:
    """Hash a sequence of byte strings with length framing.

    Unlike ``tagged_hash`` (raw concatenation, for fixed-width inputs) this
    prefixes each item with its 8-byte big-endian length so that the item
    boundaries are unambiguous for variable-length inputs.
    """
    if hotpath.enabled():
        h = _tag_hasher(tag)
    else:
        h = hashlib.sha256(_tag_prefix(tag))
    for item in items:
        h.update(len(item).to_bytes(8, "big"))
        h.update(item)
    return Digest(h.digest())


class IncrementalHasher:
    """Streaming tagged hasher for hashing large log batches chunk-wise.

    Routers use this to commit to raw-log windows without materialising
    the whole window in memory (§3: "computing a cryptographic hash over
    the data in each router").
    """

    def __init__(self, tag: str) -> None:
        self._tag = tag
        self._hasher = hashlib.sha256(_tag_prefix(tag))
        self._count = 0

    @property
    def tag(self) -> str:
        return self._tag

    @property
    def item_count(self) -> int:
        return self._count

    def update(self, item: bytes) -> None:
        self._hasher.update(len(item).to_bytes(8, "big"))
        self._hasher.update(item)
        self._count += 1

    def digest(self) -> Digest:
        # Copy so that the hasher can keep accepting updates afterwards.
        return Digest(self._hasher.copy().digest())


def sha256_block_count(num_bytes: int) -> int:
    """Number of 64-byte SHA-256 compression blocks to hash ``num_bytes``.

    Matches the padding rule: message + 1 byte of padding marker + 8-byte
    length must fit, so hashing ``n`` bytes costs ``(n + 9 + 63) // 64``
    compressions.  The zkVM cycle meter uses this to charge the sha-256
    accelerator circuit per compression, as RISC Zero does.
    """
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return (num_bytes + 9 + 63) // 64
