"""Federated multi-provider telemetry (ROADMAP item 4).

The paper's prover is a single provider; its motivating disputes —
peering SLAs, inter-domain loss blame — cross provider boundaries.
This package generalizes the two-party peering demo in
:mod:`repro.core.federation` to K mutually distrustful providers:

* :mod:`.scenario` — :class:`FederationScenario`: K provider domains in
  a delivery chain, each running its own commitment/aggregation
  pipeline over only its own routers, publishing per-round roots to a
  shared :class:`RootBoard`;
* :mod:`.join` — :class:`FederationJoinProver`: routes one canonical
  totals query per provider through
  :meth:`~repro.engine.scheduler.ProvingEngine.submit_fanout` and folds
  the verified receipts inside the zkVM
  (:data:`~repro.core.guest_programs.federation_join_guest`) into a
  single proven cross-provider join — end-to-end path loss, the
  inter-domain traffic matrix, an SLA attestation;
* :mod:`.audit` — :class:`FederationAuditor`: verifies every provider
  chain and the join receipt from public material alone, flagging any
  provider whose published root does not match its proven round;
* :mod:`.sketch` — heavy-hitter and DDoS-attestation federation
  workloads over :mod:`repro.core.sketch_proof`.

No provider's raw records ever cross a domain boundary: the only
inter-domain artifacts are receipts, journals (aggregates and digests)
and published roots.
"""

from .audit import FederationAuditor, FederationReport, ProviderAudit
from .join import FEDERATION_TOTALS_SQL, FederationJoinProver, FederationJoinResult
from .scenario import FederationScenario, RootBoard, build_federation_scenario
from .sketch import (
    FederationDdosAttestation,
    FederationHeavyHitters,
    prove_ddos_attestation,
    prove_heavy_hitters,
)

__all__ = [
    "FEDERATION_TOTALS_SQL",
    "FederationAuditor",
    "FederationDdosAttestation",
    "FederationHeavyHitters",
    "FederationJoinProver",
    "FederationJoinResult",
    "FederationReport",
    "FederationScenario",
    "ProviderAudit",
    "RootBoard",
    "build_federation_scenario",
    "prove_ddos_attestation",
    "prove_heavy_hitters",
]
