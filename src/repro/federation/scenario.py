"""K-provider federation scenarios: domains, topology, published roots.

A :class:`FederationScenario` strings K autonomous provider domains
into a delivery chain: provider ``i`` owns a contiguous run of routers
and hands every flow to provider ``i+1`` over an inter-domain boundary
link.  Each domain is a full :class:`~repro.core.federation.
PeeringDomain` pipeline (own store, own bulletin, own prover service);
the only shared state is the :class:`RootBoard`, the public registry
where every provider publishes its per-round aggregation root.

The board is what makes the providers *mutually distrustful* rather
than merely separate: the federation join is proven against the
published roots, so a provider that publishes a root different from
what its chain proves is caught deterministically — either the join
guest aborts (when the coordinator feeds it the published roots) or
the auditor flags the provider (when it compares published roots to
the verified chains).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.federation import PeeringDomain
from ..errors import ConfigurationError, ProofError
from ..hashing import Digest
from ..netflow.generator import TrafficConfig, TrafficGenerator
from ..netflow.records import NetFlowRecord
from ..netflow.topology import LinkSpec, NetworkTopology
from ..zkvm import Receipt


class RootBoard:
    """Public per-round root registry for a federation.

    Providers publish ``(provider, round, root)``; auditors and the
    join coordinator read.  Publishing a *different* root for an
    already-published round raises — equivocation is never silent.  The
    explicit ``replace=True`` escape hatch exists only to simulate a
    Byzantine provider in tests and demos.
    """

    def __init__(self) -> None:
        self._roots: dict[tuple[str, int], Digest] = {}

    def publish(
        self,
        provider: str,
        round_index: int,
        root: Digest,
        *,
        replace: bool = False,
    ) -> None:
        key = (provider, round_index)
        existing = self._roots.get(key)
        if existing is not None and existing != root and not replace:
            raise ConfigurationError(
                f"provider {provider!r} already published a different "
                f"root for round {round_index} (equivocation)"
            )
        self._roots[key] = root

    def root(self, provider: str, round_index: int) -> Digest:
        try:
            return self._roots[(provider, round_index)]
        except KeyError:
            raise ProofError(
                f"provider {provider!r} has published no root for round {round_index}"
            ) from None

    def try_root(self, provider: str, round_index: int) -> Digest | None:
        return self._roots.get((provider, round_index))

    def latest(self, provider: str) -> tuple[int, Digest]:
        rounds = [r for (name, r) in self._roots if name == provider]
        if not rounds:
            raise ProofError(f"provider {provider!r} has published no roots")
        last = max(rounds)
        return last, self._roots[(provider, last)]


@dataclass(frozen=True)
class ProviderPublic:
    """The public material one provider hands the auditor.

    Receipts, commitments and published roots only — never records.
    """

    name: str
    bulletin: object
    receipts: tuple[Receipt, ...]


@dataclass
class FederationScenario:
    """K provider domains in a delivery chain plus the shared board."""

    providers: tuple[PeeringDomain, ...]
    topology: NetworkTopology
    total_flows: int
    board: RootBoard = field(default_factory=RootBoard)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(domain.name for domain in self.providers)

    def domain(self, name: str) -> PeeringDomain:
        for domain in self.providers:
            if domain.name == name:
                return domain
        raise ConfigurationError(f"no provider named {name!r}; providers: {list(self.names)}")

    def aggregate_and_publish(self) -> None:
        """Prove every pending window in every domain, publish roots.

        Each provider aggregates with its *own* prover over its own
        store — cross-domain work only ever exchanges receipts.
        """
        for domain in self.providers:
            if domain.prover.pending_windows():
                domain.prover.aggregate_all_committed()
            chain = domain.prover.chain
            if not len(chain):
                raise ProofError(f"provider {domain.name!r} has nothing committed to aggregate")
            round_index = len(chain) - 1
            self.board.publish(domain.name, round_index, chain.latest.new_root)

    def public_views(self) -> tuple[ProviderPublic, ...]:
        """What each provider publishes for auditing (no records)."""
        return tuple(
            ProviderPublic(
                name=domain.name,
                bulletin=domain.bulletin,
                receipts=tuple(domain.prover.chain.receipts()),
            )
            for domain in self.providers
        )


def provider_name(index: int) -> str:
    """isp-a, isp-b, … isp-z, isp-26, isp-27, …"""
    if index < 26:
        return f"isp-{chr(ord('a') + index)}"
    return f"isp-{index}"


def build_federation_scenario(
    num_providers: int = 3,
    num_flows: int = 120,
    seed: int = 7,
    boundary_loss: float = 0.01,
    num_windows: int = 1,
) -> FederationScenario:
    """A K-domain delivery chain; every flow crosses every boundary.

    Provider ``i`` owns routers ``r{2i+1}`` and ``r{2i+2}``; the link
    between ``r{2i+2}`` and ``r{2i+3}`` is the inter-domain boundary
    carrying ``boundary_loss``.  Flows are forced end-to-end (ingress
    at provider 0, egress at provider K−1) and spread round-robin over
    ``num_windows`` commitment windows.
    """
    if num_providers < 2:
        raise ConfigurationError("a federation needs at least two providers")
    if num_windows < 1:
        raise ConfigurationError("num_windows must be >= 1")
    topology = NetworkTopology()
    router_ids = tuple(f"r{i + 1}" for i in range(2 * num_providers))
    for router_id in router_ids:
        topology.add_router(router_id)
    internal = LinkSpec(latency_us=1_500, jitter_us=150, loss_rate=0.002)
    boundary = LinkSpec(latency_us=4_000, jitter_us=400, loss_rate=boundary_loss)
    for i in range(len(router_ids) - 1):
        # Even index => intra-provider link, odd => boundary link.
        spec = internal if i % 2 == 0 else boundary
        topology.add_link(router_ids[i], router_ids[i + 1], spec)

    domains = tuple(
        PeeringDomain.create(provider_name(i), router_ids[2 * i : 2 * i + 2])
        for i in range(num_providers)
    )
    owner = {router_id: domain for domain in domains for router_id in domain.router_ids}
    generator = TrafficGenerator(topology, TrafficConfig(seed=seed))
    pending: dict[tuple[str, int], list[NetFlowRecord]] = {}
    for flow_index in range(num_flows):
        window = flow_index % num_windows
        flow = generator.generate_flow(now_ms=1_000 + window * 5_000)
        crossing = dataclasses.replace(flow, path=router_ids)
        for record in generator.observe(crossing):
            key = (owner[record.router_id].name, window)
            pending.setdefault(key, []).append(record)
    for domain in domains:
        for window in range(num_windows):
            records = pending.get((domain.name, window), [])
            if records:
                domain.commit_window(window, records)
    return FederationScenario(
        providers=domains,
        topology=topology,
        total_flows=num_flows,
    )
