"""The federation auditor: receipts in, verdict out.

The auditor holds only public material — each provider's bulletin
board, its chain receipts, the shared :class:`~repro.federation.
scenario.RootBoard`, and the join receipt.  It never sees a flow
record; it never re-does the reconciliation arithmetic.  Its job is
three checks:

1. every provider's chain verifies against its own bulletin
   (:class:`~repro.core.verifier_client.VerifierClient`);
2. every provider's *published* root matches the root its verified
   chain actually proves — a mismatch flags that provider as Byzantine
   without disturbing the others;
3. the join receipt verifies under the federation join guest's image
   id, and the roots its journal binds are exactly the verified chain
   roots.

Whatever survives all three is trusted as proven: path loss, traffic
matrix and SLA verdicts are read straight out of the join journal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.guest_programs import federation_join_guest
from ..core.verifier_client import VerifierClient
from ..errors import ProofError, ReproError
from ..hashing import Digest
from ..zkvm import Verifier
from .join import FederationJoinResult
from .scenario import ProviderPublic, RootBoard


@dataclass(frozen=True)
class ProviderAudit:
    """One provider's standing after chain + root verification."""

    name: str
    round: int | None
    verified_root: Digest | None
    published_root: Digest | None
    flagged: bool
    reason: str  # "", "chain-invalid", "missing-root", "tampered-root"


@dataclass(frozen=True)
class BoundaryAudit:
    """One inter-domain boundary from the join journal."""

    src: str
    dst: str
    sent: int
    received: int
    gap: int
    ok: bool
    trusted: bool  # both endpoints unflagged


@dataclass(frozen=True)
class FederationReport:
    """The auditor's verdict over a proven federation round."""

    providers: tuple[ProviderAudit, ...]
    boundaries: tuple[BoundaryAudit, ...]
    path: dict[str, int]
    matrix: tuple[tuple[str, str, int], ...]
    sla_ok: bool

    @property
    def flagged(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.providers if p.flagged)

    @property
    def consistent(self) -> bool:
        return not self.flagged and all(b.ok for b in self.boundaries)

    def __str__(self) -> str:
        status = "CONSISTENT" if self.consistent else "DISPUTED"
        lines = [
            f"[{status}] {len(self.providers)} providers, "
            f"end-to-end loss {self.path['loss_ppm']} ppm "
            f"({self.path['offered']:,} offered, "
            f"{self.path['delivered']:,} delivered), "
            f"SLA {'ok' if self.sla_ok else 'VIOLATED'}"
        ]
        for audit in self.providers:
            if audit.flagged:
                lines.append(f"  !! {audit.name}: {audit.reason}")
        for b in self.boundaries:
            mark = "ok" if b.ok else "GAP"
            trust = "" if b.trusted else " (untrusted endpoint)"
            lines.append(
                f"  {b.src} -> {b.dst}: sent {b.sent:,}, "
                f"received {b.received:,} [{mark}]{trust}"
            )
        return "\n".join(lines)


class FederationAuditor:
    """Verifies a federation round from public material alone."""

    def audit(
        self,
        publics: tuple[ProviderPublic, ...],
        board: RootBoard,
        join: FederationJoinResult,
    ) -> FederationReport:
        audits = [self._audit_provider(public, board) for public in publics]
        by_name = {audit.name: audit for audit in audits}

        # The join receipt itself: pinned image id, full verification.
        Verifier().verify(join.receipt, federation_join_guest.image_id)
        journal = join.receipt.journal.decode_one()
        names = [public.name for public in publics]
        if list(journal["providers"]) != names:
            raise ProofError("join journal covers different providers than the audit set")
        # The roots the join was proven over must be the verified chain
        # roots; a coordinator that joined over stale or fabricated
        # roots is caught here even when every provider is honest.
        audits = [
            self._cross_check_join_root(audit, journal["roots"][index])
            for index, audit in enumerate(audits)
        ]
        by_name = {audit.name: audit for audit in audits}

        boundaries = tuple(
            BoundaryAudit(
                src=src,
                dst=dst,
                sent=sent,
                received=received,
                gap=gap,
                ok=bool(ok),
                trusted=not by_name[src].flagged and not by_name[dst].flagged,
            )
            for src, dst, sent, received, gap, ok in journal["boundaries"]
        )
        return FederationReport(
            providers=tuple(audits),
            boundaries=boundaries,
            path=dict(journal["path"]),
            matrix=tuple((src, dst, pkts) for src, dst, pkts in journal["matrix"]),
            sla_ok=bool(journal["sla"]["ok"]),
        )

    @staticmethod
    def _audit_provider(public: ProviderPublic, board: RootBoard) -> ProviderAudit:
        verifier = VerifierClient(public.bulletin)
        try:
            verified = verifier.verify_chain(list(public.receipts))
        except ReproError:
            return ProviderAudit(
                name=public.name,
                round=None,
                verified_root=None,
                published_root=None,
                flagged=True,
                reason="chain-invalid",
            )
        last = verified[-1]
        round_index = last.round
        published = board.try_root(public.name, round_index)
        if published is None:
            flagged, reason = True, "missing-root"
        elif published != last.new_root:
            flagged, reason = True, "tampered-root"
        else:
            flagged, reason = False, ""
        return ProviderAudit(
            name=public.name,
            round=round_index,
            verified_root=last.new_root,
            published_root=published,
            flagged=flagged,
            reason=reason,
        )

    @staticmethod
    def _cross_check_join_root(audit: ProviderAudit, join_root: Digest) -> ProviderAudit:
        if audit.flagged or audit.verified_root == join_root:
            return audit
        return ProviderAudit(
            name=audit.name,
            round=audit.round,
            verified_root=audit.verified_root,
            published_root=audit.published_root,
            flagged=True,
            reason="join-root-mismatch",
        )
