"""Federated sketch workloads: heavy hitters and DDoS attestation.

Two workloads that answer questions no single provider can: *which
flows dominate the federation as a whole*, and *how much of a suspect
flow did each provider actually carry*.  Both ride on
:mod:`repro.core.sketch_proof` — every provider proves a sketch build
over its own committed windows (binding every consumed commitment to
its bulletin), and only the proven journals — digests, totals, top-k
lists, point estimates — cross domain boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sketch_proof import (
    SketchBuildResult,
    SketchEstimate,
    SketchTelemetry,
    verify_sketch_build,
    verify_sketch_estimate,
)
from ..errors import ProofError
from ..netflow.records import FlowKey
from ..obs import names as obs_names
from ..obs import runtime as obs
from .scenario import FederationScenario


@dataclass(frozen=True)
class FederationHeavyHitters:
    """Federation-wide heavy hitters from per-provider proven sketches."""

    builds: dict[str, SketchBuildResult]
    per_provider: dict[str, tuple[tuple[bytes, int], ...]]
    combined: tuple[tuple[bytes, int], ...]

    @property
    def top_key(self) -> FlowKey:
        if not self.combined:
            raise ProofError("no heavy hitters were proven")
        return FlowKey.unpack(self.combined[0][0])


@dataclass(frozen=True)
class FederationDdosAttestation:
    """Per-provider proven volume for one suspect flow."""

    key: FlowKey
    threshold: int
    per_provider: dict[str, int]
    estimates: dict[str, SketchEstimate]

    @property
    def total(self) -> int:
        return sum(self.per_provider.values())

    @property
    def exceeded(self) -> bool:
        return self.total >= self.threshold

    @property
    def dominant_provider(self) -> str:
        return max(self.per_provider, key=lambda name: self.per_provider[name])


def prove_heavy_hitters(
    scenario: FederationScenario,
    top_k: int = 8,
    telemetry: SketchTelemetry | None = None,
) -> FederationHeavyHitters:
    """Prove per-provider sketch builds and merge the verified top lists.

    Each provider's build covers every window committed on its own
    bulletin; ``verify_sketch_build`` plays the auditor, re-checking
    the receipt and every consumed commitment before the provider's
    top-k list is admitted into the combined ranking.  Counts merge by
    summation, which is exact for Space-Saving entries present in every
    provider's list and a lower bound otherwise.
    """
    telemetry = telemetry or SketchTelemetry()
    obs.registry().counter(obs_names.FEDERATION_WORKLOADS, ("kind",)).inc(kind="heavy-hitters")
    builds: dict[str, SketchBuildResult] = {}
    per_provider: dict[str, tuple[tuple[bytes, int], ...]] = {}
    combined: dict[bytes, int] = {}
    for domain in scenario.providers:
        windows = domain.prover.bulletin.windows()
        if not windows:
            raise ProofError(f"provider {domain.name!r} has no committed windows to sketch")
        inputs = []
        for window_index in windows:
            inputs.extend(domain.prover.gather_window(window_index))
        build = telemetry.build(inputs, top_k=top_k)
        journal = verify_sketch_build(build.receipt, domain.prover.bulletin)
        builds[domain.name] = build
        top = tuple((entry["k"], entry["c"]) for entry in journal["top"])
        per_provider[domain.name] = top
        for key_bytes, count in top:
            combined[key_bytes] = combined.get(key_bytes, 0) + count
    ranked = sorted(combined.items(), key=lambda item: (-item[1], item[0]))
    return FederationHeavyHitters(
        builds=builds,
        per_provider=per_provider,
        combined=tuple(ranked[:top_k]),
    )


def prove_ddos_attestation(
    scenario: FederationScenario,
    threshold: int,
    key: FlowKey | None = None,
    hitters: FederationHeavyHitters | None = None,
    telemetry: SketchTelemetry | None = None,
) -> FederationDdosAttestation:
    """Prove how much of one flow each provider carried.

    With no ``key`` the federation-wide top heavy hitter is attested —
    the natural DDoS suspect.  Every provider proves a point estimate
    against its own verified sketch build; the attestation sums the
    *verified* estimates, so the federation-wide volume claim rests on
    receipts rather than on any provider's say-so.
    """
    obs.registry().counter(obs_names.FEDERATION_WORKLOADS, ("kind",)).inc(kind="ddos")
    telemetry = telemetry or SketchTelemetry()
    if hitters is None:
        hitters = prove_heavy_hitters(scenario, telemetry=telemetry)
    if key is None:
        key = hitters.top_key
    per_provider: dict[str, int] = {}
    estimates: dict[str, SketchEstimate] = {}
    for domain in scenario.providers:
        build = hitters.builds.get(domain.name)
        if build is None:
            raise ProofError(f"provider {domain.name!r} has no sketch build to estimate from")
        estimate = telemetry.prove_estimate(build, key)
        journal = verify_sketch_build(build.receipt, domain.prover.bulletin)
        per_provider[domain.name] = verify_sketch_estimate(estimate, journal)
        estimates[domain.name] = estimate
    return FederationDdosAttestation(
        key=key,
        threshold=threshold,
        per_provider=per_provider,
        estimates=estimates,
    )
