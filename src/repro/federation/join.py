"""The proven cross-provider join: K query proofs folded in the zkVM.

The two-party peering auditor (:mod:`repro.core.federation`) verifies
two query responses and does the reconciliation arithmetic *itself*.
That does not scale past two parties — an auditor of K providers would
hold K receipts and a spreadsheet.  Here the arithmetic moves inside
the zkVM: every provider proves one canonical totals query over its own
committed round, and :data:`~repro.core.guest_programs.
federation_join_guest` verifies those K receipts and commits the joined
result — end-to-end path loss, the inter-domain traffic matrix, an SLA
attestation — as one journal under one receipt.

Per-provider query proving routes through
:meth:`~repro.engine.scheduler.ProvingEngine.submit_fanout`, the same
fan-out/merge primitive partitioned queries use, so federation rounds
inherit the content-addressed receipt cache, the process/remote pool
backends and the ``repro_engine_*`` telemetry for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..core.aggregation import make_receipt_binding
from ..core.guest_programs import (
    FEDERATION_TOTALS_SQL,
    federation_join_guest,
    query_guest,
)
from ..engine import ProvingEngine
from ..engine.jobs import ProofJob
from ..errors import GuestAbort, ProofError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProverOpts, Receipt
from ..zkvm.recursion import resolve, resolve_all
from .scenario import FederationScenario

PPM = 1_000_000


@dataclass(frozen=True)
class FederationJoinResult:
    """A proven federation round: one receipt over K providers."""

    receipt: Receipt
    journal: dict[str, Any]
    providers: tuple[str, ...]
    roots: tuple[Digest, ...]
    total_cycles: int

    @property
    def sla_ok(self) -> bool:
        return bool(self.journal["sla"]["ok"])

    @property
    def path_loss_ppm(self) -> int:
        return int(self.journal["path"]["loss_ppm"])

    @property
    def matrix(self) -> tuple[tuple[str, str, int], ...]:
        return tuple((src, dst, pkts) for src, dst, pkts in self.journal["matrix"])


class FederationJoinProver:
    """Coordinates one federation join round through the engine.

    The coordinator is *untrusted*: everything it assembles — which
    query each provider proved, which roots the join was computed over
    — is re-checked inside the join guest, and the auditor re-checks
    the published roots against each provider's verified chain.  With
    no ``engine``, a private serial engine is created (and owned); pass
    an engine to share its pool, cache and telemetry across rounds.
    """

    def __init__(
        self,
        engine: ProvingEngine | None = None,
        prover_opts: ProverOpts | None = None,
        tolerance_ppm: int = 0,
        sla_loss_ppm: int = PPM,
    ) -> None:
        if tolerance_ppm < 0 or sla_loss_ppm < 0:
            raise ProofError("federation thresholds must be non-negative")
        self._own_engine = engine is None
        self._engine = engine if engine is not None else ProvingEngine()
        self._opts = prover_opts or ProverOpts.groth16()
        self.tolerance_ppm = tolerance_ppm
        self.sla_loss_ppm = sla_loss_ppm

    def __enter__(self) -> "FederationJoinProver":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._own_engine:
            self._engine.close()

    def prove_join(
        self,
        scenario: FederationScenario,
        roots: list[Digest] | None = None,
    ) -> FederationJoinResult:
        """Prove one join over the scenario's published roots.

        Aggregates any pending windows per domain (each with its own
        prover), defaults ``roots`` to what each provider published on
        the board, fans one totals-query job per provider out through
        the engine, and folds the resolved receipts in the join guest.
        A provider whose published root does not match its proven round
        makes the join guest abort — deterministically, with a
        :class:`~repro.errors.GuestAbort` naming the provider.
        """
        scenario.aggregate_and_publish()
        names = scenario.names
        if roots is None:
            roots = [scenario.board.latest(name)[1] for name in names]
        if len(roots) != len(names):
            raise ProofError("one published root per provider is required")

        start = time.perf_counter()
        registry = obs.registry()
        registry.gauge(obs_names.FEDERATION_PROVIDERS).set(len(names))
        outcome = "error"
        try:
            with obs.tracer().span(
                obs_names.SPAN_FEDERATION_JOIN,
                providers=len(names),
            ) as span:
                result = self._prove(scenario, names, list(roots), span)
            outcome = "ok"
            return result
        except GuestAbort:
            outcome = "abort"
            raise
        finally:
            registry.counter(obs_names.FEDERATION_JOINS, ("outcome",)).inc(outcome=outcome)
            registry.histogram(obs_names.FEDERATION_JOIN_SECONDS).observe(
                time.perf_counter() - start
            )

    def _prove(
        self,
        scenario: FederationScenario,
        names: tuple[str, ...],
        roots: list[Digest],
        span: Any,
    ) -> FederationJoinResult:
        jobs: list[ProofJob] = []
        agg_receipts: list[Receipt] = []
        for domain in scenario.providers:
            state, agg_receipt = domain.prover.query_state()
            agg_receipts.append(agg_receipt)
            jobs.append(self._totals_job(state, agg_receipt))

        # Populated by build_merge on the completion-callback thread;
        # reads below are ordered after it by merge_ready/merge_future.
        resolved: list[Receipt] = []

        def build_merge(results: list[Any]) -> ProofJob:
            builder = ExecutorEnvBuilder()
            builder.write(
                {
                    "num_providers": len(names),
                    "providers": list(names),
                    "roots": roots,
                    "tolerance_ppm": self.tolerance_ppm,
                    "sla_loss_ppm": self.sla_loss_ppm,
                }
            )
            for index, result in enumerate(results):
                receipt = resolve(result.receipt, agg_receipts[index])
                resolved.append(receipt)
                builder.write(make_receipt_binding(receipt))
            return ProofJob.from_parts(federation_join_guest, builder.build(), self._opts)

        schedule = self._engine.submit_fanout(jobs, build_merge)
        total_cycles = 0
        for future in schedule.partition_futures:
            total_cycles += future.result().stats.total_cycles
        schedule.merge_ready.wait()
        if schedule.merge_future is None:
            raise ProofError("federation join merge was never submitted")
        merge_result = schedule.merge_future.result()
        total_cycles += merge_result.stats.total_cycles
        span.add_cycles(total_cycles)
        receipt = resolve_all(merge_result.receipt, resolved)
        return FederationJoinResult(
            receipt=receipt,
            journal=receipt.journal.decode_one(),
            providers=names,
            roots=tuple(roots),
            total_cycles=total_cycles,
        )

    def _totals_job(self, state: Any, agg_receipt: Receipt) -> ProofJob:
        """One provider's canonical totals query as an engine job.

        The same frame layout as the full-scan query prover: header,
        aggregation binding, then every CLog entry in slot order.  The
        frames never leave the provider conceptually — only the receipt
        the pool returns enters the join.
        """
        builder = ExecutorEnvBuilder()
        builder.write({"query": FEDERATION_TOTALS_SQL, "num_entries": len(state)})
        builder.write(make_receipt_binding(agg_receipt))
        for entry in state.entries_in_slot_order():
            builder.write({"key": entry.key.pack(), "payload": entry.to_payload()})
        return ProofJob.from_parts(query_guest, builder.build(), self._opts)
