"""Deterministic, seedable fault injection for chaos testing.

The prover pipeline must keep its guarantees when infrastructure
misbehaves: store reads time out, bulletin fetches fail, proving crashes
mid-round.  This package is the harness that exercises those paths
reproducibly — a :class:`FaultPlan` describes *what* fires *where* and
*when* (pure data, seedable), a :class:`FaultInjector` executes it, and
the wrappers in :mod:`repro.faults.wrappers` splice the injector into a
live :class:`~repro.core.prover_service.ProverService`.

Everything here is **off by default**.  The library never constructs a
live injector by itself; chaos tests call :func:`inject_faults`
explicitly, and operators opt in with ``REPRO_FAULTS`` /
``REPRO_FAULT_SEED`` (see :meth:`FaultInjector.from_env`).  The same
plan and seed always fire on the same invocations, so every chaos run
is replayable bit-for-bit.
"""

from .injector import ENV_PLAN, ENV_SEED, NULL_INJECTOR, FaultInjector
from .plan import (
    BULLETIN_GET,
    ERROR_KINDS,
    KNOWN_SITES,
    NET_FRAME,
    NET_TRANSPORT,
    PROVER_PROVE,
    STORE_ROUTER_IDS,
    STORE_WINDOW_BLOBS,
    STORE_WINDOW_INDICES,
    FaultPlan,
    FaultSpec,
)
from .wire import FRAME_ACTIONS, corrupt_payload, frame_action
from .wrappers import (
    FaultyAggregator,
    FaultyBulletin,
    FaultyLogStore,
    inject_faults,
)

__all__ = [
    "BULLETIN_GET",
    "ENV_PLAN",
    "ENV_SEED",
    "ERROR_KINDS",
    "FRAME_ACTIONS",
    "KNOWN_SITES",
    "NET_FRAME",
    "NET_TRANSPORT",
    "NULL_INJECTOR",
    "PROVER_PROVE",
    "STORE_ROUTER_IDS",
    "STORE_WINDOW_BLOBS",
    "STORE_WINDOW_INDICES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyAggregator",
    "FaultyBulletin",
    "FaultyLogStore",
    "corrupt_payload",
    "frame_action",
    "inject_faults",
]
