"""Fault plans: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is a declarative, seedable description of faults to
raise at named **sites** — the chokepoints a long-running prover
deployment actually fails at (store reads, bulletin fetches, proving,
the wire transport).  Plans are pure data: the same plan and seed always
fire on exactly the same invocations, so every chaos test is replayable
bit-for-bit (CI runs the suite under several ``REPRO_FAULT_SEED``
values).

The injected exceptions are the *real* domain classes
(:class:`~repro.errors.StorageError`,
:class:`~repro.errors.MissingCommitment`, ...), not synthetic marker
types — the recovery code under test must classify and handle them with
exactly the logic it uses in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import (
    ConfigurationError,
    ConnectionFailed,
    FrameFault,
    GuestAbort,
    MissingCommitment,
    ProofError,
    RequestTimeout,
    StorageError,
)

# -- named sites -------------------------------------------------------------
#
# One constant per injection point wired into the wrappers
# (:mod:`repro.faults.wrappers`) and the net client.  Tests reference
# these instead of raw strings so a typo'd site fails loudly.

STORE_WINDOW_BLOBS = "store.window_blobs"
STORE_WINDOW_INDICES = "store.window_indices"
STORE_ROUTER_IDS = "store.router_ids"
BULLETIN_GET = "bulletin.get"
PROVER_PROVE = "prover.prove"
NET_TRANSPORT = "net.transport"
ENGINE_WORKER = "engine.worker"
NET_FRAME = "net.frame"

KNOWN_SITES = frozenset({
    STORE_WINDOW_BLOBS,
    STORE_WINDOW_INDICES,
    STORE_ROUTER_IDS,
    BULLETIN_GET,
    PROVER_PROVE,
    NET_TRANSPORT,
    ENGINE_WORKER,
    NET_FRAME,
})

# -- error kinds -------------------------------------------------------------
#
# kind name -> factory producing the exception to raise.  Using the real
# hierarchy means a "storage" fault is retried by the daemon exactly
# like a real backend outage, and a "guest-abort" fault is quarantined
# exactly like real tampered data.

ERROR_KINDS: dict[str, Callable[[str], Exception]] = {
    "storage": lambda msg: StorageError(msg),
    "missing-commitment": lambda msg: MissingCommitment(msg),
    "proof": lambda msg: ProofError(msg),
    "guest-abort": lambda msg: GuestAbort(msg),
    "connection": lambda msg: ConnectionFailed(msg),
    "timeout": lambda msg: RequestTimeout(msg),
    # Wire-frame *behaviours* for the net.frame site: the raised
    # FrameFault is control flow consumed by repro.faults.wire —
    # the transport turns the action into a real dropped/delayed/
    # corrupted frame or a hard disconnect, and the code under test
    # sees only the organic consequences (timeouts, resets, decode
    # failures), never the marker exception itself.
    "drop": lambda msg: FrameFault("drop", msg),
    "delay": lambda msg: FrameFault("delay", msg),
    "corrupt": lambda msg: FrameFault("corrupt", msg),
    "disconnect": lambda msg: FrameFault("disconnect", msg),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: fire ``error`` at ``site`` on chosen invocations.

    Invocations are counted per site, 1-based.  The spec fires on
    invocation ``start``, then on every ``every``-th invocation after
    it, at most ``count`` times in total (``count=None`` never stops —
    a *permanent* fault; any finite ``count`` makes it *transient*).
    ``probability`` gates each candidate firing through the plan's
    seeded RNG, so probabilistic chaos stays deterministic per seed.
    """

    site: str
    error: str = "storage"
    start: int = 1
    every: int = 1
    count: int | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(KNOWN_SITES)}")
        if self.error not in ERROR_KINDS:
            raise ConfigurationError(
                f"unknown fault error kind {self.error!r}; known kinds: "
                f"{sorted(ERROR_KINDS)}")
        if self.start < 1 or self.every < 1:
            raise ConfigurationError("start and every must be >= 1")
        if self.count is not None and self.count < 1:
            raise ConfigurationError("count must be >= 1 or None")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")

    @property
    def permanent(self) -> bool:
        """A fault that never stops firing once its schedule matches."""
        return self.count is None

    def matches(self, invocation: int) -> bool:
        """Does the schedule name this (1-based) invocation?"""
        if invocation < self.start:
            return False
        return (invocation - self.start) % self.every == 0

    def make_error(self, invocation: int) -> Exception:
        return ERROR_KINDS[self.error](
            f"injected {self.error} fault at {self.site} "
            f"(invocation {invocation})")

    # -- spec-string form ----------------------------------------------------

    def to_text(self) -> str:
        parts = [self.site, self.error]
        opts = []
        if self.start != 1:
            opts.append(f"start={self.start}")
        if self.every != 1:
            opts.append(f"every={self.every}")
        if self.count is not None:
            opts.append(f"count={self.count}")
        if self.probability != 1.0:
            opts.append(f"p={self.probability}")
        if opts:
            parts.append(",".join(opts))
        return ":".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``site[:error[:opt=val,...]]`` (the env-var grammar)."""
        pieces = text.strip().split(":")
        if not pieces or not pieces[0]:
            raise ConfigurationError(f"empty fault spec in {text!r}")
        site = pieces[0].strip()
        error = pieces[1].strip() if len(pieces) > 1 and pieces[1] \
            else "storage"
        kwargs: dict[str, int | float | None] = {}
        if len(pieces) > 2 and pieces[2]:
            for option in pieces[2].split(","):
                key, sep, value = option.partition("=")
                key = key.strip()
                if not sep:
                    raise ConfigurationError(
                        f"malformed fault option {option!r} in {text!r}")
                try:
                    if key in ("start", "every", "count"):
                        kwargs[key] = int(value)
                    elif key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    else:
                        raise ConfigurationError(
                            f"unknown fault option {key!r} in {text!r}")
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad value for fault option {key!r} in "
                        f"{text!r}") from exc
        return cls(site=site, error=error, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded collection of fault specs — one chaos scenario."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.site == site)

    @property
    def sites(self) -> frozenset[str]:
        return frozenset(s.site for s in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def to_text(self) -> str:
        """The ``REPRO_FAULTS`` string form (``;``-separated specs)."""
        return ";".join(spec.to_text() for spec in self.specs)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        specs = tuple(FaultSpec.parse(piece)
                      for piece in text.split(";") if piece.strip())
        return cls(specs=specs, seed=seed)
