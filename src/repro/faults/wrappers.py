"""Delegating wrappers that wire an injector into live components.

Each wrapper is a transparent proxy around the real object, calling
``injector.fire(<site>)`` before the operations a deployment can lose
to infrastructure faults.  Writes and integrity-critical paths are
deliberately *not* fault sites: the system's core guarantee is that a
round either fully proves or changes nothing, so chaos testing targets
the read/prove paths where retries and quarantine must do the work.

:func:`inject_faults` rewires a :class:`~repro.core.prover_service.
ProverService` in place — the one-liner every chaos test uses.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..commitments import BulletinBoard, Commitment
from ..storage.backend import LogStore
from .injector import FaultInjector
from . import plan as sites


class FaultyLogStore(LogStore):
    """A :class:`LogStore` whose reads pass through the injector."""

    def __init__(self, inner: LogStore, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    # reads (fault sites)
    def window_blobs(self, router_id: str,
                     window_index: int) -> list[bytes]:
        self.injector.fire(sites.STORE_WINDOW_BLOBS)
        return self.inner.window_blobs(router_id, window_index)

    def window_indices(self, router_id: str) -> list[int]:
        self.injector.fire(sites.STORE_WINDOW_INDICES)
        return self.inner.window_indices(router_id)

    def router_ids(self) -> list[str]:
        self.injector.fire(sites.STORE_ROUTER_IDS)
        return self.inner.router_ids()

    # writes (transparent)
    def append_records(self, router_id: str, window_index: int,
                       records: list) -> None:
        self.inner.append_records(router_id, window_index, records)

    def overwrite_raw(self, router_id: str, window_index: int, seq: int,
                      data: bytes) -> None:
        self.inner.overwrite_raw(router_id, window_index, seq, data)

    def replace_window(self, router_id: str, window_index: int,
                       blobs: list[bytes]) -> None:
        self.inner.replace_window(router_id, window_index, blobs)

    def purge_window(self, router_id: str, window_index: int) -> int:
        return self.inner.purge_window(router_id, window_index)

    # checkpoints (transparent — recovery must work during an outage
    # of the *read* path; checkpoint durability is the backend's job)
    def put_checkpoint(self, name: str, data: bytes) -> None:
        self.inner.put_checkpoint(name, data)

    def get_checkpoint(self, name: str) -> bytes | None:
        return self.inner.get_checkpoint(name)

    def checkpoint_names(self) -> list[str]:
        return self.inner.checkpoint_names()

    def delete_checkpoint(self, name: str) -> bool:
        return self.inner.delete_checkpoint(name)

    def close(self) -> None:
        self.inner.close()


class FaultyBulletin:
    """A :class:`BulletinBoard` proxy injecting on ``get``.

    Models a flaky transparency-log endpoint: published state is intact,
    but individual fetches can fail.
    """

    def __init__(self, inner: BulletinBoard,
                 injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def publish(self, commitment: Commitment) -> None:
        self.inner.publish(commitment)

    def get(self, router_id: str, window_index: int) -> Commitment:
        self.injector.fire(sites.BULLETIN_GET)
        return self.inner.get(router_id, window_index)

    def try_get(self, router_id: str,
                window_index: int) -> Commitment | None:
        return self.inner.try_get(router_id, window_index)

    def for_window(self, window_index: int) -> dict[str, Commitment]:
        return self.inner.for_window(window_index)

    def windows(self) -> list[int]:
        return self.inner.windows()

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[Commitment]:
        return iter(self.inner)


class FaultyAggregator:
    """An aggregator proxy injecting on ``prover.prove``.

    Fires *before* delegating, so an injected fault aborts the round
    with no proof and no state change — the same contract as a real
    prover crash.
    """

    def __init__(self, inner: Any, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def aggregate(self, state: Any, inputs: Any,
                  prev_receipt: Any) -> Any:
        self.injector.fire(sites.PROVER_PROVE)
        return self.inner.aggregate(state, inputs, prev_receipt)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


def inject_faults(service: Any, injector: FaultInjector) -> Any:
    """Rewire a ProverService's store, bulletin and aggregator through
    ``injector`` (in place); returns the service for chaining.

    This is the explicit wiring step chaos tests perform — nothing in
    the library calls it on its own.  When the service runs a proving
    engine, its pool is pointed at the same injector, so ``engine.worker``
    faults fire at job dispatch — the host-side moment a worker crash
    surfaces — deterministically on every backend.
    """
    service.store = FaultyLogStore(service.store, injector)
    service.bulletin = FaultyBulletin(service.bulletin, injector)
    service._aggregator = FaultyAggregator(service._aggregator, injector)
    engine = getattr(service, "engine", None)
    if engine is not None:
        engine.pool.injector = injector
    return service
