"""Wire-frame fault behaviours: the ``net.frame`` site's runtime half.

The other fault sites raise domain exceptions straight through the
instrumented call; frames are different — "the network ate this frame"
is not an exception the transport code could raise about itself, it is
*behaviour* the transport must be subjected to.  The plan kinds
``drop``/``delay``/``corrupt``/``disconnect`` therefore map to a
control-flow marker (:class:`~repro.errors.FrameFault`) that
:func:`frame_action` converts back into a plain action string, and the
two wired transports implement the action for real:

* :class:`repro.cluster.nodes.WorkerClient` applies it to the
  *outgoing request* frame (client-side corruption is what the worker
  daemon must reject);
* :class:`repro.cluster.worker.WorkerServer` applies it to the
  *outgoing response* frame (server-side corruption is what the
  dispatcher must reject).

Both ends share one seeded injector schedule, so a chaos scenario
under ``REPRO_FAULTS="net.frame:corrupt:every=5" REPRO_FAULT_SEED=1``
replays bit-for-bit.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError, FrameFault
from .plan import NET_FRAME

#: The four frame behaviours (also the plan error-kind names).
DROP = "drop"
DELAY = "delay"
CORRUPT = "corrupt"
DISCONNECT = "disconnect"

FRAME_ACTIONS = frozenset({DROP, DELAY, CORRUPT, DISCONNECT})

#: How long an injected ``delay`` stalls the frame.  Short enough to
#: keep chaos suites fast, long enough to register on latency
#: histograms and exercise slow-path code.
DELAY_SECONDS = 0.05


def frame_action(injector: Any, site: str = NET_FRAME) -> str | None:
    """Fire ``site`` and translate a scheduled fault into an action.

    Returns ``None`` (no fault due — the overwhelmingly common case:
    one counter increment and a dict miss) or one of
    :data:`FRAME_ACTIONS`.  Non-frame exceptions configured on the
    site propagate unchanged — an operator who schedules
    ``net.frame:storage`` gets exactly what they asked for.
    """
    if injector is None:
        return None
    try:
        injector.fire(site)
    except FrameFault as fault:
        if fault.action not in FRAME_ACTIONS:
            raise ConfigurationError(
                f"unknown frame action {fault.action!r}") from fault
        return fault.action
    return None


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically flip the payload's first byte.

    The first byte of a canonical envelope is the encoder's type tag,
    so the receiving side fails structured decode immediately — the
    corruption is always *detected* (a flip deep inside a body could
    decode cleanly into wrong data, which is the receipt
    re-verification layer's job, not the framing layer's).  The frame
    header itself stays intact: the peer reads a well-framed payload
    of garbage, the worst case for envelope parsing.
    """
    if not payload:
        return b"\xff"
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
