"""The runtime half of fault injection: counting, firing, accounting.

A :class:`FaultInjector` owns the per-site invocation counters and the
plan's seeded RNG.  Instrumented chokepoints call ``injector.fire(site)``
once per operation; the injector either returns (no fault scheduled) or
raises the configured domain exception.  With no plan the injector is
inert — ``fire`` is a counter increment and a tuple lookup — so wrappers
can stay wired in permanently.

Activation is **opt-in twice over**: nothing in the library constructs a
live injector on its own.  Tests wire one explicitly
(:func:`repro.faults.wrappers.inject_faults`), and operators can export
``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` and build one with
:meth:`FaultInjector.from_env`.
"""

from __future__ import annotations

import os
import random
import threading
from collections import Counter

from .plan import FaultPlan, FaultSpec

#: Environment variables consulted by :meth:`FaultInjector.from_env`.
ENV_PLAN = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"


class FaultInjector:
    """Deterministic, thread-safe fault firing for one plan."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._rng = random.Random(self.plan.seed)
        self._lock = threading.Lock()
        self._invocations: Counter[str] = Counter()
        self._injected: Counter[str] = Counter()
        self._fired_per_spec: Counter[FaultSpec] = Counter()
        # site -> specs, precomputed so inert sites cost one dict miss.
        self._by_site: dict[str, tuple[FaultSpec, ...]] = {
            site: self.plan.for_site(site) for site in self.plan.sites}

    @property
    def enabled(self) -> bool:
        return bool(self.plan)

    # -- firing -------------------------------------------------------------

    def fire(self, site: str) -> None:
        """Count one invocation of ``site``; raise if a fault is due."""
        with self._lock:
            self._invocations[site] += 1
            specs = self._by_site.get(site)
            if not specs:
                return
            invocation = self._invocations[site]
            for spec in specs:
                if not spec.matches(invocation):
                    continue
                if spec.count is not None \
                        and self._fired_per_spec[spec] >= spec.count:
                    continue
                if spec.probability < 1.0 \
                        and self._rng.random() >= spec.probability:
                    continue
                self._fired_per_spec[spec] += 1
                self._injected[site] += 1
                raise spec.make_error(invocation)

    # -- accounting ---------------------------------------------------------

    def invocations(self, site: str) -> int:
        with self._lock:
            return self._invocations[site]

    def injected(self, site: str) -> int:
        with self._lock:
            return self._injected[site]

    def stats(self) -> dict:
        """Snapshot for status endpoints and test assertions."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "seed": self.plan.seed,
                "plan": self.plan.to_text(),
                "invocations": dict(self._invocations),
                "injected": dict(self._injected),
            }

    def reset(self) -> None:
        """Restart counters and the RNG (fresh, replayable run)."""
        with self._lock:
            self._rng = random.Random(self.plan.seed)
            self._invocations.clear()
            self._injected.clear()
            self._fired_per_spec.clear()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None
                 ) -> "FaultInjector":
        """An injector for the ``REPRO_FAULTS`` env plan.

        Returns an **inert** injector when the variable is unset or
        empty — the safe default for every production entry point.
        ``REPRO_FAULT_SEED`` (default 0) seeds probabilistic specs.
        """
        env = environ if environ is not None else os.environ
        text = env.get(ENV_PLAN, "").strip()
        if not text:
            return cls(None)
        seed = int(env.get(ENV_SEED, "0"))
        return cls(FaultPlan.parse(text, seed=seed))


#: Shared inert injector for call sites that need a default.
NULL_INJECTOR = FaultInjector(None)
