"""Length-prefixed binary framing for the wire protocol.

Every message travels in one frame::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       2     magic ``b"RV"`` (Repro Verifiable)
    2       1     protocol version (currently ``0x01``)
    3       4     payload length, unsigned big-endian
    7       n     payload (one canonically encoded envelope)

The fixed 7-byte header lets a reader decide, before buffering any
payload, whether the frame is acceptable: wrong magic or version is a
:class:`~repro.errors.ProtocolError`, a declared length above the
configured maximum is a :class:`~repro.errors.FrameTooLarge`, and data
that ends mid-header or mid-payload is a
:class:`~repro.errors.TruncatedFrame`.  Rejecting on the header bounds
the memory an untrusted peer can force the reader to allocate.

Both transports share this module: the asyncio server uses the
``read_frame``/``write_frame`` coroutines, the synchronous clients use
``read_frame_from``/``write_frame_to`` over plain sockets, and
:class:`FrameDecoder` gives tests and fuzzers a push-style decoder.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Callable, Iterator

from ..errors import FrameTooLarge, ProtocolError, TruncatedFrame

MAGIC = b"RV"
WIRE_VERSION = 1
HEADER = struct.Struct(">2sBI")
HEADER_SIZE = HEADER.size  # 7 bytes

# Generous default: the receipt chain for a long history is the largest
# payload the protocol ships, and it grows linearly with rounds.
DEFAULT_MAX_FRAME_SIZE = 16 * 1024 * 1024


def encode_frame(payload: bytes,
                 max_size: int = DEFAULT_MAX_FRAME_SIZE) -> bytes:
    """Wrap ``payload`` in a wire frame."""
    if len(payload) > max_size:
        raise FrameTooLarge(
            f"payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte frame limit")
    return HEADER.pack(MAGIC, WIRE_VERSION, len(payload)) + payload


def parse_header(header: bytes,
                 max_size: int = DEFAULT_MAX_FRAME_SIZE) -> int:
    """Validate a 7-byte frame header; return the payload length."""
    if len(header) != HEADER_SIZE:
        raise TruncatedFrame(
            f"frame header is {len(header)} bytes, need {HEADER_SIZE}")
    magic, version, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire version {version} "
            f"(this side speaks {WIRE_VERSION})")
    if length > max_size:
        raise FrameTooLarge(
            f"peer declared a {length}-byte payload, limit is "
            f"{max_size} bytes")
    return length


def decode_frame(data: bytes,
                 max_size: int = DEFAULT_MAX_FRAME_SIZE
                 ) -> tuple[bytes, int]:
    """Decode one frame from the head of ``data``.

    Returns ``(payload, bytes_consumed)``; raises
    :class:`~repro.errors.TruncatedFrame` if ``data`` holds less than a
    complete frame.
    """
    if len(data) < HEADER_SIZE:
        raise TruncatedFrame(
            f"need {HEADER_SIZE} header bytes, have {len(data)}")
    length = parse_header(data[:HEADER_SIZE], max_size)
    end = HEADER_SIZE + length
    if len(data) < end:
        raise TruncatedFrame(
            f"frame declares {length} payload bytes, only "
            f"{len(data) - HEADER_SIZE} present")
    return bytes(data[HEADER_SIZE:end]), end


class FrameDecoder:
    """Incremental (push-style) frame decoder.

    Feed arbitrary chunks; complete frames come out.  Header validation
    happens as soon as 7 bytes are buffered, so oversized or garbage
    frames are rejected without waiting for their payload.
    """

    def __init__(self,
                 max_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
        self.max_size = max_size
        self._buffer = bytearray()
        self._expected: int | None = None  # payload length, once known

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def feed(self, chunk: bytes) -> Iterator[bytes]:
        """Absorb ``chunk``; yield every frame it completes."""
        self._buffer.extend(chunk)
        while True:
            if self._expected is None:
                if len(self._buffer) < HEADER_SIZE:
                    return
                self._expected = parse_header(
                    bytes(self._buffer[:HEADER_SIZE]), self.max_size)
            end = HEADER_SIZE + self._expected
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            self._expected = None
            yield payload

    def finish(self) -> None:
        """Declare end-of-stream; raises if a frame is in flight."""
        if self._buffer:
            raise TruncatedFrame(
                f"stream ended with {len(self._buffer)} bytes of an "
                "incomplete frame")


# -- asyncio transport -------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader,
                     max_size: int = DEFAULT_MAX_FRAME_SIZE
                     ) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            f"connection closed {len(exc.partial)} bytes into a frame "
            "header") from exc
    length = parse_header(header, max_size)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed after {len(exc.partial)} of {length} "
            "payload bytes") from exc
    return payload


async def write_frame(writer: asyncio.StreamWriter, payload: bytes,
                      max_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
    """Write one frame and drain (the drain is the backpressure)."""
    writer.write(encode_frame(payload, max_size))
    await writer.drain()


# -- blocking-socket transport ----------------------------------------------


def read_frame_from(recv: Callable[[int], bytes],
                    max_size: int = DEFAULT_MAX_FRAME_SIZE) -> bytes:
    """Read one frame using a blocking ``recv(n)`` callable
    (e.g. ``sock.recv``).  EOF before any header byte raises
    :class:`~repro.errors.TruncatedFrame` too — synchronous callers
    always expect a response."""
    header = _recv_exactly(recv, HEADER_SIZE, "frame header")
    length = parse_header(header, max_size)
    return _recv_exactly(recv, length, "frame payload")


def write_frame_to(send_all: Callable[[bytes], object], payload: bytes,
                   max_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
    """Write one frame using a blocking ``sendall``-style callable."""
    send_all(encode_frame(payload, max_size))


def _recv_exactly(recv: Callable[[int], bytes], n: int,
                  what: str) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = recv(n - len(chunks))
        if not chunk:
            raise TruncatedFrame(
                f"connection closed after {len(chunks)} of {n} "
                f"{what} bytes")
        chunks.extend(chunk)
    return bytes(chunks)
