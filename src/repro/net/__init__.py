"""Wire-protocol service layer: distributed prover/verifier deployment.

The paper's deployment model (§1, Figure 1) has three physically
separated parties — routers publishing commitments, an off-path prover,
and remote clients verifying query answers.  This package puts a real
network boundary between them:

* :mod:`~repro.net.framing` — length-prefixed binary frames with a
  version byte and bounded payload sizes;
* :mod:`~repro.net.messages` — typed request/response envelopes and the
  error-code registry mapping onto :mod:`repro.errors`;
* :mod:`~repro.net.server` — :class:`ProverServer`, an asyncio server
  wrapping a :class:`~repro.core.prover_service.ProverService`;
* :mod:`~repro.net.client` — synchronous :class:`RouterClient` /
  :class:`QueryClient` stubs with pooling and retries;
* :mod:`~repro.net.retry` — exponential backoff with jitter.

Nothing cryptographic changes at the boundary: responses fetched over
the wire verify with the same :class:`VerifierClient` code paths as
in-process ones, because receipts, commitments, and query responses
round-trip through the canonical serialization
(`repro.serialization` typed wire codecs).
"""

from .aio import AsyncQueryClient
from .client import QueryClient, RouterClient, ServiceClient, \
    parse_endpoint
from .framing import DEFAULT_MAX_FRAME_SIZE, FrameDecoder, \
    WIRE_VERSION, decode_frame, encode_frame
from .messages import PROTOCOL_VERSION, Envelope, MessageKind
from .retry import NO_RETRY, RetryPolicy, call_with_retry
from .server import ProverServer

__all__ = [
    "AsyncQueryClient",
    "DEFAULT_MAX_FRAME_SIZE",
    "Envelope",
    "FrameDecoder",
    "MessageKind",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "ProverServer",
    "QueryClient",
    "RetryPolicy",
    "RouterClient",
    "ServiceClient",
    "WIRE_VERSION",
    "call_with_retry",
    "decode_frame",
    "encode_frame",
    "parse_endpoint",
]
