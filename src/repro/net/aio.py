"""A minimal asyncio client stub for the prover wire protocol.

The synchronous :class:`~repro.net.client.ServiceClient` blocks a
thread per in-flight request, which caps how much concurrency a single
test process can throw at a server.  :class:`AsyncQueryClient` speaks
the same length-prefixed envelope protocol over one
``asyncio.open_connection`` stream, so hundreds of clients are just
hundreds of coroutines — the shape the multi-tenant load tests need.

Deliberately *single-attempt*: no pooling, no retries.  Load tests
count answered-exactly-once semantics, and an invisible transport
retry would blur the very accounting the tests exist to do.  Remote
errors surface through the same typed mapping as the sync client
(:func:`~repro.net.messages.raise_remote`), so an
``admission-rejected`` envelope raises
:class:`~repro.errors.AdmissionRejected` here too.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..errors import ConnectionFailed, ProtocolError
from ..serialization import query_response_from_wire
from .framing import DEFAULT_MAX_FRAME_SIZE, read_frame, write_frame
from .messages import Envelope, MessageKind, raise_remote, request


class AsyncQueryClient:
    """One connection, sequential requests, typed remote errors."""

    def __init__(self, host: str, port: int, *,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> None:
        self.host = host
        self.port = port
        self.max_frame_size = max_frame_size
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 1

    async def connect(self) -> "AsyncQueryClient":
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        except OSError as exc:
            raise ConnectionFailed(
                f"cannot connect to {self.host}:{self.port}: "
                f"{exc}") from exc
        return self

    async def close(self) -> None:
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncQueryClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- requests ------------------------------------------------------------

    async def request(self, kind: MessageKind,
                      body: dict[str, Any] | None = None
                      ) -> dict[str, Any]:
        if self._writer is None or self._reader is None:
            raise ConnectionFailed("client is not connected")
        request_id = self._next_id
        self._next_id += 1
        envelope = request(request_id, kind, body)
        try:
            await write_frame(self._writer, envelope.to_bytes(),
                              self.max_frame_size)
            payload = await read_frame(self._reader,
                                       self.max_frame_size)
        except OSError as exc:
            raise ConnectionFailed(
                f"connection to {self.host}:{self.port} failed: "
                f"{exc}") from exc
        if payload is None:
            raise ConnectionFailed("server closed the connection")
        reply = Envelope.from_bytes(payload)
        if reply.type == "err":
            raise_remote(reply.body.get("code", "internal"),
                         str(reply.body.get("message", "")))
        if reply.type != "ok":
            raise ProtocolError(
                f"expected a response envelope, got {reply.type!r}")
        if reply.request_id != request_id:
            raise ProtocolError(
                f"response id {reply.request_id} does not match "
                f"request id {request_id}")
        return reply.body

    async def query(self, sql: str, round_index: int | None = None,
                    tenant: str | None = None) -> Any:
        """A proven ``QueryResponse`` (or a typed remote error)."""
        body: dict[str, Any] = {"sql": sql, "round": round_index}
        if tenant is not None:
            body["tenant"] = tenant
        reply = await self.request(MessageKind.QUERY, body)
        return query_response_from_wire(reply["response"])

    async def fetch_status(self) -> dict[str, Any]:
        return await self.request(MessageKind.STATUS)

    async def fetch_metrics(self) -> dict[str, Any]:
        return await self.request(MessageKind.METRICS)


__all__ = ["AsyncQueryClient"]
