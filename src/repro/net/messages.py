"""Typed message schema for the prover wire protocol.

Every frame payload is one canonically encoded **envelope**::

    {v: 1, t: "req" | "ok" | "err", id: <int>, k: <kind>, b: <body>}

``id`` is a client-chosen correlation id the server echoes back; ``k``
is the message kind (request kinds below; responses echo the request's
kind); ``b`` is a kind-specific dict body.

Request kinds and their bodies:

=====================  ====================================================
``health``             ``{}`` → server status snapshot
``commit-window``      ``{commitment}`` → router publishes to the bulletin
``get-bulletin``       ``{}`` → every published commitment
``run-round``          ``{windows: [int] | None}`` → aggregation round(s)
``query``              ``{sql, round: int | None, tenant: str?}`` →
                       proven QueryResponse.  ``tenant`` (optional,
                       default ``"default"``) names the rate-limit
                       bucket when the server runs the multi-tenant
                       query service; servers without one ignore it.
                       An over-limit or over-capacity request is
                       rejected with the ``admission-rejected`` code
                       instead of being queued.
``fetch-receipt-chain``  ``{}`` → the full aggregation receipt chain
``status``             ``{}`` → service status + supervised-daemon
                       health (``daemon`` is None when the server has
                       no attached daemon)
``metrics``            ``{}`` → observability snapshot
                       (``{enabled, metrics}``; empty when the server
                       runs with the default no-op registry)
=====================  ====================================================

Error envelopes carry ``{code, message}``.  Codes map both directions
onto the :mod:`repro.errors` hierarchy: the server derives a code from
the exception it caught (most-specific class wins), and the client
re-raises the mapped class — so a :class:`~repro.errors.MissingCommitment`
thrown inside the server surfaces as a ``MissingCommitment`` at the
caller, with :class:`~repro.errors.RemoteError` as the fallback for
codes without a message-only constructor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..errors import (
    AdmissionRejected,
    ChainError,
    FrameTooLarge,
    GuestAbort,
    IntegrityError,
    MissingCommitment,
    PoolShutdown,
    ProofError,
    ProtocolError,
    QueryError,
    QuerySyntaxError,
    RemoteError,
    ReproError,
    RequestTimeout,
    SerializationError,
    StorageError,
    VerificationError,
)
from ..serialization import decode, encode

PROTOCOL_VERSION = 1

_ENVELOPE_TYPES = ("req", "ok", "err")


class MessageKind(str, enum.Enum):
    """Request kinds a server dispatches on."""

    HEALTH = "health"
    COMMIT_WINDOW = "commit-window"
    GET_BULLETIN = "get-bulletin"
    RUN_ROUND = "run-round"
    QUERY = "query"
    FETCH_RECEIPT_CHAIN = "fetch-receipt-chain"
    STATUS = "status"
    METRICS = "metrics"


REQUEST_KINDS = frozenset(kind.value for kind in MessageKind)


class WorkerMessageKind(str, enum.Enum):
    """Request kinds a cluster *worker daemon* dispatches on.

    The prover-facing kinds above serve verifiers and routers; these
    serve exactly one caller — the cluster dispatcher inside a remote
    :class:`~repro.engine.pool.ProverPool`:

    =================  =====================================================
    ``work-pull``      ``{job, lease, lease_ms, capture_obs?}`` → the worker
                       accepts the :class:`~repro.engine.jobs.ProofJob`
                       under the caller-chosen lease id and starts proving
                       in the background; the ack ``{accepted, lease,
                       duplicate}`` returns immediately (``duplicate`` when
                       the lease was already held — re-sends are idempotent)
    ``work-result``    ``{lease}`` → ``{state: "running"}``,
                       ``{state: "done", result}``, ``{state: "failed",
                       code, message}``, or ``{state: "unknown"}`` when the
                       worker never saw (or already evicted) the lease
    ``work-health``    ``{}`` → liveness probe: pool snapshot, lease count,
                       uptime — the dispatcher's quarantine/reinstate signal
    =================  =====================================================
    """

    WORK_PULL = "work-pull"
    WORK_RESULT = "work-result"
    WORK_HEALTH = "work-health"


WORKER_KINDS = frozenset(kind.value for kind in WorkerMessageKind)


@dataclass(frozen=True)
class Envelope:
    """One decoded wire message."""

    type: str  # "req" | "ok" | "err"
    request_id: int
    kind: str
    body: dict[str, Any]

    def to_bytes(self) -> bytes:
        return encode({
            "v": PROTOCOL_VERSION,
            "t": self.type,
            "id": self.request_id,
            "k": self.kind,
            "b": self.body,
        })

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Envelope":
        try:
            wire = decode(payload)
        except SerializationError as exc:
            raise ProtocolError(
                f"envelope is not canonically encoded: {exc}") from exc
        if not isinstance(wire, dict):
            raise ProtocolError("envelope must decode to a dict")
        missing = {"v", "t", "id", "k", "b"} - set(wire)
        if missing:
            raise ProtocolError(
                f"envelope missing fields: {sorted(missing)}")
        if wire["v"] != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {wire['v']!r} "
                f"(this side speaks {PROTOCOL_VERSION})")
        if wire["t"] not in _ENVELOPE_TYPES:
            raise ProtocolError(f"unknown envelope type {wire['t']!r}")
        if not isinstance(wire["id"], int) or wire["id"] < 0:
            raise ProtocolError("envelope id must be a non-negative int")
        if not isinstance(wire["k"], str):
            raise ProtocolError("envelope kind must be a string")
        if not isinstance(wire["b"], dict):
            raise ProtocolError("envelope body must be a dict")
        return cls(type=wire["t"], request_id=wire["id"],
                   kind=wire["k"], body=wire["b"])


def request(request_id: int, kind: MessageKind | str,
            body: dict[str, Any] | None = None) -> Envelope:
    kind = kind.value if isinstance(kind, MessageKind) else kind
    return Envelope("req", request_id, kind, body or {})


def ok_response(request_id: int, kind: str,
                body: dict[str, Any]) -> Envelope:
    return Envelope("ok", request_id, kind, body)


def error_response(request_id: int, kind: str, code: str,
                   message: str) -> Envelope:
    return Envelope("err", request_id, kind,
                    {"code": code, "message": message})


# -- error-code registry -----------------------------------------------------

# Order matters: the first entry whose class matches (isinstance) wins,
# so subclasses must precede their parents.
_CODE_TABLE: tuple[tuple[str, type[ReproError]], ...] = (
    ("admission-rejected", AdmissionRejected),
    ("missing-commitment", MissingCommitment),
    ("integrity", IntegrityError),
    ("query-syntax", QuerySyntaxError),
    ("query", QueryError),
    ("chain", ChainError),
    ("guest-abort", GuestAbort),
    ("verification", VerificationError),
    ("pool-shutdown", PoolShutdown),
    ("proof", ProofError),
    ("storage", StorageError),
    ("frame-too-large", FrameTooLarge),
    ("timeout", RequestTimeout),
    ("bad-request", ProtocolError),
    ("serialization", SerializationError),
)

_CODE_TO_CLASS = dict(_CODE_TABLE)

INTERNAL_ERROR = "internal"


def error_code_for(exc: BaseException) -> str:
    """The wire error code for a server-side exception."""
    for code, cls in _CODE_TABLE:
        if isinstance(exc, cls):
            return code
    return INTERNAL_ERROR


def raise_remote(code: str, message: str) -> None:
    """Re-raise a server error envelope client-side, typed.

    Known codes raise the mapped :mod:`repro.errors` class (they all
    take a single message argument); unknown or internal codes raise
    :class:`~repro.errors.RemoteError`.
    """
    cls = _CODE_TO_CLASS.get(code)
    if cls is not None:
        raise cls(f"remote: {message}")
    raise RemoteError(code, message)
