"""Asyncio prover server: the network face of a :class:`ProverService`.

Serves the three roles of Figure 1 over one TCP port: routers publish
window commitments (``commit-window``) and trigger aggregation rounds
(``run-round``); clients fetch the bulletin and receipt chain and issue
proven queries.  The server owns nothing new — it wraps an existing
``ProverService`` and its ``BulletinBoard`` — so everything the
in-process API guarantees (append-only bulletin, chained rounds,
deterministic query receipts) holds identically over the wire.

Concurrency model:

* one asyncio task per connection, capped by ``max_connections``
  (excess connections queue on a semaphore — accept-side backpressure);
* per-connection **idle timeout**: a client that goes quiet (or
  dribbles a frame slower than the deadline) is disconnected, so slow
  clients cannot pin connections;
* per-request **timeout**: dispatch runs under ``asyncio.wait_for``;
* prover work (aggregation, query proving) is CPU-bound Python, so it
  runs in the default executor — the event loop stays responsive for
  health checks while a round is proving — with a lock serializing the
  state-mutating kinds (``run-round``); queries are pure + cached and
  run unlocked;
* responses are written with ``drain()`` so a client that stops reading
  stalls only its own task (write-side backpressure).
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Any, Callable

from ..commitments import Commitment
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..errors import (
    FrameError,
    NetworkError,
    ProtocolError,
    ReproError,
)
from ..qserve.service import env_qserve_batch
from ..serialization import query_response_to_wire
from .framing import (
    DEFAULT_MAX_FRAME_SIZE,
    encode_frame,
    read_frame,
    write_frame,
)
from .messages import (
    INTERNAL_ERROR,
    REQUEST_KINDS,
    Envelope,
    MessageKind,
    error_code_for,
    error_response,
    ok_response,
)

logger = logging.getLogger(__name__)


class ProverServer:
    """Serve a :class:`~repro.core.prover_service.ProverService` over TCP."""

    def __init__(self, service: Any, host: str = "127.0.0.1",
                 port: int = 0, *,
                 daemon: Any = None,
                 qserve: Any = None,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
                 request_timeout: float = 60.0,
                 idle_timeout: float = 30.0,
                 max_connections: int = 64) -> None:
        self.service = service
        self.bulletin = service.bulletin
        self.daemon = daemon  # optional AggregationDaemon for `status`
        # The multi-tenant serving layer is opt-in: pass a configured
        # QueryService (``serve --max-inflight/--tenant-rate``), or set
        # REPRO_QSERVE_BATCH=1 to get a default one.  Without it,
        # queries run one-per-request on the executor as before.
        if qserve is None and env_qserve_batch():
            from ..qserve import QueryService
            qserve = QueryService(service)
        self.qserve = qserve
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.max_frame_size = max_frame_size
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        self.requests_served = 0
        self.errors_returned = 0
        self._server: asyncio.base_events.Server | None = None
        self._round_lock: asyncio.Lock | None = None
        self._conn_slots: asyncio.Semaphore | None = None
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ProtocolError("server already started")
        self._round_lock = asyncio.Lock()
        self._conn_slots = asyncio.Semaphore(self.max_connections)
        if self.qserve is not None:
            await self.qserve.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("prover server listening on %s:%d", self.host,
                    self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self.qserve is not None:
            await self.qserve.stop()

    # Background-thread runner: lets synchronous code (tests, examples,
    # benchmarks) host a live server without owning an event loop.

    def start_background(self) -> "ProverServer":
        """Start the server on a daemon thread; returns once bound."""
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-prover-server")
        self._thread.start()
        started.wait(timeout=10)
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self

    def stop_background(self) -> None:
        """Stop a server started with :meth:`start_background`."""
        loop, thread = self._thread_loop, self._thread
        if loop is None or thread is None:
            return

        async def shut_down() -> None:
            await self.stop()
            # Cancel lingering connection tasks so the loop drains
            # cleanly instead of abandoning coroutines mid-await.
            tasks = [t for t in asyncio.all_tasks()
                     if t is not asyncio.current_task()]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        future = asyncio.run_coroutine_threadsafe(shut_down(), loop)
        try:
            future.result(timeout=10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            self._thread = None
            self._thread_loop = None

    def __enter__(self) -> "ProverServer":
        return self.start_background()

    def __exit__(self, *exc_info: object) -> None:
        self.stop_background()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        assert self._conn_slots is not None
        peer = writer.get_extra_info("peername")
        connections = obs.registry().gauge(
            obs_names.NET_SERVER_CONNECTIONS)
        async with self._conn_slots:
            connections.inc()
            try:
                await self._serve_connection(reader, writer)
            except (ConnectionResetError, BrokenPipeError):
                pass  # peer vanished; nothing to tell it
            except Exception:
                logger.exception("connection %s crashed", peer)
            finally:
                connections.dec()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                payload = await asyncio.wait_for(
                    read_frame(reader, self.max_frame_size),
                    timeout=self.idle_timeout)
            except asyncio.TimeoutError:
                logger.debug("disconnecting idle/slow client")
                return
            except (FrameError, ProtocolError) as exc:
                # Unframeable input: report once, then hang up — there
                # is no frame boundary left to resynchronize on.
                await self._try_send(
                    writer, error_response(0, "error",
                                           error_code_for(exc),
                                           str(exc)))
                return
            if payload is None:
                return  # clean EOF
            registry = obs.registry()
            registry.counter(obs_names.NET_SERVER_BYTES,
                             ("direction",)).inc(len(payload),
                                                 direction="in")
            start = time.perf_counter()
            with obs.tracer().span(
                    obs_names.SPAN_NET_SERVER_REQUEST) as span:
                response = await self._process(payload)
                span.set("kind", response.kind)
                span.set("status", response.type)
            status = "ok" if response.type == "ok" else "err"
            registry.counter(obs_names.NET_SERVER_REQUESTS,
                             ("kind", "status")).inc(
                kind=response.kind, status=status)
            registry.histogram(obs_names.NET_SERVER_SECONDS,
                               ("kind",)).observe(
                time.perf_counter() - start, kind=response.kind)
            self.requests_served += 1
            if response.type == "err":
                self.errors_returned += 1
                registry.counter(obs_names.NET_SERVER_ERRORS,
                                 ("kind", "code")).inc(
                    kind=response.kind,
                    code=str(response.body.get("code", "unknown")))
            out_bytes = response.to_bytes()
            registry.counter(obs_names.NET_SERVER_BYTES,
                             ("direction",)).inc(len(out_bytes),
                                                 direction="out")
            try:
                await asyncio.wait_for(
                    write_frame(writer, out_bytes,
                                self.max_frame_size),
                    timeout=self.idle_timeout)
            except asyncio.TimeoutError:
                logger.debug("disconnecting client that stopped "
                             "reading")
                return

    async def _try_send(self, writer: asyncio.StreamWriter,
                        envelope: Envelope) -> None:
        try:
            writer.write(encode_frame(envelope.to_bytes(),
                                      self.max_frame_size))
            await asyncio.wait_for(writer.drain(),
                                   timeout=self.idle_timeout)
        except (OSError, asyncio.TimeoutError):
            pass

    async def _process(self, payload: bytes) -> Envelope:
        try:
            envelope = Envelope.from_bytes(payload)
        except ReproError as exc:
            return error_response(0, "error", error_code_for(exc),
                                  str(exc))
        if envelope.type != "req":
            return error_response(envelope.request_id, envelope.kind,
                                  "bad-request",
                                  f"expected a request envelope, got "
                                  f"{envelope.type!r}")
        if envelope.kind not in REQUEST_KINDS:
            return error_response(envelope.request_id, envelope.kind,
                                  "bad-request",
                                  f"unknown request kind "
                                  f"{envelope.kind!r}")
        try:
            body = await asyncio.wait_for(
                self._dispatch(envelope.kind, envelope.body),
                timeout=self.request_timeout)
        except asyncio.TimeoutError:
            return error_response(
                envelope.request_id, envelope.kind, "timeout",
                f"request exceeded the {self.request_timeout}s "
                "server deadline")
        except NetworkError as exc:
            return error_response(envelope.request_id, envelope.kind,
                                  error_code_for(exc), str(exc))
        except ReproError as exc:
            logger.info("request %s failed: %s", envelope.kind, exc)
            return error_response(envelope.request_id, envelope.kind,
                                  error_code_for(exc), str(exc))
        except Exception as exc:
            logger.exception("internal error serving %s",
                             envelope.kind)
            return error_response(envelope.request_id, envelope.kind,
                                  INTERNAL_ERROR,
                                  f"{type(exc).__name__}: {exc}")
        return ok_response(envelope.request_id, envelope.kind, body)

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, kind: str,
                        body: dict[str, Any]) -> dict[str, Any]:
        if kind == MessageKind.HEALTH.value:
            return self._handle_health()
        if kind == MessageKind.STATUS.value:
            return self._handle_status()
        if kind == MessageKind.METRICS.value:
            return obs.metrics_snapshot()
        if kind == MessageKind.GET_BULLETIN.value:
            return self._handle_get_bulletin()
        if kind == MessageKind.COMMIT_WINDOW.value:
            return self._handle_commit_window(body)
        if kind == MessageKind.FETCH_RECEIPT_CHAIN.value:
            return await self._in_executor(
                self._handle_fetch_receipt_chain)
        if kind == MessageKind.RUN_ROUND.value:
            assert self._round_lock is not None
            async with self._round_lock:
                return await self._in_executor(
                    lambda: self._handle_run_round(body))
        if kind == MessageKind.QUERY.value:
            if self.qserve is not None:
                return await self._handle_query_qserve(body)
            return await self._in_executor(
                lambda: self._handle_query(body))
        raise ProtocolError(f"unknown request kind {kind!r}")

    @staticmethod
    async def _in_executor(fn: Callable[[], dict[str, Any]]
                           ) -> dict[str, Any]:
        return await asyncio.get_running_loop().run_in_executor(
            None, fn)

    def _handle_health(self) -> dict[str, Any]:
        status = self.service.status()
        status.update({
            "status": "ok",
            "commitments": len(self.bulletin),
            "requests_served": self.requests_served,
            "errors_returned": self.errors_returned,
        })
        return status

    def _handle_status(self) -> dict[str, Any]:
        """Service status plus the supervised daemon's health view."""
        return {
            "service": self.service.status(),
            "daemon": (self.daemon.health()
                       if self.daemon is not None else None),
            "qserve": (self.qserve.stats()
                       if self.qserve is not None else None),
        }

    def _handle_get_bulletin(self) -> dict[str, Any]:
        return {"commitments": [c.to_wire() for c in self.bulletin]}

    def _handle_commit_window(self,
                              body: dict[str, Any]) -> dict[str, Any]:
        wire = _require(body, "commitment", dict)
        try:
            commitment = Commitment.from_wire(wire)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed commitment: {exc}") from exc
        self.bulletin.publish(commitment)
        return {"published": True, "total": len(self.bulletin)}

    def _handle_run_round(self,
                          body: dict[str, Any]) -> dict[str, Any]:
        windows = body.get("windows")
        if windows is None:
            results = self.service.aggregate_all_committed()
        else:
            if (not isinstance(windows, list)
                    or not all(isinstance(w, int) for w in windows)):
                raise ProtocolError("windows must be a list of ints")
            results = [self.service.aggregate_windows(windows)]
        return {"rounds": [{
            "round": r.round,
            "new_root": r.new_root,
            "records": r.record_count,
            "flows": len(r.new_state),
        } for r in results]}

    def _handle_query(self, body: dict[str, Any]) -> dict[str, Any]:
        sql = _require(body, "sql", str)
        round_index = body.get("round")
        if round_index is not None and not isinstance(round_index, int):
            raise ProtocolError("round must be an int or None")
        response = self.service.answer_query(sql,
                                             round_index=round_index)
        return {"response": query_response_to_wire(response)}

    async def _handle_query_qserve(self,
                                   body: dict[str, Any]
                                   ) -> dict[str, Any]:
        """QUERY through the multi-tenant serving layer.

        Unlike :meth:`_handle_query` this never blocks an executor
        thread per request: the request parks on the admission queue
        and only the dispatcher's batched proving occupies one.
        Backpressure surfaces as the typed ``admission-rejected`` wire
        code via the normal error mapping in ``_process``.
        """
        sql = _require(body, "sql", str)
        round_index = body.get("round")
        if round_index is not None and not isinstance(round_index, int):
            raise ProtocolError("round must be an int or None")
        tenant = body.get("tenant", "default")
        if tenant is None:
            tenant = "default"
        if not isinstance(tenant, str):
            raise ProtocolError("tenant must be a string")
        response = await self.qserve.submit(sql, round_index,
                                            tenant=tenant)
        return {"response": query_response_to_wire(response)}

    def _handle_fetch_receipt_chain(self) -> dict[str, Any]:
        return {"receipts": [r.to_wire()
                             for r in self.service.chain.receipts()]}


def _require(body: dict[str, Any], key: str, expected: type) -> Any:
    value = body.get(key)
    if not isinstance(value, expected):
        raise ProtocolError(
            f"request body field {key!r} must be "
            f"{expected.__name__}, got {type(value).__name__}")
    return value
