"""Retry with exponential backoff and jitter for client stubs.

Transport-level failures (connection refused, a connection that died
mid-frame, a request deadline) are worth retrying: the server may be
restarting, a pooled connection may have gone stale, the network may
hiccup.  Protocol and application errors are not — the server answered,
the answer was an error, and sending the same request again cannot
change it.  :class:`RetryPolicy` encodes that split plus the delay
schedule; :func:`call_with_retry` runs a callable under it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from ..errors import (
    ConfigurationError,
    ConnectionFailed,
    RequestTimeout,
    RetryExhausted,
    TruncatedFrame,
)

T = TypeVar("T")

#: Errors that indicate the transport (not the request) failed.
TRANSIENT_ERRORS: tuple[type[Exception], ...] = (
    ConnectionFailed,
    TruncatedFrame,
    RequestTimeout,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full-range multiplicative jitter.

    Attempt ``n`` (0-based) sleeps ``base_delay * multiplier**n``
    before retrying, clamped to ``max_delay``, then scaled by a random
    factor in ``[1 - jitter, 1 + jitter]`` so a fleet of clients
    retrying against a restarted server doesn't stampede in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.2
    retryable: tuple[type[Exception], ...] = field(
        default=TRANSIENT_ERRORS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def delay(self, attempt: int,
              rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = min(self.base_delay * self.multiplier ** attempt,
                   self.max_delay)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = rng or random
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def delays(self, rng: random.Random | None = None
               ) -> Iterator[float]:
        """The full schedule: one delay per retry (attempts - 1)."""
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt, rng)

    def is_retryable(self, exc: Exception) -> bool:
        return isinstance(exc, self.retryable)


#: One attempt, no delays — for callers that do their own retrying.
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_retry(fn: Callable[[], T], policy: RetryPolicy,
                    rng: random.Random | None = None,
                    sleep: Callable[[float], None] = time.sleep) -> T:
    """Run ``fn`` under ``policy``.

    Non-retryable exceptions propagate immediately.  When every attempt
    fails with a retryable error, raises
    :class:`~repro.errors.RetryExhausted` with the last error chained
    as ``__cause__``.  A single-attempt policy (``max_attempts=1``)
    never retried anything, so its one failure propagates *unwrapped* —
    callers that do their own retrying (the cluster dispatcher's
    per-node failure classification) need the typed transport error,
    not a wrapper.  ``rng`` and ``sleep`` are injectable for
    deterministic tests.
    """
    last_error: Exception | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except Exception as exc:
            if not policy.is_retryable(exc):
                raise
            last_error = exc
            if attempt + 1 < policy.max_attempts:
                sleep(policy.delay(attempt, rng))
    assert last_error is not None
    if policy.max_attempts == 1:
        raise last_error
    raise RetryExhausted(policy.max_attempts, last_error) \
        from last_error
