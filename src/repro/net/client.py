"""Client stubs for the prover wire protocol.

Two roles from Figure 1 talk to the prover server:

* :class:`RouterClient` — a router (or its export pipeline) publishing
  window commitments and nudging the off-path aggregator;
* :class:`QueryClient` — a remote verifier fetching the bulletin, the
  receipt chain, and proven query answers.

Both are deliberately *synchronous* (plain blocking sockets): the
verifier side of the paper is thin client code that runs anywhere, and
a sync stub composes with the CLI, tests, and benchmarks without an
event loop.  The server side is the asyncio half.

Each client keeps a small pool of idle connections; a connection that
fails mid-request is discarded (never re-pooled) and the request is
retried on a fresh connection under the client's
:class:`~repro.net.retry.RetryPolicy` — which is what makes a server
restart invisible to callers, at the price of the retried request being
re-executed (every protocol request is idempotent: publishing is
append-only-idempotent, queries are deterministic and cached, and
``run-round`` re-execution fails loudly with an already-aggregated
error rather than double-counting).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any

from ..commitments import BulletinBoard, Commitment
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..errors import (
    ConfigurationError,
    ConnectionFailed,
    ProtocolError,
    RequestTimeout,
)
from ..serialization import query_response_from_wire
from .framing import (
    DEFAULT_MAX_FRAME_SIZE,
    read_frame_from,
    write_frame_to,
)
from .messages import Envelope, MessageKind, raise_remote, request
from .retry import RetryPolicy, call_with_retry


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Split ``"host:port"``; IPv6 hosts may be ``[bracketed]``."""
    host, sep, port_text = endpoint.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"endpoint {endpoint!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"endpoint {endpoint!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ConfigurationError(f"port {port} out of range")
    return host.strip("[]"), port


class ServiceClient:
    """Shared transport: pooling, correlation ids, retries."""

    def __init__(self, host: str, port: int | None = None, *,
                 timeout: float = 10.0,
                 retry: RetryPolicy | None = None,
                 pool_size: int = 2,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
                 rng: random.Random | None = None,
                 fault_injector: Any = None) -> None:
        if port is None:
            host, port = parse_endpoint(host)
        if pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.pool_size = pool_size
        self.max_frame_size = max_frame_size
        self._rng = rng
        # Optional repro.faults.FaultInjector; fires the net.transport
        # site at the top of every attempt (chaos tests only).
        self._fault_injector = fault_injector
        self._pool: list[socket.socket] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._closed = False

    # -- pool ---------------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        except OSError as exc:
            raise ConnectionFailed(
                f"cannot connect to {self.host}:{self.port}: "
                f"{exc}") from exc

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ConnectionFailed("client is closed")
            if self._pool:
                return self._pool.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        _quiet_close(sock)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            _quiet_close(sock)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request/response ----------------------------------------------------

    def _request(self, kind: MessageKind,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
        envelope = request(request_id, kind, body)
        kind_label = envelope.kind
        registry = obs.registry()
        attempts = 0

        def attempt() -> dict[str, Any]:
            nonlocal attempts
            attempts += 1
            registry.counter(obs_names.NET_CLIENT_ATTEMPTS,
                             ("kind",)).inc(kind=kind_label)
            if attempts > 1:
                registry.counter(obs_names.NET_CLIENT_RETRIES,
                                 ("kind",)).inc(kind=kind_label)
            if self._fault_injector is not None:
                from ..faults.plan import NET_TRANSPORT
                self._fault_injector.fire(NET_TRANSPORT)
            sock = self._checkout()
            try:
                reply = self._exchange(sock, envelope)
            except BaseException:
                _quiet_close(sock)  # never re-pool a tainted socket
                raise
            self._checkin(sock)
            return reply

        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_NET_CLIENT_REQUEST,
                               kind=kind_label) as span:
            try:
                reply = call_with_retry(attempt, self.retry,
                                        rng=self._rng)
            except Exception as exc:
                registry.counter(obs_names.NET_CLIENT_REQUESTS,
                                 ("kind", "status")).inc(
                    kind=kind_label, status="err")
                registry.counter(obs_names.NET_CLIENT_ERRORS,
                                 ("kind", "error")).inc(
                    kind=kind_label, error=type(exc).__name__)
                raise
            span.set("attempts", attempts)
        registry.counter(obs_names.NET_CLIENT_REQUESTS,
                         ("kind", "status")).inc(kind=kind_label,
                                                 status="ok")
        registry.histogram(obs_names.NET_CLIENT_SECONDS,
                           ("kind",)).observe(
            time.perf_counter() - start, kind=kind_label)
        return reply

    def _exchange(self, sock: socket.socket,
                  envelope: Envelope) -> dict[str, Any]:
        registry = obs.registry()
        try:
            data = envelope.to_bytes()
            write_frame_to(sock.sendall, data, self.max_frame_size)
            registry.counter(obs_names.NET_CLIENT_BYTES,
                             ("direction",)).inc(len(data),
                                                 direction="out")
            payload = read_frame_from(sock.recv, self.max_frame_size)
            registry.counter(obs_names.NET_CLIENT_BYTES,
                             ("direction",)).inc(len(payload),
                                                 direction="in")
        except socket.timeout as exc:
            raise RequestTimeout(
                f"no response from {self.host}:{self.port} within "
                f"{self.timeout}s") from exc
        except OSError as exc:
            raise ConnectionFailed(
                f"connection to {self.host}:{self.port} failed: "
                f"{exc}") from exc
        reply = Envelope.from_bytes(payload)
        if reply.type == "err":
            raise_remote(reply.body.get("code", "internal"),
                         str(reply.body.get("message", "")))
        if reply.type != "ok":
            raise ProtocolError(
                f"expected a response envelope, got {reply.type!r}")
        if reply.request_id != envelope.request_id:
            raise ProtocolError(
                f"response id {reply.request_id} does not match "
                f"request id {envelope.request_id}")
        if reply.kind != envelope.kind:
            raise ProtocolError(
                f"response kind {reply.kind!r} does not match "
                f"request kind {envelope.kind!r}")
        return reply.body

    # -- shared endpoints ----------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Server status snapshot (rounds, flows, counters...)."""
        return self._request(MessageKind.HEALTH)

    def fetch_status(self) -> dict[str, Any]:
        """Service status plus supervised-daemon health.

        Returns ``{"service": {...}, "daemon": {...} | None}`` —
        ``daemon`` carries the :meth:`AggregationDaemon.health` view
        (state machine, quarantined windows, retry queue) when the
        server was constructed with one.
        """
        return self._request(MessageKind.STATUS)

    def fetch_metrics(self) -> dict[str, Any]:
        """The server's observability snapshot.

        Returns ``{"enabled": bool, "metrics": {...}}``; ``metrics`` is
        the registry snapshot (empty families when the server runs with
        the default no-op registry).
        """
        return self._request(MessageKind.METRICS)

    def fetch_bulletin(self) -> BulletinBoard:
        """Rebuild the server's bulletin board from the wire."""
        body = self._request(MessageKind.GET_BULLETIN)
        board = BulletinBoard()
        for wire in body["commitments"]:
            try:
                board.publish(Commitment.from_wire(wire))
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed commitment from server: {exc}"
                ) from exc
        return board


class RouterClient(ServiceClient):
    """Router-side stub: publish commitments, drive aggregation."""

    def publish(self, commitment: Commitment) -> int:
        """Publish one window commitment; returns the board size."""
        body = self._request(MessageKind.COMMIT_WINDOW,
                             {"commitment": commitment.to_wire()})
        return body["total"]

    def publish_all(self, commitments: Any) -> int:
        """Publish an iterable of commitments (e.g. a local board);
        returns the board size after the last publish."""
        total = 0
        for commitment in commitments:
            total = self.publish(commitment)
        return total

    def run_round(self,
                  windows: list[int] | None = None
                  ) -> list[dict[str, Any]]:
        """Aggregate ``windows`` (or everything committed when None).

        Returns one summary dict per proven round:
        ``{round, new_root, records, flows}``.
        """
        body = self._request(MessageKind.RUN_ROUND,
                             {"windows": windows})
        return body["rounds"]


class QueryClient(ServiceClient):
    """Verifier-side stub: proven queries + the material to check them."""

    def query(self, sql: str,
              round_index: int | None = None,
              tenant: str | None = None) -> Any:
        """A proven :class:`~repro.core.query_proof.QueryResponse`.

        ``tenant`` identifies the caller to a server running the
        multi-tenant serving layer (admission, per-tenant rate limits);
        servers without one ignore it.  Backpressure surfaces as
        :class:`~repro.errors.AdmissionRejected`, which is *not* a
        transport error — the retry policy propagates it immediately
        and the caller decides when to come back.
        """
        body = {"sql": sql, "round": round_index}
        if tenant is not None:
            body["tenant"] = tenant
        reply = self._request(MessageKind.QUERY, body)
        return query_response_from_wire(reply["response"])

    def fetch_receipt_chain(self) -> list[Any]:
        """The server's full aggregation receipt chain."""
        from ..zkvm import Receipt
        body = self._request(MessageKind.FETCH_RECEIPT_CHAIN)
        try:
            return [Receipt.from_wire(w) for w in body["receipts"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed receipt from server: {exc}") from exc

    def verified_query(self, sql: str,
                       round_index: int | None = None,
                       tenant: str | None = None) -> tuple[Any, Any]:
        """Query, then verify entirely from fetched public material.

        Pulls the bulletin and receipt chain alongside the response and
        runs the standard client-side verification
        (:meth:`VerifierClient.verify_response`) — the remote analogue
        of ``TelemetrySystem.query``.  Returns
        ``(QueryResponse, VerifiedQuery)``.
        """
        from ..core.verifier_client import VerifierClient
        response = self.query(sql, round_index, tenant=tenant)
        verifier = VerifierClient(self.fetch_bulletin())
        verified = verifier.verify_response(response,
                                            self.fetch_receipt_chain())
        return response, verified


def _quiet_close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
