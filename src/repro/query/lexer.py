"""Tokenizer for the query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import QuerySyntaxError

KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN",
            "GROUP", "BY", "SUM", "COUNT", "AVG", "MIN", "MAX"}

_PUNCT = {"(", ")", ",", ";", "*"}
_OPERATOR_CHARS = {"=", "!", "<", ">"}
_OPERATORS = {"=", "!=", "<", "<=", ">", ">="}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize query text; raises :class:`QuerySyntaxError` on junk."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, pos))
            pos += 1
            continue
        if ch in _OPERATOR_CHARS:
            two = text[pos:pos + 2]
            if two in _OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, two, pos))
                pos += 2
            elif ch in _OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, ch, pos))
                pos += 1
            else:
                raise QuerySyntaxError(f"bad operator {two!r}", pos)
            continue
        if ch in {'"', "'"}:
            end = text.find(ch, pos + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated string literal", pos)
            tokens.append(Token(TokenType.STRING, text[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "-" and pos + 1 < length
                            and text[pos + 1].isdigit()):
            start = pos
            pos += 1
            seen_dot = False
            while pos < length and (text[pos].isdigit()
                                    or (text[pos] == "." and not seen_dot)):
                if text[pos] == ".":
                    seen_dot = True
                pos += 1
            tokens.append(Token(TokenType.NUMBER, text[start:pos], start))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (text[pos].isalnum()
                                    or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", pos)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
