"""Vectorized (numpy) predicate scans over CLog entry views.

The reference evaluator walks the predicate AST once per entry — for a
partition of tens of thousands of slots that tree walk dominates query
guest time.  This module evaluates the WHERE clause as numpy column
masks instead, then feeds only the *matching* entries through the exact
:class:`~repro.query.evaluator._Accumulator` machinery, so results —
including the order-independent ``Fraction`` sums that make partitioned
queries bit-identical — are unchanged.

Strictness over speed: the mask builder vectorizes only cases whose
numpy semantics provably match the reference evaluator's Python
semantics —

* int columns within int64 compared to int64-range int literals;
* float columns compared to float literals (or ints exactly
  representable as float64);
* str columns compared to str literals (both sides compare by unicode
  code point);

— and returns ``None`` for anything else (mixed-type columns, bools,
``PrefixMatch``, out-of-range literals, missing columns), in which case
the caller falls back to the reference loop with its exact error
behavior.  ``cost_hook`` is invoked once with the batch total instead
of once per entry; every in-tree hook charges ``env.tick`` linearly, so
metered cycle totals are identical (property-tested).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a core dependency
    _np = None

from .ast import BinaryOp, Comparison, Logical, LogicalOp, Predicate, Query
from .evaluator import (
    EntryView,
    PartialQueryResult,
    QueryResult,
    _Accumulator,
    _field_value,
    _sort_key,
)

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
# Largest int magnitude exactly representable as a float64.
_FLOAT_EXACT_INT = 1 << 53


def _build_column(entries: Sequence[EntryView],
                  name: str) -> tuple[str, Any] | None:
    """Materialize one column as ``(kind, ndarray)``; None if unsafe."""
    values = []
    append = values.append
    for entry in entries:
        try:
            append(entry[name])
        except KeyError:
            return None  # reference path raises the canonical QueryError
    has_int = has_float = has_str = False
    for value in values:
        if type(value) is int:
            if not _INT64_MIN <= value <= _INT64_MAX:
                return None
            has_int = True
        elif type(value) is float:
            has_float = True
        elif type(value) is str:
            has_str = True
        else:
            return None  # bools, None, bytes, subclasses: reference path
    if has_str:
        if has_int or has_float:
            return None
        return "str", _np.array(values)
    if has_float:
        if has_int:
            return None  # mixed exactness — keep the reference semantics
        return "float", _np.array(values, dtype=_np.float64)
    if has_int:
        return "int", _np.array(values, dtype=_np.int64)
    return None  # empty column: nothing to vectorize


def _comparison_mask(predicate: Comparison, entries: Sequence[EntryView],
                     columns: dict[str, Any]) -> Any | None:
    name = predicate.field.name
    if name not in columns:
        columns[name] = _build_column(entries, name)
    column = columns[name]
    if column is None:
        return None
    kind, array = column
    literal = predicate.value.value
    if isinstance(literal, bool):
        return None
    if kind == "int":
        if not isinstance(literal, int) \
                or not _INT64_MIN <= literal <= _INT64_MAX:
            return None
    elif kind == "float":
        if isinstance(literal, int):
            if not -_FLOAT_EXACT_INT <= literal <= _FLOAT_EXACT_INT:
                return None
            literal = float(literal)
        elif not isinstance(literal, float):
            return None
        if math.isnan(literal):
            # NaN comparisons agree between numpy and Python, but numpy
            # emits RuntimeWarnings; keep the reference path quiet-clean.
            return None
    else:  # str
        if not isinstance(literal, str):
            return None
    op = predicate.op
    if op is BinaryOp.EQ:
        return array == literal
    if op is BinaryOp.NE:
        return array != literal
    if op is BinaryOp.LT:
        return array < literal
    if op is BinaryOp.LE:
        return array <= literal
    if op is BinaryOp.GT:
        return array > literal
    if op is BinaryOp.GE:
        return array >= literal
    return None


def _predicate_mask(predicate: Predicate | None,
                    entries: Sequence[EntryView],
                    columns: dict[str, Any]) -> Any | None:
    """Boolean mask for ``predicate``, or None if not vectorizable."""
    if predicate is None:
        return _np.ones(len(entries), dtype=bool)
    if isinstance(predicate, Comparison):
        return _comparison_mask(predicate, entries, columns)
    if isinstance(predicate, Logical):
        masks = []
        for operand in predicate.operands:
            mask = _predicate_mask(operand, entries, columns)
            if mask is None:
                return None
            masks.append(mask)
        if predicate.op is LogicalOp.AND:
            return _np.logical_and.reduce(masks)
        if predicate.op is LogicalOp.OR:
            return _np.logical_or.reduce(masks)
        return ~masks[0]
    return None  # PrefixMatch (CIDR membership) stays on the reference path


def _matched_indices(query: Query, entries: Sequence[EntryView],
                     cost_hook: Callable[[int], None] | None,
                     columns: dict[str, Any]) -> Any | None:
    if _np is None or not isinstance(entries, (list, tuple)):
        return None
    mask = _predicate_mask(query.where, entries, columns)
    if mask is None:
        return None
    scanned = len(entries)
    if cost_hook is not None and scanned:
        # One batch charge; in-tree hooks are linear (`env.tick(n * k)`),
        # so the metered total equals `scanned` per-entry invocations.
        cost_hook(query.node_count * scanned)
    return _np.nonzero(mask)[0]


def _grouped_buckets(query: Query, entries: Sequence[EntryView],
                     indices: Any,
                     columns: dict[str, Any]
                     ) -> list[tuple[Any, list[_Accumulator]]] | None:
    """Vectorized GROUP BY: ``(key, accumulators)`` in key-sorted order.

    Bucket *membership* — the per-row key extraction, dict insert and
    final sort the reference loop does — collapses into one
    ``np.unique(..., return_inverse=True)`` over the group column plus a
    stable argsort, reusing any column the WHERE mask already built.
    Only the matched rows of each bucket still walk through
    ``_Accumulator.feed`` (their Fraction sums are what keeps
    partitioned results bit-identical); COUNT(*)-only queries skip even
    that.  Returns ``None`` when the group column is not safely
    vectorizable — float columns stay on the reference loop because
    ``np.unique`` totally orders NaN while ``sorted`` raises — and the
    caller must then fall back to ``_grouped_buckets_reference``, NOT
    bail to the caller's reference path: ``cost_hook`` has already been
    charged for the scan by the time grouping starts.
    """
    group_field = query.group_by.name
    if group_field not in columns:
        columns[group_field] = _build_column(entries, group_field)
    column = columns[group_field]
    if column is None:
        return None
    kind, array = column
    if kind == "float":
        return None
    uniques, inverse = _np.unique(array[indices], return_inverse=True)
    order = _np.argsort(inverse, kind="stable")
    splits = _np.flatnonzero(_np.diff(inverse[order])) + 1
    members = _np.split(indices[order], splits)
    # `.tolist()` yields native int/str keys — identical to the
    # reference `_field_value` keys, so journals stay byte-identical;
    # np.unique's ascending order equals `sorted(..., key=_sort_key)`
    # for a homogeneous int64 or str column.
    count_only = all(a.field is None for a in query.aggregates)
    grouped: list[tuple[Any, list[_Accumulator]]] = []
    for key, bucket_indices in zip(uniques.tolist(), members):
        accumulators = [_Accumulator(a) for a in query.aggregates]
        if count_only:
            for accumulator in accumulators:
                accumulator.count = int(bucket_indices.shape[0])
        else:
            for index in bucket_indices:
                entry = entries[index]
                for accumulator in accumulators:
                    accumulator.feed(entry)
        grouped.append((key, accumulators))
    return grouped


def _grouped_buckets_reference(query: Query,
                               entries: Sequence[EntryView],
                               indices: Any
                               ) -> list[tuple[Any, list[_Accumulator]]]:
    """The exact reference bucket loop, over pre-matched indices."""
    group_field = query.group_by.name
    buckets: dict[Any, list[_Accumulator]] = {}
    for index in indices:
        entry = entries[index]
        key = _field_value(entry, group_field)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = [_Accumulator(a) for a in query.aggregates]
            buckets[key] = bucket
        for accumulator in bucket:
            accumulator.feed(entry)
    return [(key, buckets[key])
            for key in sorted(buckets, key=_sort_key)]


def try_evaluate(query: Query, entries: Sequence[EntryView],
                 cost_hook: Callable[[int], None] | None = None,
                 ) -> QueryResult | None:
    """Vectorized :func:`~repro.query.evaluator.evaluate`; None = bail."""
    columns: dict[str, Any] = {}
    indices = _matched_indices(query, entries, cost_hook, columns)
    if indices is None:
        return None
    matched = int(indices.shape[0])
    scanned = len(entries)
    if query.group_by is None:
        accumulators = [_Accumulator(a) for a in query.aggregates]
        if all(a.aggregate.field is None for a in accumulators):
            for accumulator in accumulators:  # COUNT(*)-only fast path
                accumulator.count = matched
        else:
            for index in indices:
                entry = entries[index]
                for accumulator in accumulators:
                    accumulator.feed(entry)
        return QueryResult(
            labels=query.labels,
            values=tuple(a.result() for a in accumulators),
            matched=matched,
            scanned=scanned,
        )
    grouped = _grouped_buckets(query, entries, indices, columns)
    if grouped is None:
        grouped = _grouped_buckets_reference(query, entries, indices)
    return QueryResult(
        labels=query.labels,
        values=(),
        matched=matched,
        scanned=scanned,
        group_by=query.group_by.name,
        groups=tuple(
            (key, tuple(a.result() for a in accumulators))
            for key, accumulators in grouped
        ),
    )


def try_evaluate_partial(query: Query, entries: Sequence[EntryView],
                         cost_hook: Callable[[int], None] | None = None,
                         ) -> PartialQueryResult | None:
    """Vectorized :func:`~repro.query.evaluator.evaluate_partial`."""
    columns: dict[str, Any] = {}
    indices = _matched_indices(query, entries, cost_hook, columns)
    if indices is None:
        return None
    matched = int(indices.shape[0])
    scanned = len(entries)
    if query.group_by is None:
        accumulators = [_Accumulator(a) for a in query.aggregates]
        if all(a.aggregate.field is None for a in accumulators):
            for accumulator in accumulators:
                accumulator.count = matched
        else:
            for index in indices:
                entry = entries[index]
                for accumulator in accumulators:
                    accumulator.feed(entry)
        return PartialQueryResult(
            matched=matched,
            scanned=scanned,
            group_by=None,
            states=tuple(a.state() for a in accumulators),
        )
    grouped = _grouped_buckets(query, entries, indices, columns)
    if grouped is None:
        grouped = _grouped_buckets_reference(query, entries, indices)
    return PartialQueryResult(
        matched=matched,
        scanned=scanned,
        group_by=query.group_by.name,
        states=(),
        group_states=tuple(
            (key, tuple(a.state() for a in accumulators))
            for key, accumulators in grouped
        ),
    )
