"""Recursive-descent parser for the query language.

Grammar::

    query      := SELECT agg_list FROM ident [WHERE or_expr]
                  [GROUP BY ident] [';']
    agg_list   := aggregate (',' aggregate)*
    aggregate  := FUNC '(' (ident | '*') ')'
    or_expr    := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | primary
    primary    := '(' or_expr ')' | ident cmp_tail
    cmp_tail   := operator literal | [NOT] IN string
    literal    := number | string

Column names are validated against the CLog schema at parse time.
"""

from __future__ import annotations

import ipaddress

from ..errors import QuerySyntaxError
from .ast import (
    AggFunc,
    Aggregate,
    BinaryOp,
    Comparison,
    FieldRef,
    Literal,
    Logical,
    LogicalOp,
    Predicate,
    PrefixMatch,
    Query,
)
from .fields import QUERYABLE_FIELDS
from .lexer import Token, TokenType, tokenize

_AGG_NAMES = {f.value for f in AggFunc}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType,
                text: str | None = None) -> Token:
        token = self._peek()
        if token.type is not token_type or \
                (text is not None and token.text != text):
            want = text or token_type.value
            raise QuerySyntaxError(
                f"expected {want}, found {token.text or 'end of input'!r}",
                token.position)
        return self._advance()

    def _accept(self, token_type: TokenType,
                text: str | None = None) -> Token | None:
        token = self._peek()
        if token.type is token_type and (text is None
                                         or token.text == text):
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> Query:
        self._expect(TokenType.KEYWORD, "SELECT")
        aggregates = [self._aggregate()]
        while self._accept(TokenType.PUNCT, ","):
            aggregates.append(self._aggregate())
        self._expect(TokenType.KEYWORD, "FROM")
        source = self._expect(TokenType.IDENT).text
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._or_expr()
        group_by = None
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by = self._field()
        self._accept(TokenType.PUNCT, ";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise QuerySyntaxError(
                f"unexpected trailing input {token.text!r}", token.position)
        return Query(aggregates=tuple(aggregates), where=where,
                     source=source, group_by=group_by)

    def _aggregate(self) -> Aggregate:
        token = self._peek()
        if token.type is not TokenType.KEYWORD \
                or token.text not in _AGG_NAMES:
            raise QuerySyntaxError(
                f"expected aggregate function, found {token.text!r}",
                token.position)
        self._advance()
        func = AggFunc(token.text)
        self._expect(TokenType.PUNCT, "(")
        if self._accept(TokenType.PUNCT, "*"):
            if func is not AggFunc.COUNT:
                raise QuerySyntaxError(
                    f"{func.value}(*) is not valid; only COUNT(*)",
                    token.position)
            field = None
        else:
            field = self._field()
        self._expect(TokenType.PUNCT, ")")
        return Aggregate(func=func, field=field)

    def _field(self) -> FieldRef:
        token = self._expect(TokenType.IDENT)
        if token.text not in QUERYABLE_FIELDS:
            raise QuerySyntaxError(
                f"unknown column {token.text!r}", token.position)
        return FieldRef(token.text)

    def _or_expr(self) -> Predicate:
        operands = [self._and_expr()]
        while self._accept(TokenType.KEYWORD, "OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Logical(op=LogicalOp.OR, operands=tuple(operands))

    def _and_expr(self) -> Predicate:
        operands = [self._unary()]
        while self._accept(TokenType.KEYWORD, "AND"):
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return Logical(op=LogicalOp.AND, operands=tuple(operands))

    def _unary(self) -> Predicate:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return Logical(op=LogicalOp.NOT,
                           operands=(self._unary(),))
        return self._primary()

    def _primary(self) -> Predicate:
        if self._accept(TokenType.PUNCT, "("):
            inner = self._or_expr()
            self._expect(TokenType.PUNCT, ")")
            return inner
        field = self._field()
        negated = bool(self._accept(TokenType.KEYWORD, "NOT"))
        if self._accept(TokenType.KEYWORD, "IN"):
            return self._prefix_match(field, negated)
        if negated:
            token = self._peek()
            raise QuerySyntaxError("NOT must be followed by IN here",
                                   token.position)
        op_token = self._expect(TokenType.OPERATOR)
        return Comparison(op=BinaryOp(op_token.text), field=field,
                          value=self._literal())

    def _prefix_match(self, field: FieldRef, negated: bool) -> PrefixMatch:
        token = self._expect(TokenType.STRING)
        try:
            ipaddress.IPv4Network(token.text)
        except ValueError as exc:
            raise QuerySyntaxError(
                f"invalid CIDR prefix {token.text!r}",
                token.position) from exc
        return PrefixMatch(field=field, prefix=token.text, negated=negated)

    def _literal(self) -> Literal:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        raise QuerySyntaxError(
            f"expected literal, found {token.text or 'end of input'!r}",
            token.position)


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`~repro.query.ast.Query`."""
    return _Parser(tokenize(text)).parse()
