"""The queryable schema of a CLog entry.

Each field maps to how it is extracted from an entry's *query view*
(a plain ``str -> int|str|float`` dict produced by
:meth:`repro.core.clog.CLogEntry.query_view`).  Keeping the schema in one
table lets the parser reject unknown columns at parse time rather than
deep inside the guest.
"""

from __future__ import annotations

import enum


class FieldKind(enum.Enum):
    INT = "int"
    FLOAT = "float"
    ADDR = "addr"   # IPv4 dotted string; comparable for equality / CIDR
    STR = "str"


# column name -> kind
QUERYABLE_FIELDS: dict[str, FieldKind] = {
    "src_ip": FieldKind.ADDR,
    "dst_ip": FieldKind.ADDR,
    # Derived /16 of the source address ("10.1.0.0/16"): content
    # providers are prefix-assigned, so GROUP BY src_net16 gives
    # per-provider aggregation in one query (the neutrality audit).
    "src_net16": FieldKind.STR,
    "src_port": FieldKind.INT,
    "dst_port": FieldKind.INT,
    "protocol": FieldKind.INT,
    "packets": FieldKind.INT,
    "octets": FieldKind.INT,
    "lost_packets": FieldKind.INT,
    "hop_count": FieldKind.INT,
    "record_count": FieldKind.INT,
    "router_count": FieldKind.INT,
    "first_ms": FieldKind.INT,
    "last_ms": FieldKind.INT,
    "rtt_avg_us": FieldKind.FLOAT,
    "jitter_avg_us": FieldKind.FLOAT,
    "loss_rate": FieldKind.FLOAT,
    "throughput_bps": FieldKind.FLOAT,
}
