"""SQL-subset query language over the aggregated CLogs (§4.2, §6).

The paper's example query::

    SELECT SUM(hop_count) FROM clogs
    WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9";

This package provides the lexer, recursive-descent parser, typed AST and
evaluator for that language: aggregate functions (``SUM``, ``COUNT``,
``AVG``, ``MIN``, ``MAX``), conjunctions/disjunctions of comparisons,
and an ``IN`` operator over CIDR prefixes (needed by the neutrality
scenario to group flows by content-provider prefix).  The evaluator runs
both on the host (planning, tests) and *inside the zkVM guest*, where an
optional cost hook charges cycles per evaluated node.
"""

from .ast import (
    Aggregate,
    AggFunc,
    BinaryOp,
    Comparison,
    FieldRef,
    Literal,
    LogicalOp,
    PrefixMatch,
    Query,
)
from .evaluator import (
    PartialQueryResult,
    QueryResult,
    evaluate,
    evaluate_partial,
    merge_partials,
)
from .fields import QUERYABLE_FIELDS
from .parser import parse_query

__all__ = [
    "AggFunc",
    "Aggregate",
    "BinaryOp",
    "Comparison",
    "FieldRef",
    "Literal",
    "LogicalOp",
    "PartialQueryResult",
    "PrefixMatch",
    "QUERYABLE_FIELDS",
    "Query",
    "QueryResult",
    "evaluate",
    "evaluate_partial",
    "merge_partials",
    "parse_query",
]
