"""Typed AST for the query language.

Every node supports ``to_wire``/``from_wire`` (canonical dict form) so a
parsed query can be shipped into the zkVM guest as data, and
``node_count`` so the evaluator can charge cycles proportionally to the
work per entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Union

from ..errors import QueryError


class AggFunc(enum.Enum):
    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


class BinaryOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class LogicalOp(enum.Enum):
    AND = "AND"
    OR = "OR"
    NOT = "NOT"


@dataclass(frozen=True)
class FieldRef:
    """A column reference."""

    name: str

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "field", "name": self.name}

    @property
    def node_count(self) -> int:
        return 1


@dataclass(frozen=True)
class Literal:
    """A constant (int, float, or string)."""

    value: int | float | str

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "literal", "value": self.value}

    @property
    def node_count(self) -> int:
        return 1


@dataclass(frozen=True)
class Comparison:
    """``field <op> literal``."""

    op: BinaryOp
    field: FieldRef
    value: Literal

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "cmp", "op": self.op.value,
                "field": self.field.to_wire(),
                "value": self.value.to_wire()}

    @property
    def node_count(self) -> int:
        return 1 + self.field.node_count + self.value.node_count


@dataclass(frozen=True)
class PrefixMatch:
    """``field IN "10.1.0.0/16"`` — CIDR membership."""

    field: FieldRef
    prefix: str
    negated: bool = False

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "prefix", "field": self.field.to_wire(),
                "prefix": self.prefix, "negated": self.negated}

    @property
    def node_count(self) -> int:
        return 2 + self.field.node_count


@dataclass(frozen=True)
class Logical:
    """``a AND b``, ``a OR b`` or ``NOT a``."""

    op: LogicalOp
    operands: tuple["Predicate", ...]

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "logical", "op": self.op.value,
                "operands": [o.to_wire() for o in self.operands]}

    @property
    def node_count(self) -> int:
        return 1 + sum(o.node_count for o in self.operands)


Predicate = Union[Comparison, PrefixMatch, Logical]


@dataclass(frozen=True)
class Aggregate:
    """One select-list term: ``FUNC(field)`` or ``COUNT(*)``."""

    func: AggFunc
    field: FieldRef | None  # None only for COUNT(*)

    def __post_init__(self) -> None:
        if self.field is None and self.func is not AggFunc.COUNT:
            raise QueryError(f"{self.func.value} requires a column")

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "agg", "func": self.func.value,
                "field": self.field.to_wire() if self.field else None}

    @property
    def label(self) -> str:
        column = self.field.name if self.field else "*"
        return f"{self.func.value}({column})"

    @property
    def node_count(self) -> int:
        return 1 + (self.field.node_count if self.field else 0)


@dataclass(frozen=True)
class Query:
    """A full parsed query."""

    aggregates: tuple[Aggregate, ...]
    where: Predicate | None
    source: str = "clogs"
    group_by: FieldRef | None = None

    def to_wire(self) -> dict[str, Any]:
        return {
            "kind": "query",
            "aggregates": [a.to_wire() for a in self.aggregates],
            "where": self.where.to_wire() if self.where else None,
            "source": self.source,
            "group_by": self.group_by.to_wire() if self.group_by
            else None,
        }

    @property
    def node_count(self) -> int:
        total = sum(a.node_count for a in self.aggregates)
        if self.where is not None:
            total += self.where.node_count
        if self.group_by is not None:
            total += 2  # key extraction + bucket lookup
        return total

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(a.label for a in self.aggregates)

    @property
    def is_grouped(self) -> bool:
        return self.group_by is not None


def predicate_from_wire(wire: dict[str, Any] | None) -> Predicate | None:
    if wire is None:
        return None
    kind = wire["kind"]
    if kind == "cmp":
        return Comparison(op=BinaryOp(wire["op"]),
                          field=FieldRef(wire["field"]["name"]),
                          value=Literal(wire["value"]["value"]))
    if kind == "prefix":
        return PrefixMatch(field=FieldRef(wire["field"]["name"]),
                           prefix=wire["prefix"],
                           negated=wire["negated"])
    if kind == "logical":
        return Logical(op=LogicalOp(wire["op"]),
                       operands=tuple(predicate_from_wire(o)
                                      for o in wire["operands"]))
    raise QueryError(f"unknown predicate kind {kind!r}")


def query_from_wire(wire: dict[str, Any]) -> Query:
    if wire.get("kind") != "query":
        raise QueryError("not a query wire object")
    aggregates = tuple(
        Aggregate(func=AggFunc(a["func"]),
                  field=FieldRef(a["field"]["name"]) if a["field"] else None)
        for a in wire["aggregates"]
    )
    group_wire = wire.get("group_by")
    return Query(aggregates=aggregates,
                 where=predicate_from_wire(wire["where"]),
                 source=wire["source"],
                 group_by=FieldRef(group_wire["name"]) if group_wire
                 else None)
