"""Query evaluation over CLog entry views.

The evaluator is deliberately free of host-only dependencies so the zkVM
guest can run it verbatim; the optional ``cost_hook`` receives the number
of AST nodes evaluated per entry, which the guest maps to cycle charges.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from ..errors import QueryError
from .ast import (
    AggFunc,
    Aggregate,
    BinaryOp,
    Comparison,
    Logical,
    LogicalOp,
    Predicate,
    PrefixMatch,
    Query,
)

EntryView = Mapping[str, Any]


@dataclass(frozen=True)
class QueryResult:
    """Result of one query execution.

    For an ungrouped query, ``values`` holds one value per select-list
    term.  For ``GROUP BY`` queries, ``values`` is empty and ``groups``
    holds ``(group_key, per-term values)`` rows sorted by key.
    """

    labels: tuple[str, ...]
    values: tuple[int | float | None, ...]
    matched: int
    scanned: int
    group_by: str | None = None
    groups: tuple[tuple[Any, tuple[int | float | None, ...]], ...] = ()

    def value(self, label: str | None = None) -> int | float | None:
        """The result for ``label`` (or the only one if unambiguous)."""
        if self.group_by is not None:
            raise QueryError(
                "grouped query: read .groups instead of .value()")
        if label is None:
            if len(self.values) != 1:
                raise QueryError(
                    f"query has {len(self.values)} result columns; "
                    "name one")
            return self.values[0]
        try:
            return self.values[self.labels.index(label)]
        except ValueError:
            raise QueryError(f"no result column {label!r}") from None

    def as_dict(self) -> dict[str, int | float | None]:
        if self.group_by is not None:
            raise QueryError(
                "grouped query: read .groups instead of .as_dict()")
        return dict(zip(self.labels, self.values))

    def group(self, key: Any) -> dict[str, int | float | None]:
        """The per-term values for one group key."""
        for group_key, values in self.groups:
            if group_key == key:
                return dict(zip(self.labels, values))
        raise QueryError(f"no group {key!r}")


def _match_prefix(value: Any, prefix: str) -> bool:
    try:
        return ipaddress.IPv4Address(str(value)) in \
            ipaddress.IPv4Network(prefix)
    except ValueError:
        return False


_COMPARATORS: dict[BinaryOp, Callable[[Any, Any], bool]] = {
    BinaryOp.EQ: lambda a, b: a == b,
    BinaryOp.NE: lambda a, b: a != b,
    BinaryOp.LT: lambda a, b: a < b,
    BinaryOp.LE: lambda a, b: a <= b,
    BinaryOp.GT: lambda a, b: a > b,
    BinaryOp.GE: lambda a, b: a >= b,
}


def _field_value(entry: EntryView, name: str) -> Any:
    try:
        return entry[name]
    except KeyError:
        raise QueryError(f"entry view is missing column {name!r}") from None


def evaluate_predicate(predicate: Predicate | None,
                       entry: EntryView) -> bool:
    """Does ``entry`` satisfy the predicate?"""
    if predicate is None:
        return True
    if isinstance(predicate, Comparison):
        actual = _field_value(entry, predicate.field.name)
        expected = predicate.value.value
        try:
            return _COMPARATORS[predicate.op](actual, expected)
        except TypeError as exc:
            raise QueryError(
                f"cannot compare {predicate.field.name} "
                f"({type(actual).__name__}) with "
                f"{type(expected).__name__}") from exc
    if isinstance(predicate, PrefixMatch):
        matched = _match_prefix(
            _field_value(entry, predicate.field.name), predicate.prefix)
        return matched != predicate.negated
    if isinstance(predicate, Logical):
        if predicate.op is LogicalOp.AND:
            return all(evaluate_predicate(o, entry)
                       for o in predicate.operands)
        if predicate.op is LogicalOp.OR:
            return any(evaluate_predicate(o, entry)
                       for o in predicate.operands)
        return not evaluate_predicate(predicate.operands[0], entry)
    raise QueryError(f"unknown predicate {type(predicate).__name__}")


class _Accumulator:
    """Streaming accumulator for one aggregate term."""

    __slots__ = ("aggregate", "count", "total", "minimum", "maximum")

    def __init__(self, aggregate: Aggregate) -> None:
        self.aggregate = aggregate
        self.count = 0
        self.total: int | float = 0
        self.minimum: int | float | None = None
        self.maximum: int | float | None = None

    def feed(self, entry: EntryView) -> None:
        self.count += 1
        field = self.aggregate.field
        if field is None:
            return
        value = _field_value(entry, field.name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise QueryError(
                f"cannot aggregate non-numeric column {field.name!r}")
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> int | float | None:
        func = self.aggregate.func
        if func is AggFunc.COUNT:
            return self.count
        if self.count == 0:
            return None
        if func is AggFunc.SUM:
            return self.total
        if func is AggFunc.AVG:
            return self.total / self.count
        if func is AggFunc.MIN:
            return self.minimum
        if func is AggFunc.MAX:
            return self.maximum
        raise QueryError(f"unknown aggregate {func!r}")


def evaluate(query: Query, entries: Iterable[EntryView],
             cost_hook: Callable[[int], None] | None = None) -> QueryResult:
    """Run ``query`` over entry views.

    ``cost_hook(nodes)`` is invoked once per scanned entry with the
    number of AST nodes its evaluation touched; the zkVM guest uses it to
    charge compute cycles.
    """
    per_entry_nodes = query.node_count
    matched = 0
    scanned = 0
    if query.group_by is None:
        accumulators = [_Accumulator(a) for a in query.aggregates]
        for entry in entries:
            scanned += 1
            if cost_hook is not None:
                cost_hook(per_entry_nodes)
            if not evaluate_predicate(query.where, entry):
                continue
            matched += 1
            for accumulator in accumulators:
                accumulator.feed(entry)
        return QueryResult(
            labels=query.labels,
            values=tuple(a.result() for a in accumulators),
            matched=matched,
            scanned=scanned,
        )
    # GROUP BY: one accumulator row per distinct key.
    group_field = query.group_by.name
    buckets: dict[Any, list[_Accumulator]] = {}
    for entry in entries:
        scanned += 1
        if cost_hook is not None:
            cost_hook(per_entry_nodes)
        if not evaluate_predicate(query.where, entry):
            continue
        matched += 1
        key = _field_value(entry, group_field)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = [_Accumulator(a) for a in query.aggregates]
            buckets[key] = bucket
        for accumulator in bucket:
            accumulator.feed(entry)
    groups = tuple(
        (key, tuple(a.result() for a in buckets[key]))
        for key in sorted(buckets, key=lambda k: (str(type(k)), k))
    )
    return QueryResult(
        labels=query.labels,
        values=(),
        matched=matched,
        scanned=scanned,
        group_by=group_field,
        groups=groups,
    )
