"""Query evaluation over CLog entry views.

The evaluator is deliberately free of host-only dependencies so the zkVM
guest can run it verbatim; the optional ``cost_hook`` receives the number
of AST nodes evaluated per entry, which the guest maps to cycle charges.
"""

from __future__ import annotations

import ipaddress
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Sequence

from .. import hotpath
from ..errors import QueryError
from .ast import (
    AggFunc,
    Aggregate,
    BinaryOp,
    Comparison,
    Logical,
    LogicalOp,
    Predicate,
    PrefixMatch,
    Query,
)

EntryView = Mapping[str, Any]


@dataclass(frozen=True)
class QueryResult:
    """Result of one query execution.

    For an ungrouped query, ``values`` holds one value per select-list
    term.  For ``GROUP BY`` queries, ``values`` is empty and ``groups``
    holds ``(group_key, per-term values)`` rows sorted by key.
    """

    labels: tuple[str, ...]
    values: tuple[int | float | None, ...]
    matched: int
    scanned: int
    group_by: str | None = None
    groups: tuple[tuple[Any, tuple[int | float | None, ...]], ...] = ()

    def value(self, label: str | None = None) -> int | float | None:
        """The result for ``label`` (or the only one if unambiguous)."""
        if self.group_by is not None:
            raise QueryError(
                "grouped query: read .groups instead of .value()")
        if label is None:
            if len(self.values) != 1:
                raise QueryError(
                    f"query has {len(self.values)} result columns; "
                    "name one")
            return self.values[0]
        try:
            return self.values[self.labels.index(label)]
        except ValueError:
            raise QueryError(f"no result column {label!r}") from None

    def as_dict(self) -> dict[str, int | float | None]:
        if self.group_by is not None:
            raise QueryError(
                "grouped query: read .groups instead of .as_dict()")
        return dict(zip(self.labels, self.values))

    def group(self, key: Any) -> dict[str, int | float | None]:
        """The per-term values for one group key."""
        for group_key, values in self.groups:
            if group_key == key:
                return dict(zip(self.labels, values))
        raise QueryError(f"no group {key!r}")


def _match_prefix(value: Any, prefix: str) -> bool:
    try:
        return ipaddress.IPv4Address(str(value)) in \
            ipaddress.IPv4Network(prefix)
    except ValueError:
        return False


_COMPARATORS: dict[BinaryOp, Callable[[Any, Any], bool]] = {
    BinaryOp.EQ: lambda a, b: a == b,
    BinaryOp.NE: lambda a, b: a != b,
    BinaryOp.LT: lambda a, b: a < b,
    BinaryOp.LE: lambda a, b: a <= b,
    BinaryOp.GT: lambda a, b: a > b,
    BinaryOp.GE: lambda a, b: a >= b,
}


def _field_value(entry: EntryView, name: str) -> Any:
    try:
        return entry[name]
    except KeyError:
        raise QueryError(f"entry view is missing column {name!r}") from None


def evaluate_predicate(predicate: Predicate | None,
                       entry: EntryView) -> bool:
    """Does ``entry`` satisfy the predicate?"""
    if predicate is None:
        return True
    if isinstance(predicate, Comparison):
        actual = _field_value(entry, predicate.field.name)
        expected = predicate.value.value
        try:
            return _COMPARATORS[predicate.op](actual, expected)
        except TypeError as exc:
            raise QueryError(
                f"cannot compare {predicate.field.name} "
                f"({type(actual).__name__}) with "
                f"{type(expected).__name__}") from exc
    if isinstance(predicate, PrefixMatch):
        matched = _match_prefix(
            _field_value(entry, predicate.field.name), predicate.prefix)
        return matched != predicate.negated
    if isinstance(predicate, Logical):
        if predicate.op is LogicalOp.AND:
            return all(evaluate_predicate(o, entry)
                       for o in predicate.operands)
        if predicate.op is LogicalOp.OR:
            return any(evaluate_predicate(o, entry)
                       for o in predicate.operands)
        return not evaluate_predicate(predicate.operands[0], entry)
    raise QueryError(f"unknown predicate {type(predicate).__name__}")


class _Accumulator:
    """Streaming accumulator for one aggregate term.

    Float sums are accumulated as exact rationals (every finite float is
    a dyadic ``Fraction``), so the running total is independent of the
    order — and, crucially, of the *grouping* — of the additions.  That
    is what lets a partitioned query prove per-partition partial states
    and fold them in a merge guest while staying bit-identical to the
    single-pass result: ``result()`` rounds the exact total to a float
    exactly once, at the end.
    """

    __slots__ = ("aggregate", "count", "total", "minimum", "maximum")

    def __init__(self, aggregate: Aggregate) -> None:
        self.aggregate = aggregate
        self.count = 0
        self.total: int | float | Fraction = 0
        self.minimum: int | float | None = None
        self.maximum: int | float | None = None

    def feed(self, entry: EntryView) -> None:
        self.count += 1
        field = self.aggregate.field
        if field is None:
            return
        value = _field_value(entry, field.name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise QueryError(
                f"cannot aggregate non-numeric column {field.name!r}")
        if isinstance(value, float) and math.isfinite(value):
            self.total += Fraction(value)
        else:
            self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def state(self) -> dict[str, Any]:
        """The mergeable partial state, in canonical wire-safe form."""
        total: Any = self.total
        if isinstance(total, Fraction):
            total = [total.numerator, total.denominator]
        return {"c": self.count, "t": total,
                "mn": self.minimum, "mx": self.maximum}

    def absorb(self, state: Mapping[str, Any]) -> None:
        """Fold another accumulator's ``state()`` into this one."""
        try:
            count = state["c"]
            total = state["t"]
            minimum = state["mn"]
            maximum = state["mx"]
        except (KeyError, TypeError) as exc:
            raise QueryError("malformed partial aggregate state") from exc
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise QueryError("malformed partial aggregate count")
        if isinstance(total, (list, tuple)):
            if len(total) != 2 or not all(
                    isinstance(part, int) and not isinstance(part, bool)
                    for part in total):
                raise QueryError("malformed partial aggregate total")
            total = Fraction(total[0], total[1])
        elif not isinstance(total, (int, float)) or isinstance(total, bool):
            raise QueryError("malformed partial aggregate total")
        self.count += count
        self.total += total
        if minimum is not None and (self.minimum is None
                                    or minimum < self.minimum):
            self.minimum = minimum
        if maximum is not None and (self.maximum is None
                                    or maximum > self.maximum):
            self.maximum = maximum

    def result(self) -> int | float | None:
        func = self.aggregate.func
        if func is AggFunc.COUNT:
            return self.count
        if self.count == 0:
            return None
        if func is AggFunc.SUM:
            if isinstance(self.total, Fraction):
                return float(self.total)
            return self.total
        if func is AggFunc.AVG:
            value = self.total / self.count
            if isinstance(value, Fraction):
                return float(value)
            return value
        if func is AggFunc.MIN:
            return self.minimum
        if func is AggFunc.MAX:
            return self.maximum
        raise QueryError(f"unknown aggregate {func!r}")


def evaluate(query: Query, entries: Iterable[EntryView],
             cost_hook: Callable[[int], None] | None = None) -> QueryResult:
    """Run ``query`` over entry views.

    ``cost_hook(nodes)`` is invoked once per scanned entry with the
    number of AST nodes its evaluation touched; the zkVM guest uses it to
    charge compute cycles.  The vectorized fast path batches those
    invocations into one call with the same total — every in-tree hook
    is linear, so metered cycles are unchanged.
    """
    if hotpath.enabled():
        if not isinstance(entries, (list, tuple)):
            entries = list(entries)
        from . import vectorized
        result = vectorized.try_evaluate(query, entries, cost_hook)
        if result is not None:
            return result
    per_entry_nodes = query.node_count
    matched = 0
    scanned = 0
    if query.group_by is None:
        accumulators = [_Accumulator(a) for a in query.aggregates]
        for entry in entries:
            scanned += 1
            if cost_hook is not None:
                cost_hook(per_entry_nodes)
            if not evaluate_predicate(query.where, entry):
                continue
            matched += 1
            for accumulator in accumulators:
                accumulator.feed(entry)
        return QueryResult(
            labels=query.labels,
            values=tuple(a.result() for a in accumulators),
            matched=matched,
            scanned=scanned,
        )
    # GROUP BY: one accumulator row per distinct key.
    group_field = query.group_by.name
    buckets: dict[Any, list[_Accumulator]] = {}
    for entry in entries:
        scanned += 1
        if cost_hook is not None:
            cost_hook(per_entry_nodes)
        if not evaluate_predicate(query.where, entry):
            continue
        matched += 1
        key = _field_value(entry, group_field)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = [_Accumulator(a) for a in query.aggregates]
            buckets[key] = bucket
        for accumulator in bucket:
            accumulator.feed(entry)
    groups = tuple(
        (key, tuple(a.result() for a in buckets[key]))
        for key in sorted(buckets, key=lambda k: (str(type(k)), k))
    )
    return QueryResult(
        labels=query.labels,
        values=(),
        matched=matched,
        scanned=scanned,
        group_by=group_field,
        groups=groups,
    )


def _sort_key(key: Any) -> tuple[str, Any]:
    return (str(type(key)), key)


@dataclass(frozen=True)
class PartialQueryResult:
    """Mergeable partial aggregates for one slice of the entry set.

    ``states`` holds one accumulator state per select-list term for an
    ungrouped query; grouped queries use ``group_states`` rows of
    ``(group_key, per-term states)`` sorted by key.  The wire form is
    what the partition guest commits and the merge guest folds.
    """

    matched: int
    scanned: int
    group_by: str | None
    states: tuple[dict[str, Any], ...]
    group_states: tuple[tuple[Any, tuple[dict[str, Any], ...]], ...] = ()

    def to_wire(self) -> dict[str, Any]:
        return {
            "matched": self.matched,
            "scanned": self.scanned,
            "states": [dict(s) for s in self.states],
            "groups": [[key, [dict(s) for s in states]]
                       for key, states in self.group_states],
        }


def evaluate_partial(
        query: Query, entries: Iterable[EntryView],
        cost_hook: Callable[[int], None] | None = None,
) -> PartialQueryResult:
    """Run ``query`` over a slice of the entry set, stopping short of
    finalization: the result carries raw accumulator states that
    ``merge_partials`` folds across slices.  Metering via ``cost_hook``
    is identical to :func:`evaluate`.
    """
    if hotpath.enabled():
        if not isinstance(entries, (list, tuple)):
            entries = list(entries)
        from . import vectorized
        result = vectorized.try_evaluate_partial(query, entries, cost_hook)
        if result is not None:
            return result
    per_entry_nodes = query.node_count
    matched = 0
    scanned = 0
    if query.group_by is None:
        accumulators = [_Accumulator(a) for a in query.aggregates]
        for entry in entries:
            scanned += 1
            if cost_hook is not None:
                cost_hook(per_entry_nodes)
            if not evaluate_predicate(query.where, entry):
                continue
            matched += 1
            for accumulator in accumulators:
                accumulator.feed(entry)
        return PartialQueryResult(
            matched=matched,
            scanned=scanned,
            group_by=None,
            states=tuple(a.state() for a in accumulators),
        )
    group_field = query.group_by.name
    buckets: dict[Any, list[_Accumulator]] = {}
    for entry in entries:
        scanned += 1
        if cost_hook is not None:
            cost_hook(per_entry_nodes)
        if not evaluate_predicate(query.where, entry):
            continue
        matched += 1
        key = _field_value(entry, group_field)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = [_Accumulator(a) for a in query.aggregates]
            buckets[key] = bucket
        for accumulator in bucket:
            accumulator.feed(entry)
    return PartialQueryResult(
        matched=matched,
        scanned=scanned,
        group_by=group_field,
        states=(),
        group_states=tuple(
            (key, tuple(a.state() for a in buckets[key]))
            for key in sorted(buckets, key=_sort_key)
        ),
    )


def merge_partials(
        query: Query, partials: Sequence[Mapping[str, Any]],
        cost_hook: Callable[[int], None] | None = None,
) -> QueryResult:
    """Fold partial wire forms (``PartialQueryResult.to_wire()``) into
    the final :class:`QueryResult`.

    Because accumulation is exact (see :class:`_Accumulator`), the fold
    is associative and the merged result is bit-identical to running
    :func:`evaluate` over the concatenated slices.  ``cost_hook(n)`` is
    invoked once per absorbed accumulator state so the merge guest can
    charge compute cycles.
    """
    num_terms = len(query.aggregates)
    matched = 0
    scanned = 0
    if query.group_by is None:
        accumulators = [_Accumulator(a) for a in query.aggregates]
        for partial in partials:
            matched += partial["matched"]
            scanned += partial["scanned"]
            states = partial["states"]
            if len(states) != num_terms or partial["groups"]:
                raise QueryError(
                    "partial state shape does not match the query")
            if cost_hook is not None:
                cost_hook(num_terms)
            for accumulator, state in zip(accumulators, states):
                accumulator.absorb(state)
        return QueryResult(
            labels=query.labels,
            values=tuple(a.result() for a in accumulators),
            matched=matched,
            scanned=scanned,
        )
    buckets: dict[Any, list[_Accumulator]] = {}
    for partial in partials:
        matched += partial["matched"]
        scanned += partial["scanned"]
        if partial["states"]:
            raise QueryError(
                "partial state shape does not match the query")
        for row in partial["groups"]:
            key, states = row
            if len(states) != num_terms:
                raise QueryError(
                    "partial group shape does not match the query")
            bucket = buckets.get(key)
            if bucket is None:
                bucket = [_Accumulator(a) for a in query.aggregates]
                buckets[key] = bucket
            if cost_hook is not None:
                cost_hook(num_terms)
            for accumulator, state in zip(bucket, states):
                accumulator.absorb(state)
    groups = tuple(
        (key, tuple(a.result() for a in buckets[key]))
        for key in sorted(buckets, key=_sort_key)
    )
    return QueryResult(
        labels=query.labels,
        values=(),
        matched=matched,
        scanned=scanned,
        group_by=query.group_by.name,
        groups=groups,
    )
