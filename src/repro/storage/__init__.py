"""Shared telemetry log store (the paper's PostgreSQL backend).

The evaluation writes all router logs "to a shared PostgreSQL backend"
(§6).  Offline, we substitute two backends behind one interface:

* :class:`~repro.storage.memory.MemoryLogStore` — dict-backed, fastest,
  used by most tests;
* :class:`~repro.storage.sqlite.SqliteLogStore` — stdlib ``sqlite3``,
  exercising the same code path as the paper (a real SQL store shared by
  concurrent router writers, with transactions and indices).

Records are stored as their canonical bytes — the exact bytes routers
hash into commitments — so the tamper experiments can flip stored bytes
and watch the integrity checks fire (Figure 3).
"""

from .backend import LogStore, StoredRecord
from .memory import MemoryLogStore
from .sqlite import SqliteLogStore

__all__ = ["LogStore", "MemoryLogStore", "SqliteLogStore", "StoredRecord"]
