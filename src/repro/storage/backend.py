"""Abstract log-store interface.

Windows are the unit of commitment (§3: routers commit a hash over each
5-second window of logs).  The store therefore keys raw logs by
``(router_id, window_index, seq)`` and exposes both decoded records and
the raw canonical bytes — the bytes are what gets hashed, and what the
tamper experiments mutate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import StorageError
from ..netflow.records import NetFlowRecord


@dataclass(frozen=True)
class StoredRecord:
    """One raw log row as the store holds it."""

    router_id: str
    window_index: int
    seq: int
    data: bytes

    def decode(self) -> NetFlowRecord:
        from ..serialization import decode
        wire = decode(self.data)
        if not isinstance(wire, dict):
            raise StorageError("stored record does not decode to a dict")
        return NetFlowRecord.from_wire(wire)


class LogStore(abc.ABC):
    """Shared store for raw telemetry logs (RLogs)."""

    # -- writes -----------------------------------------------------------------

    @abc.abstractmethod
    def append_records(self, router_id: str, window_index: int,
                       records: list[NetFlowRecord]) -> None:
        """Append a router's records to a window (order-preserving)."""

    @abc.abstractmethod
    def overwrite_raw(self, router_id: str, window_index: int, seq: int,
                      data: bytes) -> None:
        """Replace one stored row's bytes (tamper-injection hook)."""

    @abc.abstractmethod
    def replace_window(self, router_id: str, window_index: int,
                       blobs: list[bytes]) -> None:
        """Replace a window's rows wholesale (tamper-injection hook:
        truncation, reordering, record injection)."""

    @abc.abstractmethod
    def purge_window(self, router_id: str, window_index: int) -> int:
        """Drop a window's raw logs (logs are ephemeral, §2.2);
        returns the number of rows removed."""

    # -- reads -------------------------------------------------------------------

    @abc.abstractmethod
    def window_blobs(self, router_id: str,
                     window_index: int) -> list[bytes]:
        """Raw canonical bytes of one router window, in append order."""

    @abc.abstractmethod
    def window_indices(self, router_id: str) -> list[int]:
        """All window indices this router has rows for, ascending."""

    @abc.abstractmethod
    def router_ids(self) -> list[str]:
        """All routers with stored rows, sorted."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release backend resources."""

    # -- checkpoints -------------------------------------------------------------
    #
    # A small named-blob KV the prover uses for crash-safe snapshots
    # (see :meth:`repro.core.prover_service.ProverService.checkpoint`).
    # Concrete no-support defaults rather than abstract methods, so
    # minimal LogStore subclasses (test doubles, read-only adapters)
    # keep working without opting in.

    def put_checkpoint(self, name: str, data: bytes) -> None:
        """Store (or overwrite) a named checkpoint blob."""
        raise StorageError(
            f"{type(self).__name__} does not support checkpoints")

    def get_checkpoint(self, name: str) -> bytes | None:
        """Fetch a named checkpoint blob, or None if absent."""
        raise StorageError(
            f"{type(self).__name__} does not support checkpoints")

    def checkpoint_names(self) -> list[str]:
        """All stored checkpoint names, sorted."""
        raise StorageError(
            f"{type(self).__name__} does not support checkpoints")

    def delete_checkpoint(self, name: str) -> bool:
        """Drop a named checkpoint; returns True if one existed."""
        raise StorageError(
            f"{type(self).__name__} does not support checkpoints")

    # -- conveniences ------------------------------------------------------------------

    def window_records(self, router_id: str,
                       window_index: int) -> list[NetFlowRecord]:
        """Decoded records of one router window."""
        from ..serialization import decode
        records = []
        for blob in self.window_blobs(router_id, window_index):
            wire = decode(blob)
            if not isinstance(wire, dict):
                raise StorageError(
                    "stored record does not decode to a dict")
            records.append(NetFlowRecord.from_wire(wire))
        return records

    def window_count(self, router_id: str, window_index: int) -> int:
        return len(self.window_blobs(router_id, window_index))

    def all_blobs_for_window(self, window_index: int
                             ) -> dict[str, list[bytes]]:
        """window_index → {router_id: blobs} across all routers."""
        return {router_id: self.window_blobs(router_id, window_index)
                for router_id in self.router_ids()
                if window_index in self.window_indices(router_id)}

    def __enter__(self) -> "LogStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
