"""In-memory log store (dict-backed, thread-safe)."""

from __future__ import annotations

import threading
from collections import defaultdict

from ..errors import StorageError
from ..netflow.records import NetFlowRecord
from .backend import LogStore


class MemoryLogStore(LogStore):
    """The default store for tests and single-process experiments."""

    def __init__(self) -> None:
        self._rows: dict[tuple[str, int], list[bytes]] = defaultdict(list)
        self._checkpoints: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self._closed = False

    def append_records(self, router_id: str, window_index: int,
                       records: list[NetFlowRecord]) -> None:
        self._check_open()
        blobs = [record.to_bytes() for record in records]
        with self._lock:
            self._rows[(router_id, window_index)].extend(blobs)

    def overwrite_raw(self, router_id: str, window_index: int, seq: int,
                      data: bytes) -> None:
        self._check_open()
        with self._lock:
            rows = self._rows.get((router_id, window_index))
            if rows is None or not 0 <= seq < len(rows):
                raise StorageError(
                    f"no row ({router_id!r}, {window_index}, {seq})")
            rows[seq] = bytes(data)

    def replace_window(self, router_id: str, window_index: int,
                       blobs: list[bytes]) -> None:
        self._check_open()
        with self._lock:
            self._rows[(router_id, window_index)] = [bytes(b)
                                                     for b in blobs]

    def purge_window(self, router_id: str, window_index: int) -> int:
        self._check_open()
        with self._lock:
            rows = self._rows.pop((router_id, window_index), [])
            return len(rows)

    def window_blobs(self, router_id: str,
                     window_index: int) -> list[bytes]:
        self._check_open()
        with self._lock:
            return list(self._rows.get((router_id, window_index), []))

    def window_indices(self, router_id: str) -> list[int]:
        self._check_open()
        with self._lock:
            return sorted(w for (r, w) in self._rows if r == router_id)

    def router_ids(self) -> list[str]:
        self._check_open()
        with self._lock:
            return sorted({r for (r, _w) in self._rows})

    def put_checkpoint(self, name: str, data: bytes) -> None:
        self._check_open()
        with self._lock:
            self._checkpoints[name] = bytes(data)

    def get_checkpoint(self, name: str) -> bytes | None:
        self._check_open()
        with self._lock:
            return self._checkpoints.get(name)

    def checkpoint_names(self) -> list[str]:
        self._check_open()
        with self._lock:
            return sorted(self._checkpoints)

    def delete_checkpoint(self, name: str) -> bool:
        self._check_open()
        with self._lock:
            return self._checkpoints.pop(name, None) is not None

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")
