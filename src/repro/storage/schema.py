"""SQL schema for the sqlite-backed log store."""

CREATE_RLOGS = """
CREATE TABLE IF NOT EXISTS rlogs (
    router_id    TEXT    NOT NULL,
    window_index INTEGER NOT NULL,
    seq          INTEGER NOT NULL,
    data         BLOB    NOT NULL,
    PRIMARY KEY (router_id, window_index, seq)
)
"""

CREATE_RLOGS_WINDOW_INDEX = """
CREATE INDEX IF NOT EXISTS idx_rlogs_window
    ON rlogs (window_index, router_id)
"""

INSERT_ROW = """
INSERT INTO rlogs (router_id, window_index, seq, data)
VALUES (?, ?, ?, ?)
"""

SELECT_WINDOW_BLOBS = """
SELECT data FROM rlogs
WHERE router_id = ? AND window_index = ?
ORDER BY seq
"""

SELECT_MAX_SEQ = """
SELECT COALESCE(MAX(seq), -1) FROM rlogs
WHERE router_id = ? AND window_index = ?
"""

UPDATE_ROW = """
UPDATE rlogs SET data = ?
WHERE router_id = ? AND window_index = ? AND seq = ?
"""

DELETE_WINDOW = """
DELETE FROM rlogs WHERE router_id = ? AND window_index = ?
"""

SELECT_WINDOW_INDICES = """
SELECT DISTINCT window_index FROM rlogs
WHERE router_id = ? ORDER BY window_index
"""

SELECT_ROUTER_IDS = """
SELECT DISTINCT router_id FROM rlogs ORDER BY router_id
"""

CREATE_CHECKPOINTS = """
CREATE TABLE IF NOT EXISTS checkpoints (
    name TEXT PRIMARY KEY,
    data BLOB NOT NULL
)
"""

UPSERT_CHECKPOINT = """
INSERT INTO checkpoints (name, data) VALUES (?, ?)
ON CONFLICT (name) DO UPDATE SET data = excluded.data
"""

SELECT_CHECKPOINT = """
SELECT data FROM checkpoints WHERE name = ?
"""

SELECT_CHECKPOINT_NAMES = """
SELECT name FROM checkpoints ORDER BY name
"""

DELETE_CHECKPOINT = """
DELETE FROM checkpoints WHERE name = ?
"""
