"""SQLite-backed log store — the offline stand-in for PostgreSQL.

One connection guarded by a lock serves all router threads (sqlite
serializes writers anyway); WAL mode keeps concurrent reader latency low.
Rows are keyed ``(router_id, window_index, seq)`` exactly like the
in-memory store, so the two are interchangeable in every experiment.
"""

from __future__ import annotations

import sqlite3
import threading

from ..errors import StorageError
from ..netflow.records import NetFlowRecord
from . import schema
from .backend import LogStore


class SqliteLogStore(LogStore):
    """Shared SQL store for raw telemetry logs."""

    def __init__(self, path: str = ":memory:") -> None:
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open sqlite store {path!r}: "
                               f"{exc}") from exc
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(schema.CREATE_RLOGS)
        self._conn.execute(schema.CREATE_RLOGS_WINDOW_INDEX)
        self._conn.execute(schema.CREATE_CHECKPOINTS)
        self._conn.commit()
        self._closed = False

    def append_records(self, router_id: str, window_index: int,
                       records: list[NetFlowRecord]) -> None:
        blobs = [record.to_bytes() for record in records]
        with self._lock:
            self._check_open()
            try:
                (next_seq,) = self._conn.execute(
                    schema.SELECT_MAX_SEQ,
                    (router_id, window_index)).fetchone()
                next_seq += 1
                self._conn.executemany(
                    schema.INSERT_ROW,
                    [(router_id, window_index, next_seq + i, blob)
                     for i, blob in enumerate(blobs)])
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise StorageError(f"append failed: {exc}") from exc

    def overwrite_raw(self, router_id: str, window_index: int, seq: int,
                      data: bytes) -> None:
        with self._lock:
            self._check_open()
            cursor = self._conn.execute(
                schema.UPDATE_ROW, (bytes(data), router_id, window_index,
                                    seq))
            self._conn.commit()
            if cursor.rowcount != 1:
                raise StorageError(
                    f"no row ({router_id!r}, {window_index}, {seq})")

    def replace_window(self, router_id: str, window_index: int,
                       blobs: list[bytes]) -> None:
        with self._lock:
            self._check_open()
            try:
                self._conn.execute(schema.DELETE_WINDOW,
                                   (router_id, window_index))
                self._conn.executemany(
                    schema.INSERT_ROW,
                    [(router_id, window_index, seq, bytes(blob))
                     for seq, blob in enumerate(blobs)])
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise StorageError(f"replace failed: {exc}") from exc

    def purge_window(self, router_id: str, window_index: int) -> int:
        with self._lock:
            self._check_open()
            cursor = self._conn.execute(
                schema.DELETE_WINDOW, (router_id, window_index))
            self._conn.commit()
            return cursor.rowcount

    def window_blobs(self, router_id: str,
                     window_index: int) -> list[bytes]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                schema.SELECT_WINDOW_BLOBS,
                (router_id, window_index)).fetchall()
        return [bytes(row[0]) for row in rows]

    def window_indices(self, router_id: str) -> list[int]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                schema.SELECT_WINDOW_INDICES, (router_id,)).fetchall()
        return [row[0] for row in rows]

    def router_ids(self) -> list[str]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(schema.SELECT_ROUTER_IDS).fetchall()
        return [row[0] for row in rows]

    def put_checkpoint(self, name: str, data: bytes) -> None:
        with self._lock:
            self._check_open()
            try:
                self._conn.execute(schema.UPSERT_CHECKPOINT,
                                   (name, bytes(data)))
                self._conn.commit()
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise StorageError(
                    f"checkpoint write failed: {exc}") from exc

    def get_checkpoint(self, name: str) -> bytes | None:
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                schema.SELECT_CHECKPOINT, (name,)).fetchone()
        return bytes(row[0]) if row is not None else None

    def checkpoint_names(self) -> list[str]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                schema.SELECT_CHECKPOINT_NAMES).fetchall()
        return [row[0] for row in rows]

    def delete_checkpoint(self, name: str) -> bool:
        with self._lock:
            self._check_open()
            cursor = self._conn.execute(
                schema.DELETE_CHECKPOINT, (name,))
            self._conn.commit()
            return cursor.rowcount > 0

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")
