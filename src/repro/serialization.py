"""Canonical, deterministic byte serialization.

Anything that gets hashed or committed in this system must serialize the
same way on every machine and every run, so we define a small canonical
encoding instead of relying on ``pickle`` (non-deterministic, unsafe) or
``json`` (no bytes, float ambiguity).  The format is a type-tagged binary
encoding:

===========  ===========================================================
tag byte     payload
===========  ===========================================================
``0x00``     ``None``
``0x01``     ``False``
``0x02``     ``True``
``0x03``     int — zigzag LEB128 varint
``0x04``     bytes — varint length + raw bytes
``0x05``     str — varint length + UTF-8 bytes
``0x06``     list/tuple — varint count + encoded items
``0x07``     dict — varint count + (str key, value) pairs in sorted order
``0x08``     :class:`~repro.hashing.Digest` — 32 raw bytes
``0x09``     float — 8-byte IEEE-754 big-endian
===========  ===========================================================

Dictionaries are encoded with keys sorted lexicographically so two
semantically equal dicts always hash identically.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from . import hotpath
from .errors import SerializationError
from .hashing import DIGEST_SIZE, Digest

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_BYTES = 0x04
_TAG_STR = 0x05
_TAG_LIST = 0x06
_TAG_DICT = 0x07
_TAG_DIGEST = 0x08
_TAG_FLOAT = 0x09


def _zigzag_big(value: int) -> int:
    # Arbitrary-precision zigzag: non-negative -> 2n, negative -> -2n - 1.
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        _write_varint(out, _zigzag_big(value))
    elif isinstance(value, Digest):
        out.append(_TAG_DIGEST)
        out.extend(value.raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_TAG_BYTES)
        _write_varint(out, len(data))
        out.extend(data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(data))
        out.extend(data)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, dict):
        keys = list(value.keys())
        if not all(isinstance(k, str) for k in keys):
            raise SerializationError("dict keys must be str for canonical "
                                     "encoding")
        out.append(_TAG_DICT)
        _write_varint(out, len(keys))
        for key in sorted(keys):
            _encode(out, key)
            _encode(out, value[key])
    else:
        raise SerializationError(
            f"cannot canonically encode {type(value).__name__}"
        )


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` to bytes."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SerializationError("truncated input")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def byte(self) -> int:
        return self.take(1)[0]

    def varint(self) -> int:
        shift = 0
        result = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 1024:
                raise SerializationError("varint too long")


def _decode(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_INT:
        return _unzigzag(reader.varint())
    if tag == _TAG_BYTES:
        return reader.take(reader.varint())
    if tag == _TAG_STR:
        raw = reader.take(reader.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 in string") from exc
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_LIST:
        count = reader.varint()
        return [_decode(reader) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.varint()
        result = {}
        prev_key: str | None = None
        for _ in range(count):
            key = _decode(reader)
            if not isinstance(key, str):
                raise SerializationError("dict key must decode to str")
            if prev_key is not None and key <= prev_key:
                raise SerializationError("dict keys not in canonical order")
            prev_key = key
            result[key] = _decode(reader)
        return result
    if tag == _TAG_DIGEST:
        return Digest(reader.take(DIGEST_SIZE))
    raise SerializationError(f"unknown type tag 0x{tag:02x}")


def _fast_varint(data: bytes, pos: int, end: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        if pos >= end:
            raise SerializationError("truncated input")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 1024:
            raise SerializationError("varint too long")


def _decode_fast(data: bytes, pos: int, end: int) -> tuple[Any, int]:
    """Index-based decoder: same values and errors as :func:`_decode`.

    The reference reader allocates a one-byte slice for every tag and
    varint byte; this path indexes into the buffer directly and threads
    the position through return values, which is where the decode time
    actually goes for record-heavy guest inputs.  Ordered by tag
    frequency in CLog wire entries (dicts of str keys and ints).
    """
    if pos >= end:
        raise SerializationError("truncated input")
    tag = data[pos]
    pos += 1
    if tag == _TAG_INT:
        raw, pos = _fast_varint(data, pos, end)
        return (raw >> 1) if raw % 2 == 0 else -((raw + 1) >> 1), pos
    if tag == _TAG_STR:
        length, pos = _fast_varint(data, pos, end)
        stop = pos + length
        if stop > end:
            raise SerializationError("truncated input")
        try:
            return data[pos:stop].decode("utf-8"), stop
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 in string") from exc
    if tag == _TAG_DICT:
        count, pos = _fast_varint(data, pos, end)
        result = {}
        prev_key: str | None = None
        for _ in range(count):
            key, pos = _decode_fast(data, pos, end)
            if not isinstance(key, str):
                raise SerializationError("dict key must decode to str")
            if prev_key is not None and key <= prev_key:
                raise SerializationError("dict keys not in canonical order")
            prev_key = key
            result[key], pos = _decode_fast(data, pos, end)
        return result, pos
    if tag == _TAG_LIST:
        count, pos = _fast_varint(data, pos, end)
        items = []
        append = items.append
        for _ in range(count):
            item, pos = _decode_fast(data, pos, end)
            append(item)
        return items, pos
    if tag == _TAG_FLOAT:
        stop = pos + 8
        if stop > end:
            raise SerializationError("truncated input")
        return struct.unpack_from(">d", data, pos)[0], stop
    if tag == _TAG_BYTES:
        length, pos = _fast_varint(data, pos, end)
        stop = pos + length
        if stop > end:
            raise SerializationError("truncated input")
        return data[pos:stop], stop
    if tag == _TAG_DIGEST:
        stop = pos + DIGEST_SIZE
        if stop > end:
            raise SerializationError("truncated input")
        return Digest(data[pos:stop]), stop
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_TRUE:
        return True, pos
    raise SerializationError(f"unknown type tag 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Decode a canonically encoded value, rejecting trailing garbage."""
    if not isinstance(data, bytes):
        data = bytes(data)
    if hotpath.enabled():
        value, pos = _decode_fast(data, 0, len(data))
        if pos != len(data):
            raise SerializationError(
                f"{len(data) - pos} trailing bytes after value"
            )
        return value
    reader = _Reader(data)
    value = _decode(reader)
    if reader.pos != len(data):
        raise SerializationError(
            f"{len(data) - reader.pos} trailing bytes after value"
        )
    return value


def decode_stream(data: bytes) -> Iterator[Any]:
    """Decode a back-to-back concatenation of encoded values."""
    if not isinstance(data, bytes):
        data = bytes(data)
    if hotpath.enabled():
        pos = 0
        end = len(data)
        while pos < end:
            value, pos = _decode_fast(data, pos, end)
            yield value
        return
    reader = _Reader(data)
    while reader.pos < len(data):
        yield _decode(reader)


# ---------------------------------------------------------------------------
# Typed wire codecs
# ---------------------------------------------------------------------------
# Canonical byte forms for the structures that cross the network
# boundary (repro.net).  Imports are local: the domain modules import
# this one for the primitive codec.  Shape errors from hostile bytes
# (missing keys, wrong types) surface as SerializationError, never as
# bare KeyError/TypeError.


def _decode_wire_dict(data: bytes, what: str) -> dict:
    wire = decode(data)
    if not isinstance(wire, dict):
        raise SerializationError(
            f"{what} encoding must be a dict, got "
            f"{type(wire).__name__}")
    return wire


def encode_commitment(commitment: Any) -> bytes:
    """Canonical bytes for a :class:`~repro.commitments.Commitment`."""
    return encode(commitment.to_wire())


def decode_commitment(data: bytes) -> Any:
    from .commitments import Commitment
    wire = _decode_wire_dict(data, "commitment")
    try:
        return Commitment.from_wire(wire)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed commitment: {exc}") from exc


def encode_receipt(receipt: Any) -> bytes:
    """Canonical bytes for a :class:`~repro.zkvm.Receipt` (equal to
    ``receipt.to_bytes()``; provided here so wire code has one
    codec module for every shipped structure)."""
    return encode(receipt.to_wire())


def decode_receipt(data: bytes) -> Any:
    from .zkvm import Receipt
    wire = _decode_wire_dict(data, "receipt")
    try:
        return Receipt.from_wire(wire)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed receipt: {exc}") from exc


def query_response_to_wire(response: Any) -> dict[str, Any]:
    """Wire dict for a :class:`~repro.core.query_proof.QueryResponse`.

    Field-for-field, with the receipt nested in its own wire form and
    tuples lowered to lists (the canonical codec's sequence type).
    """
    return {
        "sql": response.sql,
        "labels": list(response.labels),
        "values": list(response.values),
        "matched": response.matched,
        "scanned": response.scanned,
        "round": response.round,
        "root": response.root,
        "receipt": response.receipt.to_wire(),
        "group_by": response.group_by,
        "groups": [[key, list(values)]
                   for key, values in response.groups],
    }


def query_response_from_wire(wire: dict[str, Any]) -> Any:
    from .core.query_proof import QueryResponse
    from .zkvm import Receipt
    try:
        return QueryResponse(
            sql=wire["sql"],
            labels=tuple(wire["labels"]),
            values=tuple(wire["values"]),
            matched=wire["matched"],
            scanned=wire["scanned"],
            round=wire["round"],
            root=wire["root"],
            receipt=Receipt.from_wire(wire["receipt"]),
            group_by=wire["group_by"],
            groups=tuple((key, tuple(values))
                         for key, values in wire["groups"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed query response: {exc}") from exc


def encode_query_response(response: Any) -> bytes:
    return encode(query_response_to_wire(response))


def decode_query_response(data: bytes) -> Any:
    return query_response_from_wire(
        _decode_wire_dict(data, "query response"))
