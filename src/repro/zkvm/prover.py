"""Prover: turn an execution session into a verifiable receipt.

The pipeline mirrors RISC Zero's: every segment gets a STARK-style seal,
the segment digests are committed under a Merkle root, a Fiat–Shamir
transcript selects which segments the composite receipt must open, and the
composite receipt can then be *compressed* — recursively lifted/joined
into a constant-size succinct receipt and finally wrapped into the
256-byte Groth16-style seal the paper's Table 1 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import GuestAbort, ProofError
from ..hashing import TAG_SEAL, Digest, tagged_hash
from ..merkle import MerkleTree
from ..obs import names as obs_names
from ..obs import runtime as obs
from .executor import ExecutionSession, Executor, ExecutorInput
from .fiatshamir import Transcript
from .guest import GuestProgram
from .receipt import (
    VERIFIER_PARAMETERS,
    CompositeReceipt,
    ExitCode,
    Groth16Receipt,
    GROTH16_SEAL_SIZE,
    Receipt,
    ReceiptClaim,
    ReceiptKind,
    SegmentReceipt,
    SuccinctReceipt,
    SUCCINCT_SEAL_SIZE,
    expand_seal,
    groth16_binding,
    succinct_binding,
)

TRANSCRIPT_PROTOCOL = "repro-zkvm-v1"
SEGMENT_SEAL_SIZE = 1024


@dataclass(frozen=True)
class ProverOpts:
    """Prover configuration (mirrors ``risc0_zkvm::ProverOpts``).

    ``kind`` and ``num_queries`` shape the *proof statement* and feed
    the engine's content-addressed cache key.  ``pool_backend`` and
    ``prove_workers`` are host-side scheduling knobs for
    :mod:`repro.engine` (where the proof runs, not what it says) — they
    are deliberately excluded from
    :attr:`repro.engine.jobs.ProofJob.opts_digest` so a receipt proven
    on one backend is a cache hit on any other.
    """

    kind: ReceiptKind = ReceiptKind.GROTH16
    num_queries: int = 16
    pool_backend: str | None = None
    prove_workers: int | None = None

    @classmethod
    def composite(cls) -> "ProverOpts":
        return cls(kind=ReceiptKind.COMPOSITE)

    @classmethod
    def succinct(cls) -> "ProverOpts":
        return cls(kind=ReceiptKind.SUCCINCT)

    @classmethod
    def groth16(cls) -> "ProverOpts":
        return cls(kind=ReceiptKind.GROTH16)


@dataclass(frozen=True)
class ProveStats:
    """Metering results for one proved execution."""

    total_cycles: int
    padded_cycles: int
    segment_count: int
    sha_compressions: int
    wall_seconds: float
    cycle_breakdown: dict[str, int]


@dataclass(frozen=True)
class ProveInfo:
    """Receipt plus the session and stats it was derived from."""

    receipt: Receipt
    session: ExecutionSession
    stats: ProveStats


def segment_seal_binding(segment_digest: Digest) -> Digest:
    return tagged_hash(TAG_SEAL, b"segment", VERIFIER_PARAMETERS.raw,
                       segment_digest.raw)


def derive_query_indices(claim: ReceiptClaim, trace_root: Digest,
                         segment_count: int, num_queries: int) -> list[int]:
    """Fiat–Shamir: which segments the composite receipt must open.

    Both prover and verifier run this; absorbing the full claim means any
    tampering with the public statement re-randomises the openings.
    """
    transcript = Transcript(TRANSCRIPT_PROTOCOL)
    transcript.absorb("image_id", claim.image_id)
    transcript.absorb("input", claim.input_digest)
    transcript.absorb("journal", claim.journal_digest)
    transcript.absorb("assumptions", claim.assumptions_digest)
    transcript.absorb_int("exit_code", int(claim.exit_code))
    transcript.absorb("trace_root", trace_root)
    count = min(num_queries, segment_count)
    return transcript.challenge_indices("segment", segment_count, count)


class Prover:
    """Produces receipts for guest executions."""

    def __init__(self, opts: ProverOpts | None = None,
                 executor: Executor | None = None) -> None:
        self.opts = opts or ProverOpts()
        self._executor = executor or Executor()

    def prove(self, program: GuestProgram,
              env_input: ExecutorInput) -> ProveInfo:
        """Execute and prove; raises :class:`GuestAbort` on guest abort.

        An aborted guest has no receipt — this is the enforcement point
        for Algorithm 1's integrity aborts: tampered data makes proof
        generation *fail*, it does not produce a "proof of tampering".
        """
        session = self._executor.execute(program, env_input)
        if session.exit_code is ExitCode.ABORTED:
            raise GuestAbort(session.abort_reason or "unknown abort")
        return self.prove_session(session)

    def prove_session(self, session: ExecutionSession) -> ProveInfo:
        """Prove an already-executed (halted) session."""
        if session.exit_code is not ExitCode.HALTED:
            raise ProofError(
                f"cannot prove a session that exited with "
                f"{session.exit_code.name}"
            )
        with obs.tracer().span(
                obs_names.SPAN_PROVE,
                program=session.program.name,
                kind=self.opts.kind.name.lower()) as span:
            info = self._prove_session_inner(session, span)
        return info

    def _prove_session_inner(self, session: ExecutionSession,
                             span) -> ProveInfo:
        start = time.perf_counter()
        claim = ReceiptClaim(
            image_id=session.program.image_id,
            input_digest=session.input.digest,
            journal_digest=session.journal.digest,
            exit_code=session.exit_code,
            total_cycles=session.total_cycles,
            segment_count=session.segment_count,
            assumptions=session.assumptions,
        )
        composite = self._prove_composite(session, claim)
        inner: CompositeReceipt | SuccinctReceipt | Groth16Receipt
        if self.opts.kind is ReceiptKind.COMPOSITE:
            inner = composite
        else:
            succinct = SuccinctReceipt(
                seal=expand_seal(succinct_binding(claim.digest()),
                                 SUCCINCT_SEAL_SIZE))
            if self.opts.kind is ReceiptKind.SUCCINCT:
                inner = succinct
            else:
                inner = Groth16Receipt(
                    seal=expand_seal(groth16_binding(claim.digest()),
                                     GROTH16_SEAL_SIZE))
        wall = time.perf_counter() - start
        receipt = Receipt(inner=inner, journal=session.journal, claim=claim)
        stats = ProveStats(
            total_cycles=session.total_cycles,
            padded_cycles=session.padded_cycles,
            segment_count=session.segment_count,
            sha_compressions=session.sha_compressions,
            wall_seconds=wall,
            cycle_breakdown=dict(session.cycle_breakdown),
        )
        span.add_cycles(stats.total_cycles)
        span.set("segments", stats.segment_count)
        program = session.program.name
        registry = obs.registry()
        registry.counter(obs_names.PROVER_PROOFS,
                         ("program", "kind")).inc(
            program=program, kind=self.opts.kind.name.lower())
        registry.counter(obs_names.PROVER_CYCLES, ("program",)).inc(
            stats.total_cycles, program=program)
        registry.counter(obs_names.PROVER_SEGMENTS, ("program",)).inc(
            stats.segment_count, program=program)
        registry.histogram(obs_names.PROVER_SECONDS,
                           ("program",)).observe(wall, program=program)
        return ProveInfo(receipt=receipt, session=session, stats=stats)

    def _prove_composite(self, session: ExecutionSession,
                         claim: ReceiptClaim) -> CompositeReceipt:
        segment_receipts = tuple(
            SegmentReceipt(
                index=segment.index,
                cycle_count=segment.cycle_count,
                po2=segment.po2,
                segment_digest=segment.digest,
                seal=expand_seal(segment_seal_binding(segment.digest),
                                 SEGMENT_SEAL_SIZE),
            )
            for segment in session.segments
        )
        tree = MerkleTree(s.digest for s in session.segments)
        indices = derive_query_indices(claim, tree.root,
                                       len(session.segments),
                                       self.opts.num_queries)
        openings = tree.prove_many(indices)
        return CompositeReceipt(segments=segment_receipts,
                                trace_root=tree.root, openings=openings)


def prove(program: GuestProgram, env_input: ExecutorInput,
          opts: ProverOpts | None = None) -> ProveInfo:
    """Module-level convenience mirroring ``default_prover().prove()``."""
    return Prover(opts).prove(program, env_input)
