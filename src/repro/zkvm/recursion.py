"""Recursion: receipt compression and assumption resolution.

Two operations from RISC Zero's recursion circuit matter to the system:

* :func:`compress` — turn a composite receipt into a succinct one, or a
  succinct one into the 256-byte Groth16 wrap.  This is what keeps the
  "Proof (bytes)" column of Table 1 constant regardless of input size.
* :func:`resolve` — discharge an assumption recorded by an in-guest
  ``env.verify``.  The aggregation guest *assumes* the previous round's
  claim (Algorithm 1 step 1); the host then resolves that assumption
  against the actual previous receipt, yielding an unconditional receipt.
  A broken chain (missing or invalid previous receipt) makes resolution
  fail, so the final receipt simply cannot be produced.
"""

from __future__ import annotations

from ..errors import ChainError, ProofError
from .receipt import (
    GROTH16_SEAL_SIZE,
    Groth16Receipt,
    Receipt,
    ReceiptClaim,
    ReceiptKind,
    SUCCINCT_SEAL_SIZE,
    SuccinctReceipt,
    expand_seal,
    groth16_binding,
    succinct_binding,
)
from .verifier import Verifier

_KIND_ORDER = {
    ReceiptKind.COMPOSITE: 0,
    ReceiptKind.SUCCINCT: 1,
    ReceiptKind.GROTH16: 2,
}


def _reseal(claim: ReceiptClaim, kind: ReceiptKind
            ) -> SuccinctReceipt | Groth16Receipt:
    if kind is ReceiptKind.SUCCINCT:
        return SuccinctReceipt(
            seal=expand_seal(succinct_binding(claim.digest()),
                             SUCCINCT_SEAL_SIZE))
    if kind is ReceiptKind.GROTH16:
        return Groth16Receipt(
            seal=expand_seal(groth16_binding(claim.digest()),
                             GROTH16_SEAL_SIZE))
    raise ProofError(f"cannot reseal to {kind.value}")


def compress(receipt: Receipt, target: ReceiptKind) -> Receipt:
    """Compress a receipt to a smaller kind (composite→succinct→groth16).

    Compression first verifies the source receipt (conditionally — the
    assumptions, if any, carry over to the compressed claim), then emits
    the constant-size seal for the same claim.
    """
    if _KIND_ORDER[target] < _KIND_ORDER[receipt.kind]:
        raise ProofError(
            f"cannot decompress {receipt.kind.value} to {target.value}"
        )
    if target is receipt.kind:
        return receipt
    Verifier().verify_conditional(receipt, receipt.claim.image_id)
    inner = _reseal(receipt.claim, target)
    return Receipt(inner=inner, journal=receipt.journal,
                   claim=receipt.claim)


def resolve(conditional: Receipt, assumption_receipt: Receipt) -> Receipt:
    """Discharge one assumption of a conditional receipt.

    ``assumption_receipt`` must be an unconditional, fully verifiable
    receipt whose claim digest matches one of ``conditional``'s recorded
    assumptions.  Returns a receipt for the same execution with that
    assumption removed; the seal is re-derived for the new claim.
    """
    if conditional.kind is ReceiptKind.COMPOSITE:
        raise ProofError("compress the conditional receipt before resolving")
    assumptions = list(conditional.claim.assumptions)
    if not assumptions:
        raise ChainError("receipt has no assumptions to resolve")
    # The assumption receipt must itself verify, unconditionally.
    target_claim = assumption_receipt.claim
    Verifier().verify(assumption_receipt, target_claim.image_id)
    target_digest = target_claim.digest()
    matches = [a for a in assumptions
               if a.claim_digest == target_digest
               and a.image_id == target_claim.image_id]
    if not matches:
        raise ChainError(
            "provided receipt does not match any recorded assumption — "
            "the proof chain is broken"
        )
    assumptions.remove(matches[0])
    new_claim = ReceiptClaim(
        image_id=conditional.claim.image_id,
        input_digest=conditional.claim.input_digest,
        journal_digest=conditional.claim.journal_digest,
        exit_code=conditional.claim.exit_code,
        total_cycles=conditional.claim.total_cycles,
        segment_count=conditional.claim.segment_count,
        assumptions=tuple(assumptions),
    )
    return Receipt(inner=_reseal(new_claim, conditional.kind),
                   journal=conditional.journal, claim=new_claim)


def resolve_all(conditional: Receipt,
                assumption_receipts: list[Receipt]) -> Receipt:
    """Resolve every assumption, in any order; returns an unconditional
    receipt or raises :class:`~repro.errors.ChainError`."""
    receipt = conditional
    for assumption_receipt in assumption_receipts:
        receipt = resolve(receipt, assumption_receipt)
    if receipt.claim.assumptions:
        raise ChainError(
            f"{len(receipt.claim.assumptions)} assumptions remain "
            "unresolved after resolution"
        )
    return receipt
