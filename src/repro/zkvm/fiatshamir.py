"""Fiat–Shamir transcript for non-interactive proof binding.

The prover and verifier both drive a :class:`Transcript`: the prover
absorbs the public statement (image id, input digest, journal digest,
trace commitment root) and squeezes challenge indices that select which
trace segments to open; the verifier replays the same transcript and
checks the openings.  Any change to an absorbed value changes every
subsequent challenge, which is what makes the openings binding.
"""

from __future__ import annotations

from ..hashing import TAG_TRANSCRIPT, Digest, tagged_hash


class Transcript:
    """A labeled absorb/squeeze transcript over tagged SHA-256."""

    def __init__(self, protocol: str) -> None:
        self._state = tagged_hash(TAG_TRANSCRIPT, protocol.encode("utf-8"))
        self._counter = 0

    @property
    def state(self) -> Digest:
        return self._state

    def absorb(self, label: str, data: bytes | Digest) -> None:
        """Mix labeled data into the transcript state."""
        raw = data.raw if isinstance(data, Digest) else data
        self._state = tagged_hash(
            TAG_TRANSCRIPT,
            self._state.raw,
            len(label).to_bytes(2, "big"),
            label.encode("utf-8"),
            len(raw).to_bytes(8, "big"),
            raw,
        )

    def absorb_int(self, label: str, value: int) -> None:
        self.absorb(label, value.to_bytes(16, "big", signed=True))

    def challenge(self, label: str) -> Digest:
        """Squeeze a 32-byte challenge; advances the state."""
        self._counter += 1
        out = tagged_hash(
            TAG_TRANSCRIPT,
            self._state.raw,
            b"squeeze",
            len(label).to_bytes(2, "big"),
            label.encode("utf-8"),
            self._counter.to_bytes(8, "big"),
        )
        self._state = tagged_hash(TAG_TRANSCRIPT, self._state.raw, out.raw)
        return out

    def challenge_int(self, label: str, bound: int) -> int:
        """Squeeze a uniform integer in ``[0, bound)``.

        Uses rejection sampling over 128-bit draws so the tiny modulo bias
        of naive reduction is avoided (irrelevant for the simulation, but
        it keeps the construction honest).
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        limit = (1 << 128) - ((1 << 128) % bound)
        while True:
            draw = int.from_bytes(self.challenge(label).raw[:16], "big")
            if draw < limit:
                return draw % bound

    def challenge_indices(self, label: str, bound: int,
                          count: int) -> list[int]:
        """Squeeze ``count`` (possibly repeating) indices below ``bound``."""
        return [self.challenge_int(f"{label}/{i}", bound)
                for i in range(count)]
