"""Guest-side programming model (the analogue of ``risc0_zkvm::guest``).

A *guest program* is a deterministic Python callable ``fn(env)`` that may
only interact with the world through its :class:`GuestEnv`:

* ``env.read()`` — pop the next host-supplied input value;
* ``env.commit(value)`` — append a public output to the journal;
* ``env.sha256`` / ``env.tagged_hash`` / ``env.merkle_hasher()`` — hashing
  through the metered sha-256 accelerator;
* ``env.verify(image_id, claim_digest)`` — assume another receipt's claim
  (recursion / proof composition, used for the aggregation chain);
* ``env.tick(n)`` — charge generic compute cycles;
* ``env.abort(reason)`` — the ``abort`` of the paper's Algorithm 1.

Every operation is charged to the cycle meter, so executions have
deterministic cycle counts that the prover cost model converts into
modeled proving latency.

The program's *image id* is the digest of its source code and name — the
binding between a receipt and "which program produced this", like the
RISC-V ELF image id in RISC Zero.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from .. import hotpath
from ..errors import ConfigurationError
from ..hashing import (
    TAG_EMPTY,
    TAG_IMAGE_ID,
    TAG_LEAF,
    TAG_NODE,
    Digest,
    tagged_hash,
)
from ..merkle import memo as merkle_memo
from ..serialization import decode, encode
from . import cycles as cy
from .receipt import Assumption


class GuestAbortSignal(Exception):
    """Internal control-flow signal raised by ``env.abort``.

    The executor converts this into an ``ABORTED`` session; the prover
    surfaces it as :class:`repro.errors.GuestAbort` — an honest prover
    cannot emit a receipt for an aborted execution.
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


class GuestProgram:
    """A named, content-addressed guest program."""

    def __init__(self, fn: Callable[["GuestEnv"], None],
                 name: str | None = None) -> None:
        if not callable(fn):
            raise ConfigurationError("guest program must be callable")
        self.fn = fn
        self.name = name or getattr(fn, "__qualname__", "anonymous")
        self.image_id = compute_image_id(fn, self.name)

    def __call__(self, env: "GuestEnv") -> None:
        self.fn(env)

    def __repr__(self) -> str:
        return f"GuestProgram({self.name!r}, image={self.image_id.short()}...)"


def compute_image_id(fn: Callable[..., Any], name: str) -> Digest:
    """Digest of the guest's source — the receipt↔code binding."""
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        # Lambdas defined in a REPL etc.: fall back to the code object's
        # bytecode, which is still deterministic for a fixed interpreter.
        code = getattr(fn, "__code__", None)
        source = code.co_code.hex() if code is not None else repr(fn)
    return tagged_hash(TAG_IMAGE_ID, name.encode("utf-8"),
                       source.encode("utf-8"))


def guest_program(name: str | None = None):
    """Decorator turning a function into a :class:`GuestProgram`."""
    def wrap(fn: Callable[["GuestEnv"], None]) -> GuestProgram:
        return GuestProgram(fn, name=name or fn.__name__)
    return wrap


class CycleMeter:
    """Tracks cycles by category plus the sha-compression count."""

    def __init__(self) -> None:
        self.total = cy.EXECUTION_BASE_CYCLES
        self.by_category: dict[str, int] = {"base": cy.EXECUTION_BASE_CYCLES}
        self.sha_compressions = 0

    def charge(self, amount: int, category: str) -> None:
        if amount < 0:
            raise ConfigurationError("cannot charge negative cycles")
        self.total += amount
        self.by_category[category] = \
            self.by_category.get(category, 0) + amount

    def charge_sha(self, num_bytes: int, category: str) -> None:
        blocks = (num_bytes + 9 + 63) // 64
        self.sha_compressions += blocks
        self.charge(blocks * cy.SHA256_COMPRESS_CYCLES, category)

    def charge_sha_batch(self, lengths: list[int], category: str) -> None:
        """Price a whole buffer of messages in one accounting call.

        Each message still pays its own padding, so the total equals the
        sum of per-message :meth:`charge_sha` calls exactly.
        """
        blocks = cy.sha256_blocks_batch(lengths)
        self.sha_compressions += blocks
        self.charge(blocks * cy.SHA256_COMPRESS_CYCLES, category)


class GuestEnv:
    """Execution environment handed to guest programs."""

    def __init__(self, frames: tuple[bytes, ...]) -> None:
        self._frames = frames
        self._frame_pos = 0
        self._journal = bytearray()
        self._assumptions: list[Assumption] = []
        self._meter = CycleMeter()

    # -- I/O -------------------------------------------------------------------

    def read(self) -> Any:
        """Read the next input value from the host."""
        if self._frame_pos >= len(self._frames):
            self.abort("guest read past end of input")
        frame = self._frames[self._frame_pos]
        self._frame_pos += 1
        self._meter.charge(cy.io_cycles(len(frame)), "io")
        return decode(frame)

    def read_batch(self, count: int) -> list[Any]:
        """Read ``count`` input values through one buffered syscall.

        The hot path slices the frame buffer once and prices the whole
        transfer with a single batched I/O charge; per-frame word
        rounding is preserved, so the metered cycle total is identical
        to ``count`` individual :meth:`read` calls.
        """
        if count < 0:
            raise ConfigurationError("read_batch count must be non-negative")
        if count == 0:
            # An empty batch must not touch the meter: the loop below
            # would never charge, and a zero-amount charge would still
            # materialize an "io" category in the breakdown.
            return []
        if not hotpath.enabled():
            return [self.read() for _ in range(count)]
        end = self._frame_pos + count
        if end > len(self._frames):
            self.abort("guest read past end of input")
        frames = self._frames[self._frame_pos:end]
        self._frame_pos = end
        self._meter.charge(cy.io_cycles_batch([len(f) for f in frames]),
                           "io")
        return [decode(f) for f in frames]

    @property
    def frames_remaining(self) -> int:
        return len(self._frames) - self._frame_pos

    def commit(self, value: Any) -> None:
        """Append a public output to the journal."""
        frame = encode(value)
        self._meter.charge(cy.io_cycles(len(frame)), "io")
        # The journal is hashed into the claim; charge the accelerator.
        self._meter.charge_sha(len(frame), "io")
        self._journal.extend(frame)

    def commit_many(self, values: list[Any]) -> None:
        """Commit a batch of public outputs through one buffered syscall.

        Journal bytes are the exact concatenation of per-value
        :meth:`commit` frames, and the batched I/O + sha accounting sums
        the per-message charges, so both the journal and the cycle
        totals are byte-for-byte identical to the loop it replaces.
        """
        if not values:
            return  # keep the meter breakdown free of zero entries
        if not hotpath.enabled():
            for value in values:
                self.commit(value)
            return
        frames = [encode(value) for value in values]
        lengths = [len(frame) for frame in frames]
        self._meter.charge(cy.io_cycles_batch(lengths), "io")
        self._meter.charge_sha_batch(lengths, "io")
        self._journal.extend(b"".join(frames))

    # -- hashing ------------------------------------------------------------------

    def sha256(self, data: bytes, category: str = "hash") -> Digest:
        self._meter.charge_sha(len(data), category)
        from ..hashing import sha256 as _sha256
        return _sha256(data)

    def tagged_hash(self, tag: str, *parts: bytes,
                    category: str = "hash") -> Digest:
        total = sum(len(p) for p in parts)
        self._meter.charge_sha(total, category)
        return tagged_hash(tag, *parts)

    def hash_many(self, tag: str, items: list[bytes],
                  category: str = "hash") -> Digest:
        """Length-framed multi-item hash (window commitments use this)."""
        from ..hashing import hash_many as _hash_many
        total = sum(len(item) + 8 for item in items)
        self._meter.charge_sha(total, category)
        return _hash_many(tag, items)

    def merkle_hasher(self, category: str = "merkle") -> "MeteredMerkleHasher":
        """A Merkle hash strategy whose work is charged to the meter."""
        return MeteredMerkleHasher(self, category)

    # -- control ---------------------------------------------------------------------

    def tick(self, amount: int, category: str = "compute") -> None:
        """Charge generic compute cycles (loops, comparisons, arithmetic)."""
        self._meter.charge(amount, category)

    def abort(self, reason: str) -> None:
        """Terminate execution; no receipt can be produced (Algorithm 1)."""
        raise GuestAbortSignal(reason)

    def verify(self, image_id: Digest, claim_digest: Digest) -> None:
        """Assume another receipt's claim holds (``env::verify``).

        Adds an *assumption* to this execution; the resulting receipt is
        conditional until the host resolves the assumption against a real
        verified receipt (see :mod:`repro.zkvm.recursion`).  This is how
        Algorithm 1 step 1 — "Verify Previous Aggregation" — runs inside
        the zkVM without re-executing the previous round.
        """
        self._meter.charge(cy.ASSUMPTION_CYCLES, "verify")
        self._assumptions.append(
            Assumption(claim_digest=claim_digest, image_id=image_id)
        )

    # -- introspection (host side, after execution) ------------------------------------

    @property
    def journal_data(self) -> bytes:
        return bytes(self._journal)

    @property
    def assumptions(self) -> tuple[Assumption, ...]:
        return tuple(self._assumptions)

    @property
    def meter(self) -> CycleMeter:
        return self._meter


class MeteredMerkleHasher:
    """Merkle hash strategy charging the guest cycle meter.

    Implements the :class:`repro.merkle.hasher.MerkleHasher` protocol with
    identical digests to the host-side hasher — proofs generated on the
    host verify inside the guest and vice versa — while every compression
    is charged to the meter under the given category.
    """

    algorithm = "tagged-sha256"

    def __init__(self, env: GuestEnv, category: str = "merkle") -> None:
        self._env = env
        self._category = category

    # Two 32-byte child digests: every interior node hashes 64 bytes.
    _NODE_INPUT_BYTES = 2 * 32

    def leaf(self, data: bytes) -> Digest:
        if not hotpath.enabled():
            return self._env.tagged_hash(TAG_LEAF, data,
                                         category=self._category)
        # Cycles are charged unconditionally — the memo saves host CPU,
        # never modeled guest work — so cycle totals stay identical.
        self._env.meter.charge_sha(len(data), self._category)
        return merkle_memo.leaf_digest(data)

    def node(self, left: Digest, right: Digest) -> Digest:
        if not hotpath.enabled():
            return self._env.tagged_hash(TAG_NODE, left.raw, right.raw,
                                         category=self._category)
        self._env.meter.charge_sha(self._NODE_INPUT_BYTES, self._category)
        return merkle_memo.node_digest(left, right)

    def empty(self) -> Digest:
        return tagged_hash(TAG_EMPTY, b"")
