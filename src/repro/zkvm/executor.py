"""Executor: run a guest program and capture its execution session.

Execution is the *non-proving* half of the pipeline (like
``risc0_zkvm::Executor``): it runs the guest against prepared inputs,
meters cycles, splits the run into power-of-two padded segments, and
derives the segment digest chain that the prover later commits to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import GuestAbort
from ..hashing import TAG_INPUT, TAG_SEGMENT, Digest, hash_many, tagged_hash
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..serialization import encode
from . import cycles as cy
from .guest import GuestAbortSignal, GuestEnv, GuestProgram
from .receipt import Assumption, ExitCode, Journal


@dataclass(frozen=True)
class ExecutorInput:
    """Prepared host→guest input: encoded frames plus their digest."""

    frames: tuple[bytes, ...]

    @property
    def digest(self) -> Digest:
        return hash_many(TAG_INPUT, self.frames)

    @property
    def total_bytes(self) -> int:
        return sum(len(f) for f in self.frames)


class ExecutorEnvBuilder:
    """Builds an :class:`ExecutorInput` value by value.

    Mirrors ``ExecutorEnv::builder().write(&x)...build()``.
    """

    def __init__(self) -> None:
        self._frames: list[bytes] = []

    def write(self, value: Any) -> "ExecutorEnvBuilder":
        self._frames.append(encode(value))
        return self

    def write_frame(self, frame: bytes) -> "ExecutorEnvBuilder":
        self._frames.append(bytes(frame))
        return self

    def build(self) -> ExecutorInput:
        return ExecutorInput(frames=tuple(self._frames))


@dataclass(frozen=True)
class Segment:
    """One power-of-two padded chunk of the execution trace."""

    index: int
    cycle_count: int
    po2: int
    digest: Digest

    @property
    def padded_cycles(self) -> int:
        return 1 << self.po2


@dataclass
class ExecutionSession:
    """Everything the prover needs about one guest run."""

    program: GuestProgram
    input: ExecutorInput
    journal: Journal
    exit_code: ExitCode
    total_cycles: int
    cycle_breakdown: dict[str, int]
    sha_compressions: int
    segments: tuple[Segment, ...]
    assumptions: tuple[Assumption, ...]
    abort_reason: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    @property
    def padded_cycles(self) -> int:
        return sum(s.padded_cycles for s in self.segments)

    def cycles_in(self, category: str) -> int:
        return self.cycle_breakdown.get(category, 0)


def _build_segments(image_id: Digest, total_cycles: int) -> tuple[Segment, ...]:
    """Split the metered cycle count into a chained segment sequence."""
    segments: list[Segment] = []
    remaining = max(total_cycles, 1)
    prev = Digest.zero()
    index = 0
    while remaining > 0:
        count = min(remaining, cy.SEGMENT_CYCLE_LIMIT)
        remaining -= count
        po2 = _po2_for(count)
        digest = tagged_hash(
            TAG_SEGMENT,
            image_id.raw,
            index.to_bytes(4, "big"),
            count.to_bytes(8, "big"),
            po2.to_bytes(1, "big"),
            prev.raw,
        )
        segments.append(Segment(index=index, cycle_count=count,
                                po2=po2, digest=digest))
        prev = digest
        index += 1
    return tuple(segments)


def _po2_for(cycle_count: int) -> int:
    po2 = cy.SEGMENT_MIN_PO2
    while (1 << po2) < cycle_count:
        po2 += 1
    return po2


def segment_chain(image_id: Digest,
                  segments: tuple[Segment, ...]) -> tuple[Digest, ...]:
    """Recompute the expected digest chain (verifier side)."""
    prev = Digest.zero()
    chain: list[Digest] = []
    for index, segment in enumerate(segments):
        digest = tagged_hash(
            TAG_SEGMENT,
            image_id.raw,
            index.to_bytes(4, "big"),
            segment.cycle_count.to_bytes(8, "big"),
            segment.po2.to_bytes(1, "big"),
            prev.raw,
        )
        chain.append(digest)
        prev = digest
    return tuple(chain)


class Executor:
    """Runs guest programs to completion (or abort) and meters them."""

    def execute(self, program: GuestProgram,
                env_input: ExecutorInput) -> ExecutionSession:
        """Run ``program`` over ``env_input``.

        Returns a session in ``HALTED`` or ``ABORTED`` state; any other
        guest exception propagates (it is a bug in the guest, not a
        telemetry integrity failure).
        """
        with obs.tracer().span(obs_names.SPAN_EXECUTE,
                               program=program.name) as span:
            env = GuestEnv(env_input.frames)
            exit_code = ExitCode.HALTED
            abort_reason: str | None = None
            try:
                program(env)
            except GuestAbortSignal as signal:
                exit_code = ExitCode.ABORTED
                abort_reason = signal.reason
            meter = env.meter
            session = ExecutionSession(
                program=program,
                input=env_input,
                journal=Journal(env.journal_data),
                exit_code=exit_code,
                total_cycles=meter.total,
                cycle_breakdown=dict(meter.by_category),
                sha_compressions=meter.sha_compressions,
                segments=_build_segments(program.image_id, meter.total),
                assumptions=env.assumptions,
                abort_reason=abort_reason,
            )
            span.add_cycles(session.total_cycles)
            span.set("segments", session.segment_count)
            span.set("exit_code", exit_code.name.lower())
            registry = obs.registry()
            registry.counter(
                obs_names.EXECUTOR_SESSIONS, ("program", "exit_code"),
            ).inc(program=program.name,
                  exit_code=exit_code.name.lower())
            registry.counter(
                obs_names.EXECUTOR_CYCLES, ("program",),
            ).inc(session.total_cycles, program=program.name)
        return session

    def execute_expecting_success(self, program: GuestProgram,
                                  env_input: ExecutorInput
                                  ) -> ExecutionSession:
        """Run and raise :class:`GuestAbort` if the guest aborted."""
        session = self.execute(program, env_input)
        if session.exit_code is ExitCode.ABORTED:
            raise GuestAbort(session.abort_reason or "unknown abort")
        return session
