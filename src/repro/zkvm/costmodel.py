"""Prover latency model, calibrated to the paper's measurements.

Our simulated zkVM executes in milliseconds of real time; what the paper
measures is STARK proving on a 16-core Threadripper, where the 3,000-entry
aggregation takes ≈87 minutes.  The cost model converts *metered cycles*
(a deterministic property of the guest execution) into modeled prover
seconds per backend:

* ``CPU_ZKVM`` — RISC Zero 3.0 on the paper's testbed.  The throughput
  constant is calibrated once, against the paper's single 3,000-entry
  aggregation endpoint; every other point on every curve is then
  *predicted* from metered cycles, and EXPERIMENTS.md compares those
  predictions against the paper's other measurements.
* ``GPU_ZKVM`` — §7 "GPU acceleration": order-of-magnitude faster.
* ``SPECIALIZED_HASH`` — §7 "Specialization proof systems": a dedicated
  hash-proving system at 600,000 hashes/second (the StarkWare M3 figure
  the paper cites), charged per sha-256 compression instead of per cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .executor import ExecutionSession
from .prover import ProveStats

# Calibrated so that the Figure-4 aggregation guest at 3,000 entries lands
# at the paper's ≈87 min (see tests/unit/test_costmodel.py and
# benchmarks/bench_fig4_proof_latency.py for the check).
CPU_CYCLES_PER_SECOND = 2_830.0

# §7: "preliminary benchmarks suggest that GPU-assisted hashing and
# modular arithmetic can yield order-of-magnitude improvements."
GPU_SPEEDUP = 10.0

# §7: "the work of [2] offers 600,000 hashes per second on an M3 MacBook".
SPECIALIZED_HASHES_PER_SECOND = 600_000.0

# Fixed per-proof overheads: setup, witness generation, SNARK wrap.
BASE_OVERHEAD_SECONDS = 12.0
SEGMENT_OVERHEAD_SECONDS = 1.5

# Constant client-side verification (paper §6: 3 ms at every scale).
VERIFY_SECONDS = 0.003


class ProverBackend(enum.Enum):
    CPU_ZKVM = "cpu-zkvm"
    GPU_ZKVM = "gpu-zkvm"
    SPECIALIZED_HASH = "specialized-hash"


@dataclass(frozen=True)
class CostEstimate:
    """Modeled prover latency for one execution on one backend."""

    backend: ProverBackend
    seconds: float
    cycles: int
    sha_compressions: int

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0


class CostModel:
    """Converts metered execution stats into modeled prover latency."""

    def __init__(self,
                 cpu_cycles_per_second: float = CPU_CYCLES_PER_SECOND,
                 gpu_speedup: float = GPU_SPEEDUP,
                 specialized_hashes_per_second: float =
                 SPECIALIZED_HASHES_PER_SECOND,
                 base_overhead: float = BASE_OVERHEAD_SECONDS,
                 segment_overhead: float = SEGMENT_OVERHEAD_SECONDS) -> None:
        if cpu_cycles_per_second <= 0:
            raise ValueError("cpu_cycles_per_second must be positive")
        self.cpu_cycles_per_second = cpu_cycles_per_second
        self.gpu_speedup = gpu_speedup
        self.specialized_hashes_per_second = specialized_hashes_per_second
        self.base_overhead = base_overhead
        self.segment_overhead = segment_overhead

    # -- proving ---------------------------------------------------------------

    def prove_seconds(self, stats: "ProveStats | ExecutionSession",
                      backend: ProverBackend = ProverBackend.CPU_ZKVM
                      ) -> float:
        return self.estimate(stats, backend).seconds

    def estimate(self, stats: "ProveStats | ExecutionSession",
                 backend: ProverBackend = ProverBackend.CPU_ZKVM
                 ) -> CostEstimate:
        padded = stats.padded_cycles
        segments = stats.segment_count
        sha = stats.sha_compressions
        if backend is ProverBackend.SPECIALIZED_HASH:
            seconds = sha / self.specialized_hashes_per_second \
                + self.base_overhead
        else:
            seconds = padded / self.cpu_cycles_per_second \
                + segments * self.segment_overhead + self.base_overhead
            if backend is ProverBackend.GPU_ZKVM:
                seconds /= self.gpu_speedup
        total = stats.total_cycles
        return CostEstimate(backend=backend, seconds=seconds,
                            cycles=total, sha_compressions=sha)

    # -- parallel proving (§7 "Proof parallelization") ---------------------------

    def parallel_prove_seconds(self, partition_stats: list[ProveStats],
                               backend: ProverBackend =
                               ProverBackend.CPU_ZKVM,
                               join_overhead: float | None = None) -> float:
        """Modeled wall time when partitions are proven concurrently.

        End-to-end latency is the slowest partition plus a logarithmic
        join tree (each join merges two succinct receipts).
        """
        if not partition_stats:
            raise ValueError("need at least one partition")
        overhead = self.segment_overhead if join_overhead is None \
            else join_overhead
        slowest = max(self.prove_seconds(s, backend)
                      for s in partition_stats)
        joins = max(len(partition_stats) - 1, 0)
        join_levels = max((joins).bit_length(), 0)
        return slowest + join_levels * overhead

    # -- verification -------------------------------------------------------------

    def verify_seconds(self, segment_count: int = 1,
                       succinct: bool = True) -> float:
        """Modeled client verification latency (constant for succinct)."""
        if succinct:
            return VERIFY_SECONDS
        return VERIFY_SECONDS * max(segment_count, 1)
