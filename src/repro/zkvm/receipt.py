"""Receipts: the proof objects produced by the zkVM prover.

Mirrors RISC Zero's receipt hierarchy:

* :class:`CompositeReceipt` — one STARK-style receipt per execution
  segment plus Fiat–Shamir openings into the trace commitment; size grows
  with execution length.
* :class:`SuccinctReceipt` — segments recursively lifted/joined into one
  constant-size receipt.
* :class:`Groth16Receipt` — the succinct receipt wrapped into a constant
  **256-byte** seal, the "Proof (bytes)" column of the paper's Table 1.

Every receipt carries a :class:`ReceiptClaim` — the public statement
(image id, input digest, journal digest, exit code, assumptions) — and a
:class:`Journal` of public outputs.  JSON serialization hex-encodes the
journal, which is why serialized receipts weigh ≈ 2× the journal, matching
Table 1's Receipt column.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import SerializationError
from ..hashing import (
    TAG_ASSUMPTION,
    TAG_CLAIM,
    TAG_JOURNAL,
    TAG_SEAL,
    Digest,
    hash_many,
    tagged_hash,
)
from ..merkle.proof import MultiProof
from ..serialization import decode_stream, encode

# Version tag mixed into every seal, standing in for RISC Zero's verifier
# parameter digest (circuit version / control root).
VERIFIER_PARAMETERS = tagged_hash(TAG_SEAL, b"repro-zkvm-verifier-v1")

GROTH16_SEAL_SIZE = 256
SUCCINCT_SEAL_SIZE = 2048


class ExitCode(enum.IntEnum):
    """Terminal state of a guest execution."""

    HALTED = 0
    PAUSED = 1
    ABORTED = 2


class ReceiptKind(str, enum.Enum):
    COMPOSITE = "composite"
    SUCCINCT = "succinct"
    GROTH16 = "groth16"


class Journal:
    """Public outputs: concatenated canonical encodings of committed values."""

    __slots__ = ("_data",)

    def __init__(self, data: bytes = b"") -> None:
        self._data = bytes(data)

    @property
    def data(self) -> bytes:
        return self._data

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def digest(self) -> Digest:
        return tagged_hash(TAG_JOURNAL, self._data)

    def values(self) -> Iterator[Any]:
        """Decode the committed values back out of the journal."""
        return decode_stream(self._data)

    def decode(self) -> list[Any]:
        return list(self.values())

    def decode_one(self) -> Any:
        values = self.decode()
        if len(values) != 1:
            raise SerializationError(
                f"journal holds {len(values)} values, expected exactly 1"
            )
        return values[0]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Journal):
            return self._data == other._data
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return f"Journal({len(self._data)} bytes, {self.digest.short()}...)"


@dataclass(frozen=True)
class Assumption:
    """An unresolved in-guest ``env.verify`` of another receipt's claim."""

    claim_digest: Digest
    image_id: Digest

    @property
    def digest(self) -> Digest:
        return tagged_hash(TAG_ASSUMPTION, self.claim_digest.raw,
                           self.image_id.raw)

    def to_wire(self) -> dict[str, Any]:
        return {"claim_digest": self.claim_digest, "image_id": self.image_id}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Assumption":
        return cls(claim_digest=wire["claim_digest"],
                   image_id=wire["image_id"])


@dataclass(frozen=True)
class ReceiptClaim:
    """The public statement a receipt attests to."""

    image_id: Digest
    input_digest: Digest
    journal_digest: Digest
    exit_code: ExitCode
    total_cycles: int
    segment_count: int
    assumptions: tuple[Assumption, ...] = ()

    @property
    def assumptions_digest(self) -> Digest:
        return hash_many(TAG_ASSUMPTION,
                         (a.digest.raw for a in self.assumptions))

    def digest(self) -> Digest:
        return tagged_hash(
            TAG_CLAIM,
            self.image_id.raw,
            self.input_digest.raw,
            self.journal_digest.raw,
            int(self.exit_code).to_bytes(4, "big"),
            self.total_cycles.to_bytes(8, "big"),
            self.segment_count.to_bytes(4, "big"),
            self.assumptions_digest.raw,
        )

    def to_wire(self) -> dict[str, Any]:
        return {
            "image_id": self.image_id,
            "input_digest": self.input_digest,
            "journal_digest": self.journal_digest,
            "exit_code": int(self.exit_code),
            "total_cycles": self.total_cycles,
            "segment_count": self.segment_count,
            "assumptions": [a.to_wire() for a in self.assumptions],
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ReceiptClaim":
        return cls(
            image_id=wire["image_id"],
            input_digest=wire["input_digest"],
            journal_digest=wire["journal_digest"],
            exit_code=ExitCode(wire["exit_code"]),
            total_cycles=wire["total_cycles"],
            segment_count=wire["segment_count"],
            assumptions=tuple(Assumption.from_wire(a)
                              for a in wire["assumptions"]),
        )


def expand_seal(binding: Digest, size: int) -> bytes:
    """Deterministically expand a binding digest into a ``size``-byte seal.

    Stands in for the SNARK proof bytes: each 32-byte lane is
    ``H(tag, binding, lane_index)``, so the seal is a pure function of the
    claim binding and any claim change invalidates it.  (Simulated
    soundness — see the package docstring and DESIGN.md §6.)
    """
    lanes = []
    for lane in range((size + 31) // 32):
        lanes.append(tagged_hash(TAG_SEAL, binding.raw,
                                 lane.to_bytes(4, "big")).raw)
    return b"".join(lanes)[:size]


def groth16_binding(claim_digest: Digest) -> Digest:
    return tagged_hash(TAG_SEAL, b"groth16", VERIFIER_PARAMETERS.raw,
                       claim_digest.raw)


def succinct_binding(claim_digest: Digest) -> Digest:
    return tagged_hash(TAG_SEAL, b"succinct", VERIFIER_PARAMETERS.raw,
                       claim_digest.raw)


@dataclass(frozen=True)
class SegmentReceipt:
    """Proof for one 2^po2-cycle execution segment."""

    index: int
    cycle_count: int
    po2: int
    segment_digest: Digest
    seal: bytes

    def to_wire(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "cycle_count": self.cycle_count,
            "po2": self.po2,
            "segment_digest": self.segment_digest,
            "seal": self.seal,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "SegmentReceipt":
        return cls(index=wire["index"], cycle_count=wire["cycle_count"],
                   po2=wire["po2"],
                   segment_digest=wire["segment_digest"], seal=wire["seal"])


@dataclass(frozen=True)
class CompositeReceipt:
    """Per-segment receipts plus Fiat–Shamir openings into the trace root."""

    segments: tuple[SegmentReceipt, ...]
    trace_root: Digest
    openings: MultiProof

    kind = ReceiptKind.COMPOSITE

    @property
    def seal_bytes(self) -> bytes:
        return b"".join(s.seal for s in self.segments)

    def to_wire(self) -> dict[str, Any]:
        return {
            "segments": [s.to_wire() for s in self.segments],
            "trace_root": self.trace_root,
            "openings": self.openings.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "CompositeReceipt":
        return cls(
            segments=tuple(SegmentReceipt.from_wire(s)
                           for s in wire["segments"]),
            trace_root=wire["trace_root"],
            openings=MultiProof.from_wire(wire["openings"]),
        )


@dataclass(frozen=True)
class SuccinctReceipt:
    """Recursively joined constant-size receipt."""

    seal: bytes
    kind = ReceiptKind.SUCCINCT

    @property
    def seal_bytes(self) -> bytes:
        return self.seal

    def to_wire(self) -> dict[str, Any]:
        return {"seal": self.seal}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "SuccinctReceipt":
        return cls(seal=wire["seal"])


@dataclass(frozen=True)
class Groth16Receipt:
    """The 256-byte SNARK wrap — Table 1's constant "Proof" column."""

    seal: bytes
    kind = ReceiptKind.GROTH16

    def __post_init__(self) -> None:
        if len(self.seal) != GROTH16_SEAL_SIZE:
            raise SerializationError(
                f"groth16 seal must be {GROTH16_SEAL_SIZE} bytes, "
                f"got {len(self.seal)}"
            )

    @property
    def seal_bytes(self) -> bytes:
        return self.seal

    def to_wire(self) -> dict[str, Any]:
        return {"seal": self.seal}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Groth16Receipt":
        return cls(seal=wire["seal"])


_INNER_TYPES = {
    ReceiptKind.COMPOSITE: CompositeReceipt,
    ReceiptKind.SUCCINCT: SuccinctReceipt,
    ReceiptKind.GROTH16: Groth16Receipt,
}


@dataclass(frozen=True)
class Receipt:
    """A complete proof object: inner seal + journal + claim."""

    inner: CompositeReceipt | SuccinctReceipt | Groth16Receipt
    journal: Journal
    claim: ReceiptClaim
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> ReceiptKind:
        return self.inner.kind

    @property
    def claim_digest(self) -> Digest:
        return self.claim.digest()

    # -- sizes (Table 1 columns) --------------------------------------------

    @property
    def seal_size(self) -> int:
        """"Proof (bytes)": size of the cryptographic seal alone."""
        return len(self.inner.seal_bytes)

    @property
    def journal_size(self) -> int:
        """"Journal": size of the public outputs."""
        return self.journal.size

    @property
    def receipt_size(self) -> int:
        """"Receipt": size of the full serialized receipt (JSON form)."""
        return len(self.to_json_bytes())

    # -- serialization ---------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "inner": self.inner.to_wire(),
            "journal": self.journal.data,
            "claim": self.claim.to_wire(),
        }

    def to_bytes(self) -> bytes:
        return encode(self.to_wire())

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Receipt":
        kind = ReceiptKind(wire["kind"])
        inner = _INNER_TYPES[kind].from_wire(wire["inner"])
        return cls(inner=inner, journal=Journal(wire["journal"]),
                   claim=ReceiptClaim.from_wire(wire["claim"]))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Receipt":
        from ..serialization import decode
        wire = decode(data)
        if not isinstance(wire, dict):
            raise SerializationError("receipt encoding must be a dict")
        return cls.from_wire(wire)

    def to_json_bytes(self) -> bytes:
        """Portable JSON form (hex-encoded binary fields).

        This is the interchange format a client downloads, and the size
        reported in Table 1's "Receipt" column: hex-encoding the journal
        is what gives the ≈ 2× journal→receipt ratio the paper observed.
        """
        return json.dumps(_jsonify(self.to_wire()),
                          separators=(",", ":"), sort_keys=True).encode()

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "Receipt":
        return cls.from_wire(_unjsonify(json.loads(data.decode())))

    def __repr__(self) -> str:
        return (f"Receipt(kind={self.kind.value}, "
                f"journal={self.journal.size}B, seal={self.seal_size}B, "
                f"claim={self.claim_digest.short()}...)")


def _jsonify(value: Any) -> Any:
    if isinstance(value, Digest):
        return {"$digest": value.hex()}
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    if isinstance(value, list):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {"$digest"}:
            return Digest.from_hex(value["$digest"])
        if set(value.keys()) == {"$bytes"}:
            return bytes.fromhex(value["$bytes"])
        return {k: _unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unjsonify(v) for v in value]
    return value
