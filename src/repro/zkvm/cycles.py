"""Cycle-cost constants for the simulated zkVM.

The meter charges guest-visible operations the way RISC Zero's circuit
does: the sha-256 accelerator costs a fixed number of cycles per 64-byte
compression block, I/O costs per word transferred, and generic compute is
charged explicitly by the guest through ``env.tick``.

The absolute values matter less than their *ratios* — the prover cost
model (:mod:`repro.zkvm.costmodel`) is calibrated end-to-end against the
paper's measured latencies, and the ratios determine the reproduced curve
shapes (Figure 4) and the Merkle-dominance profile (§6).
"""

from __future__ import annotations

# One sha-256 compression (64-byte block) in the accelerator circuit.
SHA256_COMPRESS_CYCLES = 68

# Guest/host I/O: cycles per 4-byte word moved through env.read/env.commit.
IO_CYCLES_PER_WORD = 2

# Generic RISC-V instruction (ALU op, branch, load/store).
ALU_CYCLES = 1

# env::verify of a prior receipt claim inside the guest (recursion
# assumption).  Constant: the claim digest is absorbed, resolution happens
# outside the segment circuit.
ASSUMPTION_CYCLES = 5_000

# Fixed per-execution overhead (setup, ECALLs, halt).
EXECUTION_BASE_CYCLES = 10_000

# Segments: RISC Zero proves execution in power-of-two chunks.
SEGMENT_CYCLE_LIMIT = 1 << 20

# Per-segment constant padding: a segment is proven as a full power-of-two
# trace, so partially filled segments still pay for their po2 size.
SEGMENT_MIN_PO2 = 13  # smallest segment size 2^13


def words_for_bytes(num_bytes: int) -> int:
    """4-byte words needed to transfer ``num_bytes`` (rounded up)."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return (num_bytes + 3) // 4


def sha256_blocks(num_bytes: int) -> int:
    """64-byte compression blocks to hash ``num_bytes`` (midstate rule)."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return (num_bytes + 9 + 63) // 64


def sha256_blocks_batch(lengths) -> int:
    """Total compression blocks for a batch of messages.

    Each message pays its own padding (``ceil((len + 9) / 64)``), so the
    batch total equals the sum of per-message charges — one accounting
    call prices a whole buffer of guest syscalls without changing the
    metered cycle count.
    """
    total = 0
    for num_bytes in lengths:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        total += (num_bytes + 9 + 63) // 64
    return total


def io_cycles_batch(lengths) -> int:
    """Total I/O cycles for a batch of frames (per-frame word rounding)."""
    total = 0
    for num_bytes in lengths:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        total += (num_bytes + 3) // 4
    return total * IO_CYCLES_PER_WORD


def sha256_cycles(num_bytes: int, *, midstate: bool = True) -> int:
    """Cycles to hash ``num_bytes`` through the sha accelerator.

    ``midstate=True`` models tag-prefix midstate caching (the 64-byte
    domain-separation prefix is absorbed once, off the metered path), so a
    message costs ``ceil((len + 9) / 64)`` compressions.
    """
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    blocks = (num_bytes + 9 + 63) // 64
    if not midstate:
        blocks += 1
    return blocks * SHA256_COMPRESS_CYCLES


def io_cycles(num_bytes: int) -> int:
    """Cycles to move ``num_bytes`` across the guest/host boundary."""
    return words_for_bytes(num_bytes) * IO_CYCLES_PER_WORD


def segment_count(total_cycles: int) -> int:
    """How many segments an execution of ``total_cycles`` splits into."""
    if total_cycles <= 0:
        return 1
    return (total_cycles + SEGMENT_CYCLE_LIMIT - 1) // SEGMENT_CYCLE_LIMIT


def padded_segment_cycles(cycle_count: int) -> int:
    """Power-of-two padded size actually proven for one segment."""
    po2 = SEGMENT_MIN_PO2
    while (1 << po2) < cycle_count:
        po2 += 1
    return 1 << po2
