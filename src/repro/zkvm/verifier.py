"""Receipt verification — the client-side 3 ms check.

Verification never re-executes the guest.  It checks, per receipt kind:

* **groth16 / succinct** — the constant-size seal is a deterministic
  function of the claim digest; recompute and compare.  Constant time,
  which is why the paper reports flat ≈3 ms verification at every scale.
* **composite** — recompute the segment digest chain from the claimed
  image id and per-segment cycle counts, rebuild the trace commitment,
  replay the Fiat–Shamir transcript, and check every opening and segment
  seal.

In all cases the journal is re-hashed and compared against the digest
bound in the claim, so journal tampering is always caught.
"""

from __future__ import annotations

import hmac
import time
from dataclasses import dataclass

from ..errors import (
    ImageIdMismatch,
    JournalMismatch,
    SealError,
    VerificationError,
)
from ..hashing import Digest
from ..merkle import MerkleTree
from ..obs import names as obs_names
from ..obs import runtime as obs
from .executor import Segment, segment_chain
from .prover import SEGMENT_SEAL_SIZE, derive_query_indices, \
    segment_seal_binding
from .receipt import (
    CompositeReceipt,
    ExitCode,
    Groth16Receipt,
    GROTH16_SEAL_SIZE,
    Journal,
    Receipt,
    ReceiptClaim,
    SuccinctReceipt,
    SUCCINCT_SEAL_SIZE,
    expand_seal,
    groth16_binding,
    succinct_binding,
)

# Modeled constant client-side verification latency (paper §6: "3 ms").
MODELED_VERIFY_SECONDS = 0.003


@dataclass(frozen=True)
class VerifiedReceipt:
    """Outcome of a successful verification."""

    claim: ReceiptClaim
    journal: Journal
    modeled_seconds: float

    @property
    def image_id(self) -> Digest:
        return self.claim.image_id


class Verifier:
    """Verifies receipts against an expected guest image id."""

    def verify(self, receipt: Receipt, image_id: Digest) -> VerifiedReceipt:
        """Fully verify an *unconditional* receipt.

        Raises a :class:`~repro.errors.VerificationError` subclass on any
        failure; returns the verified claim and journal on success.
        """
        kind = _inner_kind(receipt)
        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_VERIFY,
                               kind=kind) as span:
            try:
                if receipt.claim.assumptions:
                    raise VerificationError(
                        "receipt is conditional on unresolved "
                        "assumptions; resolve them first "
                        "(repro.zkvm.recursion.resolve)"
                    )
                verified = self.verify_conditional(receipt, image_id)
            except Exception:
                obs.registry().counter(
                    obs_names.VERIFIER_RECEIPTS, ("kind", "outcome"),
                ).inc(kind=kind, outcome="fail")
                raise
            span.set("segments", receipt.claim.segment_count)
        registry = obs.registry()
        registry.counter(obs_names.VERIFIER_RECEIPTS,
                         ("kind", "outcome")).inc(kind=kind,
                                                  outcome="ok")
        registry.histogram(obs_names.VERIFIER_SECONDS).observe(
            time.perf_counter() - start)
        return verified

    def verify_conditional(self, receipt: Receipt,
                           image_id: Digest) -> VerifiedReceipt:
        """Verify a receipt, allowing unresolved assumptions.

        Used internally by assumption resolution; external callers should
        use :meth:`verify`.
        """
        claim = receipt.claim
        if claim.image_id != image_id:
            raise ImageIdMismatch(
                f"receipt was produced by image {claim.image_id.short()}..., "
                f"expected {image_id.short()}..."
            )
        if claim.exit_code is not ExitCode.HALTED:
            raise VerificationError(
                f"receipt exit code is {claim.exit_code.name}, not HALTED"
            )
        if receipt.journal.digest != claim.journal_digest:
            raise JournalMismatch(
                "journal bytes do not hash to the digest bound in the claim"
            )
        inner = receipt.inner
        if isinstance(inner, Groth16Receipt):
            self._check_expanded_seal(
                inner.seal, groth16_binding(claim.digest()),
                GROTH16_SEAL_SIZE, "groth16")
            modeled = MODELED_VERIFY_SECONDS
        elif isinstance(inner, SuccinctReceipt):
            self._check_expanded_seal(
                inner.seal, succinct_binding(claim.digest()),
                SUCCINCT_SEAL_SIZE, "succinct")
            modeled = MODELED_VERIFY_SECONDS
        elif isinstance(inner, CompositeReceipt):
            self._verify_composite(inner, claim)
            modeled = MODELED_VERIFY_SECONDS * max(claim.segment_count, 1)
        else:
            raise VerificationError(
                f"unknown inner receipt type {type(inner).__name__}"
            )
        return VerifiedReceipt(claim=claim, journal=receipt.journal,
                               modeled_seconds=modeled)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_expanded_seal(seal: bytes, binding: Digest, size: int,
                             kind: str) -> None:
        expected = expand_seal(binding, size)
        if not hmac.compare_digest(seal, expected):
            raise SealError(f"{kind} seal does not verify against the claim")

    def _verify_composite(self, inner: CompositeReceipt,
                          claim: ReceiptClaim) -> None:
        if len(inner.segments) != claim.segment_count:
            raise SealError(
                f"composite receipt has {len(inner.segments)} segments, "
                f"claim states {claim.segment_count}"
            )
        if sum(s.cycle_count for s in inner.segments) != claim.total_cycles:
            raise SealError("segment cycle counts do not sum to the claim's "
                            "total cycles")
        # Recompute the segment digest chain from public data.
        stated = tuple(
            Segment(index=s.index, cycle_count=s.cycle_count, po2=s.po2,
                    digest=s.segment_digest)
            for s in inner.segments
        )
        expected_chain = segment_chain(claim.image_id, stated)
        for segment, expected in zip(inner.segments, expected_chain):
            if segment.segment_digest != expected:
                raise SealError(
                    f"segment {segment.index} digest breaks the chain"
                )
            self._check_expanded_seal(
                segment.seal, segment_seal_binding(segment.segment_digest),
                SEGMENT_SEAL_SIZE, f"segment {segment.index}")
        # Rebuild the trace commitment and replay Fiat–Shamir.
        tree = MerkleTree(s.segment_digest for s in inner.segments)
        if tree.root != inner.trace_root:
            raise SealError("trace commitment root mismatch")
        indices = derive_query_indices(claim, inner.trace_root,
                                       len(inner.segments),
                                       num_queries=16)
        if tuple(sorted(set(indices))) != inner.openings.indices:
            raise SealError("composite openings do not match the "
                            "Fiat-Shamir challenge indices")
        inner.openings.verify(inner.trace_root)


def _inner_kind(receipt: Receipt) -> str:
    inner = receipt.inner
    if isinstance(inner, Groth16Receipt):
        return "groth16"
    if isinstance(inner, SuccinctReceipt):
        return "succinct"
    if isinstance(inner, CompositeReceipt):
        return "composite"
    return type(inner).__name__.lower()


_DEFAULT_VERIFIER = Verifier()


def verify_receipt(receipt: Receipt, image_id: Digest) -> VerifiedReceipt:
    """Module-level convenience: verify with the default verifier."""
    return _DEFAULT_VERIFIER.verify(receipt, image_id)
