"""A simulated general-purpose ZKP virtual machine (RISC Zero analogue).

The paper builds on RISC Zero 3.0: guest code (Rust compiled to RISC-V)
runs inside a zkVM that emits a receipt — journal (public outputs) plus a
cryptographic seal — proving correct execution.  This package reproduces
that *system* in Python:

* guest programs are deterministic callables over a restricted
  :class:`~repro.zkvm.guest.GuestEnv` API mirroring ``risc0_zkvm::guest``
  (``env::read``, ``env::commit``, ``env::verify``, sha-256 accelerator);
* execution is metered in cycles and split into 2^20-cycle segments;
* proving commits to the segment trace, runs a Fiat–Shamir transcript, and
  produces composite → succinct → Groth16-style receipts (constant
  256-byte seal);
* verification recomputes every binding and models the paper's ~3 ms
  constant-time client check;
* :mod:`~repro.zkvm.costmodel` converts metered cycles into modeled
  prover latency, calibrated to the paper's measured points.

**Simulated soundness.**  The seal binds the claim through real SHA-256,
and all data-integrity failures (hash/Merkle mismatches, journal
tampering) are genuinely detected — but there is no polynomial commitment
scheme underneath, so this is not a production SNARK.  See DESIGN.md §6.
"""

from .costmodel import CostModel, ProverBackend
from .executor import ExecutionSession, Executor, ExecutorEnvBuilder
from .guest import GuestAbortSignal, GuestEnv, GuestProgram, guest_program
from .prover import ProveInfo, Prover, ProverOpts
from .receipt import (
    CompositeReceipt,
    Groth16Receipt,
    Journal,
    Receipt,
    ReceiptClaim,
    ReceiptKind,
    SuccinctReceipt,
)
from .verifier import VerifiedReceipt, Verifier, verify_receipt

__all__ = [
    "CompositeReceipt",
    "CostModel",
    "ExecutionSession",
    "Executor",
    "ExecutorEnvBuilder",
    "Groth16Receipt",
    "GuestAbortSignal",
    "GuestEnv",
    "GuestProgram",
    "Journal",
    "ProveInfo",
    "Prover",
    "ProverBackend",
    "ProverOpts",
    "Receipt",
    "ReceiptClaim",
    "ReceiptKind",
    "SuccinctReceipt",
    "VerifiedReceipt",
    "Verifier",
    "guest_program",
    "verify_receipt",
]
