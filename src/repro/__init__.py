"""repro — verifiable network telemetry without special-purpose hardware.

A full reproduction of the HotNets '25 paper "Towards Verifiable Network
Telemetry without Special Purpose Hardware" (An, Zhu, Miers, Liu): a
software-only telemetry verification system combining per-router hash
commitments, Merkle-authenticated aggregation, and zero-knowledge proofs
generated in a general-purpose zkVM.

Quickstart::

    from repro import build_paper_eval_system

    system = build_paper_eval_system(target_records=200)
    system.aggregate_all()
    response, verified = system.query(
        'SELECT SUM(hop_count) FROM clogs '
        'WHERE src_ip IN "10.0.0.0/8"')
    print(verified.values)

Packages:

* :mod:`repro.core` — prover service, verifier client, Algorithm 1.
* :mod:`repro.zkvm` — the RISC Zero-style proof VM (simulated backend).
* :mod:`repro.netflow` — NetFlow v9, topologies, traffic, simulator.
* :mod:`repro.merkle` — authenticated data structures.
* :mod:`repro.commitments` — per-router hash commitments + bulletin.
* :mod:`repro.storage` — shared log store (memory / sqlite).
* :mod:`repro.query` — the SQL-subset query language.
* :mod:`repro.sketch` — pluggable sketching telemetry summaries.
* :mod:`repro.baselines` — TEE and signed-log comparators.
* :mod:`repro.obs` — tracing/metrics/profiling (no-op until enabled);
  see ``docs/OBSERVABILITY.md`` for the instrumentation contract.
"""

from ._version import __version__
from .core import (
    ProverService,
    TelemetrySystem,
    VerifierClient,
    build_paper_eval_system,
)
from .errors import ReproError
from .hashing import Digest

__all__ = [
    "Digest",
    "ProverService",
    "ReproError",
    "TelemetrySystem",
    "VerifierClient",
    "__version__",
    "build_paper_eval_system",
]
