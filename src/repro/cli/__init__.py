"""Command-line interface: drive the full pipeline from a shell.

The CLI is a command-pattern registry (see :mod:`repro.cli.framework`):
each scenario under :mod:`repro.cli.commands` registers a
:class:`~repro.cli.framework.Command` that owns its argparse surface
and execution, and the shared invoker assembles ``repro --help`` and
runs commands through pre/post hooks.  File persistence (sqlite store,
bulletin JSON, receipt directories) lives in
:mod:`repro.cli.persistence`.

Typical session::

    python -m repro simulate  --db logs.db --bulletin bulletin.json --records 400
    python -m repro aggregate --db logs.db --bulletin bulletin.json --receipts out/
    python -m repro query     --db logs.db --bulletin bulletin.json --receipts out/ \
        'SELECT COUNT(*) FROM clogs'
    python -m repro verify    --bulletin bulletin.json --receipts out/
    python -m repro tamper    --db logs.db --router r1 --window 1 --kind modify-field
"""

from __future__ import annotations

import argparse

from .framework import (
    REGISTRY,
    Command,
    CommandHook,
    CommandInvoker,
    CommandRegistry,
    CommandResult,
    default_invoker,
    register,
)
from .persistence import (
    load_bulletin,
    load_receipts,
    rebuild_service,
    save_bulletin,
    save_receipts,
)
from . import commands  # noqa: F401  (registers the built-in scenarios)

__all__ = [
    "REGISTRY",
    "Command",
    "CommandHook",
    "CommandInvoker",
    "CommandRegistry",
    "CommandResult",
    "build_parser",
    "default_invoker",
    "load_bulletin",
    "load_receipts",
    "main",
    "rebuild_service",
    "register",
    "save_bulletin",
    "save_receipts",
]


def build_parser() -> argparse.ArgumentParser:
    """The assembled ``repro`` parser (one subparser per command)."""
    return default_invoker().build_parser()


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro`` / ``python -m repro``)."""
    return default_invoker().main(argv)
